//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_flat_map`, `any`, `Just`, range and tuple strategies,
//! `collection::{vec, hash_set}`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, chosen for an offline build:
//!
//! * Cases are generated from a seed derived from the test's name, so runs
//!   are fully deterministic (no regression files needed).
//! * No shrinking: a failing case panics with the generated inputs'
//!   `Debug` representation via the ordinary `assert!` machinery.
//! * `prop_assume!` skips the case (it does not trigger regeneration), so
//!   heavy assumptions thin the effective case count slightly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a over the test name
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T` (`any::<T>()`).
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // A spread of regimes rather than raw bit patterns: raw bits are
        // almost always astronomically large or subnormal, which starves
        // the "ordinary magnitude" cases tests mostly care about. Keep the
        // exponent range modest so products of a few values stay finite
        // (the exact-predicate tests rely on that), and still emit the
        // occasional special value for robustness paths.
        match rng.below(20) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5..=9 => rng.unit_f64() * 2.0 - 1.0,
            _ => {
                let mag = rng.unit_f64() * 2.0 - 1.0;
                let exp = rng.below(121) as i32 - 60;
                mag * (exp as f64).exp2()
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound; keep the
        // half-open contract.
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from `size`
    /// (best effort when the element domain is small).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < 10 * target + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The proptest test-definition macro (deterministic, non-shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::for_case(stringify!($name), __case);
                    let ($($pat,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3i32..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (-12i64..=12).generate(&mut rng);
            assert!((-12..=12).contains(&y));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = super::TestRng::for_case("sizes", 1);
        let v = super::collection::vec(0u32..100, 5..10).generate(&mut rng);
        assert!((5..10).contains(&v.len()));
        let s = super::collection::hash_set((0i32..50, 0i32..50), 10..20).generate(&mut rng);
        assert!((10..20).contains(&s.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 10u32..20), mut v in super::collection::vec(any::<i64>(), 0..5)) {
            prop_assume!(a != 3);
            v.push(a as i64);
            prop_assert!(a < 10 && b >= 10);
            prop_assert_eq!(*v.last().unwrap(), a as i64);
        }
    }
}
