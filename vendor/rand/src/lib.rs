//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the few external crates it needs as minimal, API-compatible
//! re-implementations. The generator here is xoshiro256++ seeded through
//! splitmix64 — high-quality, fast, and fully deterministic, which is all
//! the seeded workload generators require. The streams differ from the real
//! `rand::StdRng` (ChaCha12), which is fine: nothing in the workspace
//! depends on specific stream values, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit source every adapter builds on.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling adapters, in the shape of `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform integer below `bound` via Lemire's widening-multiply method
/// (unbiased enough for workload generation; deterministic, which is the
/// actual requirement).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + f64::sample_standard(rng) * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound; keep the
        // half-open contract.
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
