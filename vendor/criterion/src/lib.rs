//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId::new`,
//! `Bencher::iter`, and `black_box`.
//!
//! Instead of criterion's statistical machinery it runs each benchmark a
//! bounded number of samples (time-capped), and prints `min / mean` wall
//! times per benchmark — enough to compare sequential vs parallel
//! implementations on one machine, which is all the workspace's benches do.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (best-effort safe-code version).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Honour criterion's CLI shape (arguments are accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 20, &mut f);
        self
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function name` + parameter display).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Time `routine`, repeatedly. The total is capped at ~3 s per
    /// benchmark so full sweeps stay quick.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let budget = Duration::from_secs(3);
        let started = Instant::now();
        // One warm-up run (untimed).
        black_box(routine());
        for _ in 0..self.requested {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        requested: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples — closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label:<48} min {:>12} mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    #[test]
    fn id_display() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
