//! The persistent thread pool and the executors behind every combinator.
//!
//! Three layers live here, from most to least persistent:
//!
//! 1. **The work-stealing pool** ([`ThreadPool`]): worker OS threads are
//!    created **once** when the pool is built and live until the pool is
//!    dropped. Each worker owns a `Mutex<VecDeque<Job>>` local deque
//!    (jobs a worker spawns go to its own deque and are popped LIFO);
//!    external [`ThreadPool::spawn`] calls land in a shared FIFO injector;
//!    idle workers pop the injector or steal from a *randomly chosen*
//!    victim's deque, and park on a condvar when the whole pool is empty.
//!    Jobs are `'static` closures — the only kind safe Rust allows a
//!    pre-existing thread to run.
//! 2. **The crew executor** ([`crew_run`]): data-parallel combinators
//!    borrow caller data, which `#![forbid(unsafe_code)]` only permits via
//!    `std::thread::scope`. A *crew* is the caller plus scoped helper
//!    threads self-scheduling over a shared atomic cursor (stealing-style
//!    dynamic load balancing), sized by the installed pool. One crew
//!    serves an entire fused combinator chain — not one per combinator —
//!    and inputs below [`MIN_PAR_LEN`] run inline with zero spawns.
//! 3. **Fork–join** ([`join`], [`scope`]): binary recursion with a
//!    thread-budget that halves per fork, so a whole divide-and-conquer
//!    tree spawns at most `threads − 1` helpers.
//!
//! Pools are cached process-wide by thread count ([`cached_pool`]), so a
//! batch of engine runs with the same configuration reuses one pool (and
//! its ambient-parallelism setting) instead of rebuilding anything.

use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex, OnceLock};
use std::thread::{JoinHandle, ThreadId};

/// Inputs shorter than this run sequentially on the calling thread: below
/// it, per-region coordination overhead dominates any parallel win.
pub const MIN_PAR_LEN: usize = 2048;

/// How many cursor-scheduled chunks each crew member gets on average
/// (over-partitioning is what makes the dynamic cursor balance load).
pub(crate) const CHUNKS_PER_WORKER: usize = 4;

/// Smallest chunk the splitter will produce for a parallel region. Also
/// the unit grain-size callers can use to derive sequential cutoffs
/// (see [`should_parallelize`]).
pub const MIN_CHUNK: usize = MIN_PAR_LEN / 4;

/// Would a parallel region over `len` items actually go parallel under
/// the current install? `false` when the ambient width is 1 (sequential
/// installs, `threads == 1` configs) or `len` is below [`MIN_PAR_LEN`].
/// Round-based callers use this to run small rounds inline on the caller
/// and skip region setup entirely.
pub fn should_parallelize(len: usize) -> bool {
    len >= MIN_PAR_LEN && current_num_threads() > 1
}

/// A unit of pool work (pool jobs must be `'static`; borrowed work goes
/// through the crew executor instead).
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Ambient worker-thread count, set by [`ThreadPool::install`] and
    /// inherited by crew helpers and join branches.
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    /// Nesting level of crew regions (0 = top level). Nested regions get
    /// geometrically fewer helpers to bound oversubscription.
    static CREW_DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Remaining fork budget for [`join`] recursion on this thread.
    static JOIN_BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
    /// `(pool address, worker index)` when this thread is a pool worker.
    static WORKER_POOL: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// Scoped helper threads this thread has spawned (crew members, join
    /// branches, `scope` spawns all spawn from the calling thread, so the
    /// count is naturally per-thread — which keeps assertions about it
    /// immune to concurrently running tests in the same process).
    static HELPER_SPAWNS: Cell<usize> = const { Cell::new(0) };
    /// Multi-member crew regions this thread has started (a region that
    /// ran inline — width 1 or a short input — does not count).
    static CREW_REGIONS: Cell<usize> = const { Cell::new(0) };
}

/// Lifetime count of pool worker threads spawned by this process
/// (incremented once per worker at pool construction — never per job).
static WORKER_SPAWNS: AtomicUsize = AtomicUsize::new(0);

/// Pool worker threads spawned so far, process-wide.
pub fn worker_threads_spawned() -> usize {
    WORKER_SPAWNS.load(Ordering::Relaxed)
}

/// Scoped helper threads spawned *by the calling thread* so far. Tests
/// use deltas of this to assert a fused combinator chain pays for one
/// crew (not one per combinator) and that sequential runs spawn nothing.
pub fn helper_threads_spawned() -> usize {
    HELPER_SPAWNS.with(Cell::get)
}

/// Multi-member crew regions started *by the calling thread* so far.
/// Together with [`helper_threads_spawned`], the delta across a run is
/// how the engine's reports count scheduler involvement: both stay flat
/// across a run whose every round fell under the sequential cutoff.
pub fn crew_regions() -> usize {
    CREW_REGIONS.with(Cell::get)
}

fn count_helper_spawn() {
    HELPER_SPAWNS.with(|c| c.set(c.get() + 1));
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

/// Restores a thread-local `Cell` on drop (panic-safe scoping).
struct CellGuard<T: Copy + 'static> {
    key: &'static std::thread::LocalKey<Cell<T>>,
    prev: T,
}

impl<T: Copy + 'static> CellGuard<T> {
    fn set(key: &'static std::thread::LocalKey<Cell<T>>, value: T) -> Self {
        let prev = key.with(|c| c.replace(value));
        CellGuard { key, prev }
    }
}

impl<T: Copy + 'static> Drop for CellGuard<T> {
    fn drop(&mut self) {
        let prev = self.prev;
        self.key.with(|c| c.set(prev));
    }
}

/// Run `op` with the ambient parallelism pinned to `threads`.
fn with_thread_count<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    let _guard = CellGuard::set(&CURRENT_THREADS, Some(threads));
    op()
}

/// Run `op` strictly inline: ambient parallelism 1, so every combinator
/// and `join` below it executes sequentially on the calling thread with
/// zero scheduler involvement. This is how sequential-mode engine runs
/// (and `threads == 1` configs) bypass the pool entirely.
pub fn run_sequential<R>(op: impl FnOnce() -> R) -> R {
    with_thread_count(1, op)
}

/// State shared between a pool's workers and its handle.
struct PoolShared {
    /// FIFO queue for jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker deques: owners push/pop the back (LIFO), thieves pop the
    /// front (FIFO) — the classic work-stealing discipline, mutex-backed.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Parking lot for idle workers.
    park: Mutex<()>,
    work_signal: Condvar,
    /// Jobs queued anywhere (injector + locals) but not yet taken.
    pending: AtomicUsize,
    /// Jobs currently executing.
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Jobs executed per worker (stealing observability).
    executed: Vec<AtomicUsize>,
    /// Thread ids, registered once per worker at startup.
    ids: Mutex<Vec<ThreadId>>,
    /// Panics caught from spawned jobs (a panicking job never kills its
    /// worker; the payload is kept for [`ThreadPool::take_panic`]).
    panics: AtomicUsize,
    last_panic: Mutex<Option<Box<dyn Any + Send>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: Arc<PoolShared>, index: usize, threads: usize, ready: Arc<Barrier>) {
    // Workers carry the pool's parallelism so nested parallel calls from
    // inside a spawned job size their crews by this pool, not the machine
    // default.
    CURRENT_THREADS.with(|c| c.set(Some(threads)));
    WORKER_POOL.with(|c| c.set(Some((Arc::as_ptr(&shared) as usize, index))));
    lock(&shared.ids).push(std::thread::current().id());
    ready.wait();
    let mut seed = 0x9e3779b97f4a7c15u64.wrapping_mul(index as u64 + 1) | 1;
    loop {
        if let Some(job) = find_job(&shared, index, &mut seed) {
            // `find_job` already marked the job active.
            shared.executed[index].fetch_add(1, Ordering::Relaxed);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                *lock(&shared.last_panic) = Some(payload);
            }
            shared.active.fetch_sub(1, Ordering::SeqCst);
        } else if shared.shutdown.load(Ordering::Acquire) {
            break;
        } else {
            // Park until something is queued. `pending` is re-checked
            // under the park mutex, and every push notifies under the same
            // mutex, so wakeups cannot be lost.
            let mut guard = lock(&shared.park);
            while shared.pending.load(Ordering::Acquire) == 0
                && !shared.shutdown.load(Ordering::Acquire)
            {
                guard = shared
                    .work_signal
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Worker `index`'s scheduling policy: own deque back (LIFO), then the
/// injector front (FIFO), then steal from a random victim's front. Each
/// deque's lock is released before the next is taken (the pops are
/// separate statements), so two thieves can never hold each other's locks.
fn find_job(shared: &PoolShared, index: usize, seed: &mut u64) -> Option<Job> {
    let mut job = lock(&shared.locals[index]).pop_back();
    if job.is_none() {
        job = lock(&shared.injector).pop_front();
    }
    if job.is_none() {
        let k = shared.locals.len();
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        let start = (*seed as usize) % k;
        for off in 0..k {
            let victim = (start + off) % k;
            if victim == index {
                continue;
            }
            job = lock(&shared.locals[victim]).pop_front();
            if job.is_some() {
                break;
            }
        }
    }
    if job.is_some() {
        // Mark the job in flight *before* releasing its pending slot, so
        // `wait_idle` can never observe pending == 0 && active == 0 while
        // a taken job has yet to run.
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.pending.fetch_sub(1, Ordering::SeqCst);
    }
    job
}

/// A persistent pool of work-stealing worker threads.
///
/// Workers are spawned once, in [`ThreadPoolBuilder::build`], and live
/// until the pool is dropped; [`ThreadPool::spawn`] hands them `'static`
/// jobs with no further thread creation. [`ThreadPool::install`] pins the
/// *ambient parallelism* of a closure (and every crew/join it starts) to
/// this pool's width. See the module docs for why borrowed-data
/// combinators execute on scoped crews rather than on these workers.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

fn build_pool(threads: usize) -> ThreadPool {
    let threads = threads.max(1);
    let shared = Arc::new(PoolShared {
        injector: Mutex::new(VecDeque::new()),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        park: Mutex::new(()),
        work_signal: Condvar::new(),
        pending: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        executed: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
        ids: Mutex::new(Vec::with_capacity(threads)),
        panics: AtomicUsize::new(0),
        last_panic: Mutex::new(None),
    });
    let ready = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for index in 0..threads {
        let shared = Arc::clone(&shared);
        let ready = Arc::clone(&ready);
        WORKER_SPAWNS.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("ri-pool-worker-{index}"))
            .spawn(move || worker_loop(shared, index, threads, ready))
            .expect("spawning a pool worker thread");
        handles.push(handle);
    }
    ready.wait(); // every worker is up and registered before build returns
    ThreadPool {
        shared,
        threads,
        handles: Mutex::new(handles),
    }
}

impl ThreadPool {
    /// Worker threads this pool owns.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's width as the ambient parallelism: crews,
    /// joins and nested combinators inside `op` (on this thread *and* on
    /// every helper they start) size themselves by this pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_thread_count(self.threads, op)
    }

    /// Queue a `'static` job on the pool. Called from a worker of this
    /// pool, the job goes to that worker's local deque (LIFO, stealable);
    /// otherwise it goes to the shared injector. Never spawns a thread.
    ///
    /// A panicking job is caught by its worker (the worker survives);
    /// see [`ThreadPool::panic_count`] / [`ThreadPool::take_panic`].
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        let job: Job = Box::new(f);
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        let own = WORKER_POOL
            .with(Cell::get)
            .and_then(|(addr, idx)| (addr == Arc::as_ptr(&self.shared) as usize).then_some(idx));
        match own {
            Some(idx) => lock(&self.shared.locals[idx]).push_back(job),
            None => lock(&self.shared.injector).push_back(job),
        }
        // One job, one wakeup: workers re-check `pending` under the park
        // mutex before sleeping, so a notification can never be lost, and
        // each queued job sends its own.
        let _guard = lock(&self.shared.park);
        self.shared.work_signal.notify_one();
    }

    /// Block until no job is queued or executing.
    pub fn wait_idle(&self) {
        while self.shared.pending.load(Ordering::SeqCst) > 0
            || self.shared.active.load(Ordering::SeqCst) > 0
        {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Thread ids of the workers, in worker-index order of registration.
    /// Stable for the pool's whole life — the pool-reuse tests compare
    /// these across engine runs.
    pub fn worker_ids(&self) -> Vec<ThreadId> {
        lock(&self.shared.ids).clone()
    }

    /// Total jobs executed by the pool so far.
    pub fn jobs_executed(&self) -> usize {
        self.shared
            .executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Jobs executed per worker (shows how stealing spread the load).
    pub fn jobs_executed_per_worker(&self) -> Vec<usize> {
        self.shared
            .executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of spawned jobs that panicked (their workers survived).
    pub fn panic_count(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Take the most recent caught panic payload, if any.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.shared.last_panic).take()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = lock(&self.shared.park);
            self.shared.work_signal.notify_all();
        }
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type of [`ThreadPoolBuilder::build`] (building cannot actually
/// fail here; the `Result` mirrors rayon's signature).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker-thread count (`0` means the machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool, spawning its workers immediately.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(build_pool(self.num_threads.unwrap_or_else(default_threads)))
    }
}

fn pool_cache() -> &'static Mutex<HashMap<usize, Arc<ThreadPool>>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide pool for `threads` workers, built on first request and
/// reused forever after. This is what lets a batch of engine runs with the
/// same thread count amortise worker creation down to zero.
pub fn cached_pool(threads: usize) -> Arc<ThreadPool> {
    let threads = threads.max(1);
    Arc::clone(
        lock(pool_cache())
            .entry(threads)
            .or_insert_with(|| Arc::new(build_pool(threads))),
    )
}

/// The lazily-built machine-default pool.
pub fn global_pool() -> Arc<ThreadPool> {
    cached_pool(default_threads())
}

/// Queue a `'static` job on the global pool.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    global_pool().spawn(f);
}

pub(crate) fn crew_depth() -> usize {
    CREW_DEPTH.with(Cell::get)
}

/// How many crew members (caller included) a region over `len` items may
/// use under the current install, for items that each stand for roughly
/// `weight` underlying elements (a `par_chunks(w)` item is a whole
/// chunk). The go-parallel decision and the member count are sized by
/// the estimated *work* `len × weight`, so a region of 16 block-sized
/// chunks forms a full crew instead of mistaking itself for a 16-element
/// toy — while a genuinely tiny region still runs inline (below
/// [`MIN_PAR_LEN`] estimated work everything is inline). Nested regions
/// get geometrically fewer members so a region inside a crew helper
/// cannot multiply threads unboundedly, and the count adapts so every
/// member has at least `MIN_PAR_LEN / 2` elements of estimated work.
pub(crate) fn parallelism_for_weighted(len: usize, weight: usize) -> usize {
    let work = len.saturating_mul(weight.max(1));
    if work < MIN_PAR_LEN {
        return 1;
    }
    let base = match crew_depth() {
        0 => current_num_threads(),
        1 => (current_num_threads() / 4).max(1),
        _ => 1,
    };
    base.clamp(1, work.div_ceil(MIN_PAR_LEN / 2))
        .min(len.max(1))
}

/// Execute `f` over `inputs` with a crew of `width` threads (the caller
/// plus `width − 1` scoped helpers) self-scheduling over a shared cursor,
/// returning outputs in input order. Panics in any member propagate to the
/// caller with their original payload.
///
/// The crew is one *region*: a fused combinator chain makes exactly one
/// `crew_run` call, so the cost is per chain, not per combinator.
pub(crate) fn crew_run<T, R, F>(inputs: Vec<T>, width: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = inputs.len();
    let crew = width.min(n);
    if crew <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    CREW_REGIONS.with(|c| c.set(c.get() + 1));
    let slots: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let ambient = current_num_threads();
    let depth = crew_depth() + 1;
    let work = |_member: usize| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let input = lock(&slots[i]).take().expect("each slot is taken once");
        let output = f(input);
        *lock(&outs[i]) = Some(output);
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..crew)
            .map(|member| {
                count_helper_spawn();
                let work = &work;
                s.spawn(move || {
                    // Helpers inherit the caller's ambient parallelism so
                    // nested parallel calls stay sized by the installed
                    // pool instead of the machine default.
                    CURRENT_THREADS.with(|c| c.set(Some(ambient)));
                    CREW_DEPTH.with(|c| c.set(depth));
                    work(member)
                })
            })
            .collect();
        {
            let _depth = CellGuard::set(&CREW_DEPTH, depth);
            work(0);
        }
        let mut payload: Option<Box<dyn Any + Send>> = None;
        for handle in handles {
            if let Err(p) = handle.join() {
                payload.get_or_insert(p);
            }
        }
        if let Some(p) = payload {
            resume_unwind(p);
        }
    });
    outs.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("crew filled every slot")
        })
        .collect()
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// The fork budget starts at the ambient thread count and halves at every
/// parallel fork, so a full recursion tree spawns at most `threads − 1`
/// scoped helpers and then continues sequentially — divide-and-conquer
/// callers need no explicit cutoff for thread explosion (though they
/// should still stop recursing when subproblems get small). With a budget
/// of 1 (sequential installs, exhausted budgets) both closures run inline.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = JOIN_BUDGET
        .with(Cell::get)
        .unwrap_or_else(current_num_threads);
    if budget <= 1 {
        return (oper_a(), oper_b());
    }
    let budget_a = budget - budget / 2;
    let budget_b = budget / 2;
    let ambient = current_num_threads();
    count_helper_spawn();
    std::thread::scope(|s| {
        let handle_b = s.spawn(move || {
            CURRENT_THREADS.with(|c| c.set(Some(ambient)));
            JOIN_BUDGET.with(|c| c.set(Some(budget_b)));
            oper_b()
        });
        let result_a = {
            let _budget = CellGuard::set(&JOIN_BUDGET, Some(budget_a));
            oper_a()
        };
        match handle_b.join() {
            Ok(result_b) => (result_a, result_b),
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// A fork scope for borrowed tasks, mirroring `rayon::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    ambient: usize,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow anything outliving the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let ambient = self.ambient;
        let scope = self.scope;
        count_helper_spawn();
        scope.spawn(move || {
            CURRENT_THREADS.with(|c| c.set(Some(ambient)));
            f(&Scope { scope, ambient });
        });
    }
}

/// Create a fork scope: tasks spawned on it may borrow from the caller and
/// are all joined before `scope` returns (a panic in any task propagates).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let ambient = current_num_threads();
    std::thread::scope(|s| f(&Scope { scope: s, ambient }))
}
