//! Offline stand-in for the subset of the `rayon` crate API this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal, API-compatible re-implementations of its external dependencies.
//! This one provides genuinely parallel data-parallel combinators on top of
//! a persistent thread pool and a fused pipeline layer:
//!
//! * [`pool`] — the scheduling substrate: a **persistent work-stealing
//!   [`ThreadPool`]** (workers created once, per-worker mutex-backed deques
//!   with randomized stealing, a condvar-parked FIFO injector, `'static`
//!   [`ThreadPool::spawn`]), a process-wide **pool cache** keyed by thread
//!   count ([`cached_pool`]), fork–join primitives ([`join`], [`scope`])
//!   with an auto-halving thread budget, and the *crew executor* that runs
//!   borrowed-data regions with scoped helpers self-scheduling over an
//!   atomic cursor;
//! * [`iter`] — lazy, index-fused [`ParallelIterator`] pipelines (`map`,
//!   `zip`, `enumerate`, `copied`/`cloned` fuse; `filter`, `filter_map`,
//!   `flat_map_iter`, `fold` and the terminals execute the whole chain as
//!   one region), range sources, and the eager owned [`ParIter`];
//! * [`slice`] — `par_iter` / `par_chunks` as lazy views over borrowed
//!   slices (no `Vec<&T>` materialisation), `par_chunks_mut` /
//!   `par_iter_mut` over pre-split disjoint borrows.
//!
//! Design differences from real rayon, none of which change results:
//!
//! * Order is always preserved, so `collect` equals the sequential result
//!   exactly — the property every test in this workspace asserts.
//! * Pool workers execute `'static` spawned jobs. Combinators over
//!   *borrowed* data run on scoped **crews** (the caller plus helpers from
//!   `std::thread::scope`) sized by the installed pool: under
//!   `#![forbid(unsafe_code)]`, `std::thread::scope` is the only way a
//!   thread may touch another stack's borrows, and it can only lend to
//!   threads it creates. The crews preserve the pool's *scheduling*
//!   semantics — dynamic chunk self-scheduling, inherited thread counts
//!   for nested parallelism — and a fused chain pays for one crew, not one
//!   per combinator; inputs below [`MIN_PAR_LEN`] run inline with zero
//!   spawns.
//! * [`ThreadPool::install`] pins the ambient parallelism of the closure
//!   (and every crew/join under it, including from helper threads) to the
//!   pool's width rather than migrating the closure onto a worker thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod pool;
pub mod slice;

pub use iter::{
    Cloned, Copied, Enumerate, IntoParallelIterator, Map, ParIter, ParallelIterator, RangeItem,
    RangeIter, Zip,
};
pub use pool::{
    cached_pool, crew_regions, current_num_threads, global_pool, helper_threads_spawned, join,
    run_sequential, scope, should_parallelize, spawn, worker_threads_spawned, Scope, ThreadPool,
    ThreadPoolBuildError, ThreadPoolBuilder, MIN_CHUNK, MIN_PAR_LEN,
};
pub use slice::{ChunksIter, ParallelSlice, ParallelSliceMut, SliceIter};

/// How many order-preserving splits a blocked primitive (scan, pack,
/// radix) should cut its input into: a few chunks per worker so the crew's
/// dynamic cursor can balance uneven blocks.
pub fn recommended_splits() -> usize {
    current_num_threads().max(2) * 4
}

/// One-stop imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParIter, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    /// Run `op` under an installed 4-worker pool so combinator paths go
    /// parallel even on single-core machines.
    fn with_pool<R>(op: impl FnOnce() -> R) -> R {
        cached_pool(4).install(op)
    }

    #[test]
    fn map_preserves_order_large() {
        let v: Vec<usize> = (0..100_000).collect();
        let out: Vec<usize> = with_pool(|| v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, (0..100_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_and_flat_map_preserve_order() {
        let out: Vec<usize> = with_pool(|| {
            (0..50_000usize)
                .into_par_iter()
                .filter(|&x| x % 3 == 0)
                .collect()
        });
        assert_eq!(out, (0..50_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let out: Vec<usize> = with_pool(|| {
            (0..10_000usize)
                .into_par_iter()
                .flat_map_iter(|x| [x, x + 1])
                .collect()
        });
        assert_eq!(out.len(), 20_000);
        assert_eq!(out[0..4], [0, 1, 1, 2]);
    }

    #[test]
    fn find_first_is_first() {
        let v: Vec<usize> = (0..200_000).collect();
        with_pool(|| {
            assert_eq!(v.par_iter().find_first(|&&x| x >= 12_345), Some(&12_345));
            assert_eq!(v.par_iter().find_first(|&&x| x > 1_000_000), None);
        });
    }

    #[test]
    fn reduce_and_sum_agree() {
        let v: Vec<u64> = (0..100_000).collect();
        let (s, r) = with_pool(|| {
            let s: u64 = v.par_iter().copied().sum();
            let r = v.par_iter().copied().reduce(|| 0, u64::wrapping_add);
            (s, r)
        });
        assert_eq!(s, r);
        assert_eq!(s, 100_000 * 99_999 / 2);
    }

    #[test]
    fn fold_then_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let total = with_pool(|| {
            v.par_iter()
                .map(|&x| x)
                .fold(|| 0u64, |a, b| a + b)
                .reduce(|| 0, |a, b| a + b)
        });
        assert_eq!(total, v.iter().sum::<u64>());
    }

    #[test]
    fn zip_and_enumerate_are_index_fused() {
        // zip + map + collect over two borrowed slices: one fused chain.
        let a: Vec<u64> = (0..50_000).collect();
        let b: Vec<u64> = (0..50_000).map(|x| x * 3).collect();
        let out: Vec<u64> = with_pool(|| {
            a.par_iter()
                .zip(b.par_iter())
                .map(|(&x, &y)| x + y)
                .collect()
        });
        assert_eq!(out, (0..50_000).map(|x| x * 4).collect::<Vec<_>>());
        // enumerate carries pipeline indices.
        let idx: Vec<usize> = with_pool(|| {
            a.par_iter()
                .enumerate()
                .map(|(i, &x)| i + (x == 0) as usize)
                .collect()
        });
        assert_eq!(idx[0], 1);
        assert_eq!(idx[1], 1);
        assert_eq!(idx[49_999], 49_999);
    }

    #[test]
    fn chunked_zip_for_each_forms_a_crew() {
        // Regression: blocked primitives pair a few block-sized mutable
        // chunks with read chunks. The weight hint must survive the zip,
        // so the terminal still forms a full crew — by raw item count
        // (~a dozen chunk pairs) this region used to look too small to
        // parallelise and every blocked pass ran sequentially.
        let n = 40_000usize;
        let mut flags = vec![false; n];
        let keys: Vec<usize> = (0..n).collect();
        let pool = cached_pool(4);
        pool.install(|| {
            let chunk = n.div_ceil(recommended_splits());
            let before = helper_threads_spawned();
            flags
                .par_chunks_mut(chunk)
                .zip(keys.par_chunks(chunk))
                .for_each(|(fs, ks)| {
                    for (f, &k) in fs.iter_mut().zip(ks) {
                        *f = k % 2 == 0;
                    }
                });
            assert!(
                helper_threads_spawned() > before,
                "chunked zip terminal must go parallel"
            );
        });
        assert!(flags[0] && !flags[1] && flags[n - 2]);
    }

    #[test]
    fn chunks_mut_writes_visible() {
        let mut v = vec![0u32; 100_000];
        with_pool(|| {
            v.par_chunks_mut(1000)
                .enumerate()
                .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x = i as u32));
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[99_999], 99);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn workers_spawn_once_and_serve_many_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let ids_at_build = pool.worker_ids();
        assert_eq!(ids_at_build.len(), 3, "all workers registered at build");
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let hits = std::sync::Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        // The same three workers served everything: no thread was created
        // (or replaced) after the pool was built.
        assert_eq!(pool.worker_ids(), ids_at_build);
        assert_eq!(pool.jobs_executed(), 200);
    }

    #[test]
    fn jobs_spawned_from_workers_are_stolen() {
        // One seed job fans out 64 more from inside a worker: those land
        // on that worker's local deque and can only reach its siblings by
        // stealing. The per-worker execution counts must show more than
        // one participant.
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(4).build().unwrap());
        let (tx, rx) = mpsc::channel::<std::thread::ThreadId>();
        let fan_pool = std::sync::Arc::clone(&pool);
        pool.spawn(move || {
            for _ in 0..64 {
                let tx = tx.clone();
                fan_pool.spawn(move || {
                    tx.send(std::thread::current().id()).unwrap();
                    // A busy payload so siblings have time to steal.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                });
            }
        });
        let executors: std::collections::HashSet<_> = rx.iter().take(64).collect();
        pool.wait_idle();
        assert!(
            executors.len() > 1,
            "locally queued jobs were never stolen: {executors:?}"
        );
        let per_worker = pool.jobs_executed_per_worker();
        assert_eq!(per_worker.iter().sum::<usize>(), 65);
        assert!(per_worker.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    fn panicking_spawned_job_does_not_kill_worker() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.spawn(|| panic!("boom in a stolen job"));
        pool.wait_idle();
        assert_eq!(pool.panic_count(), 1);
        let payload = pool.take_panic().expect("payload kept");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"));
        // The pool still works.
        let ok = std::sync::Arc::new(AtomicUsize::new(0));
        let ok2 = std::sync::Arc::clone(&ok);
        pool.spawn(move || {
            ok2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn crew_panic_propagates_with_payload() {
        let v: Vec<usize> = (0..100_000).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_pool(|| {
                v.par_iter().for_each(|&x| {
                    if x == 77_777 {
                        panic!("crew member panicked at {x}");
                    }
                });
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("77777") || msg.contains("77_777"), "{msg}");
    }

    #[test]
    fn join_splits_and_respects_sequential_installs() {
        fn sum_rec(xs: &[u64]) -> u64 {
            if xs.len() <= 1024 {
                return xs.iter().sum();
            }
            let (a, b) = xs.split_at(xs.len() / 2);
            let (sa, sb) = join(|| sum_rec(a), || sum_rec(b));
            sa + sb
        }
        let v: Vec<u64> = (0..200_000).collect();
        let want: u64 = v.iter().sum();
        assert_eq!(with_pool(|| sum_rec(&v)), want);
        assert_eq!(run_sequential(|| sum_rec(&v)), want);
        // Sequential installs spawn no helpers at all.
        let before = helper_threads_spawned();
        let _ = run_sequential(|| sum_rec(&v));
        assert_eq!(helper_threads_spawned(), before);
    }

    #[test]
    fn scope_spawns_borrowing_tasks() {
        let data: Vec<u64> = (0..10_000).collect();
        let partials: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        scope(|s| {
            for (i, part) in data.chunks(2500).enumerate() {
                let partials = &partials;
                s.spawn(move |_| {
                    let sum: u64 = part.iter().sum();
                    partials[i].store(sum as usize, Ordering::Relaxed);
                });
            }
        });
        let total: usize = partials.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total as u64, data.iter().sum::<u64>());
    }

    #[test]
    fn fused_chain_costs_one_crew() {
        let v: Vec<u64> = (0..200_000).collect();
        let pool = cached_pool(4);
        pool.install(|| {
            // Warm up lazy statics so the measurement below is clean.
            let _: u64 = v.par_iter().copied().sum();
            let before = helper_threads_spawned();
            let out: Vec<u64> = v
                .par_iter()
                .zip(v.par_iter())
                .enumerate()
                .map(|(i, (&a, &b))| a + b + i as u64)
                .collect();
            let spawned = helper_threads_spawned() - before;
            assert_eq!(out[10], 30);
            // Four chained combinators, at most one crew of helpers.
            assert!(
                spawned < pool.current_num_threads(),
                "fused chain spawned {spawned} helpers"
            );
        });
    }

    #[test]
    fn nested_parallelism_inherits_pool_width() {
        let pool = cached_pool(4);
        let widths: Vec<usize> = pool.install(|| {
            (0..8192usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            widths.iter().all(|&w| w == 4),
            "crew members saw {widths:?}"
        );
    }

    #[test]
    fn cached_pool_is_shared_and_stable() {
        let a = cached_pool(3);
        let b = cached_pool(3);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.worker_ids(), b.worker_ids());
        assert_eq!(a.worker_ids().len(), 3);
    }

    #[test]
    fn range_sources_are_not_materialised() {
        // u64 and usize ranges, including find_first early exit.
        let hit = with_pool(|| {
            (0..1_000_000usize)
                .into_par_iter()
                .find_first(|&x| x >= 123_456)
        });
        assert_eq!(hit, Some(123_456));
        let s: u64 = with_pool(|| (0..100_000u64).into_par_iter().map(|x| x % 7).sum());
        assert_eq!(s, (0..100_000u64).map(|x| x % 7).sum::<u64>());
    }
}
