//! Offline stand-in for the subset of the `rayon` crate API this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal, API-compatible re-implementations of its external dependencies.
//! This one provides genuinely parallel data-parallel combinators on top of
//! `std::thread::scope`:
//!
//! * sources: `par_iter` / `par_chunks` on slices, `par_chunks_mut` on
//!   mutable slices, `into_par_iter` on ranges and vectors;
//! * combinators: `map`, `filter`, `filter_map`, `flat_map_iter`,
//!   `for_each`, `zip`, `enumerate`, `copied`/`cloned`, `find_first`,
//!   `fold`, `reduce`, `reduce_with`, `sum`, `max`, `min`, `collect`;
//! * `current_num_threads`, `ThreadPoolBuilder` / `ThreadPool::install`
//!   (a scoped worker-count override, which is how the engine's
//!   [`RunConfig`](https://docs.rs) thread knob is realised).
//!
//! Design differences from real rayon, none of which change results:
//!
//! * Combinators are **eager**: each one runs its closure over all items in
//!   parallel immediately and materialises the output, instead of building
//!   a lazy fused pipeline. Order is always preserved, so `collect` equals
//!   the sequential result exactly — the property every test in this
//!   workspace asserts.
//! * Work is split into one contiguous chunk per worker (no work stealing).
//!   Small inputs (below [`MIN_PAR_LEN`]) run inline on the calling thread,
//!   so tiny rounds of the executors pay no spawn cost.
//! * `ThreadPool::install` scopes a thread-count override on the calling
//!   thread rather than moving work to dedicated pool threads. Nested
//!   parallel calls from worker threads fall back to the global default.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs shorter than this run sequentially on the calling thread: below
/// it, `std::thread` spawn overhead dominates any parallel win.
pub const MIN_PAR_LEN: usize = 2048;

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Builder for a scoped thread-count override, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type of [`ThreadPoolBuilder::build`] (building cannot actually
/// fail here; the `Result` mirrors rayon's signature).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker-thread count (`0` means the global default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_threads),
        })
    }
}

/// A scoped worker-count override (stand-in for `rayon::ThreadPool`).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Worker threads this pool uses.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count as the ambient parallelism.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let _restore = Restore(prev);
        op()
    }
}

/// Split a vector into `n` nearly equal contiguous parts, preserving order.
fn split_vec<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut parts = Vec::with_capacity(n);
    // Split off from the back so each split is O(part).
    for i in (0..n).rev() {
        let part_len = base + usize::from(i < extra);
        let tail = items.split_off(items.len() - part_len);
        parts.push(tail);
    }
    parts.reverse();
    parts
}

/// How many workers to use for `len` items under the current setting.
fn workers_for(len: usize) -> usize {
    if len < MIN_PAR_LEN {
        return 1;
    }
    current_num_threads().clamp(1, len.div_ceil(MIN_PAR_LEN / 2))
}

/// Run `per_chunk` over order-preserving contiguous chunks of `items`,
/// one scoped thread per chunk, and return the per-chunk results in order.
/// Panics in workers propagate to the caller with their original payload.
fn run_chunked<T, R, F>(items: Vec<T>, per_chunk: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, Vec<T>) -> R + Sync,
{
    let n = workers_for(items.len());
    if n <= 1 {
        return vec![per_chunk(0, items)];
    }
    // Record each chunk's starting offset before moving the chunks out.
    let chunks = split_vec(items, n);
    let mut offsets = Vec::with_capacity(n);
    let mut acc = 0usize;
    for c in &chunks {
        offsets.push(acc);
        acc += c.len();
    }
    let f = &per_chunk;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .zip(offsets)
            .map(|(chunk, base)| s.spawn(move || f(base, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// An eagerly materialised parallel iterator: a vector of items plus
/// parallel combinators.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Wrap already materialised items.
    pub fn from_vec(items: Vec<T>) -> Self {
        ParIter { items }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Parallel map, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Parallel filter, preserving order.
    pub fn filter<F>(self, pred: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| {
            chunk.into_iter().filter(&pred).collect::<Vec<T>>()
        });
        ParIter {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Parallel filter-map, preserving order.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| {
            chunk.into_iter().filter_map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Parallel flat-map over a sequential inner iterator, preserving order.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| {
            chunk.into_iter().flat_map(&f).collect::<Vec<I::Item>>()
        });
        ParIter {
            items: parts.into_iter().flatten().collect(),
        }
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, |_, chunk| chunk.into_iter().for_each(&f));
    }

    /// Pairwise zip (glue only; downstream combinators parallelise).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Index each item (glue only).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// First item matching `pred`, in original order, searched in parallel
    /// with early exit once an earlier chunk has matched.
    pub fn find_first<F>(self, pred: F) -> Option<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let best = AtomicUsize::new(usize::MAX);
        let mut hits: Vec<Option<(usize, T)>> = run_chunked(self.items, |base, chunk| {
            for (i, x) in chunk.into_iter().enumerate() {
                if best.load(Ordering::Relaxed) < base {
                    return None; // an earlier chunk already matched
                }
                if pred(&x) {
                    best.fetch_min(base + i, Ordering::Relaxed);
                    return Some((base + i, x));
                }
            }
            None
        });
        hits.iter_mut()
            .filter_map(Option::take)
            .min_by_key(|&(i, _)| i)
            .map(|(_, x)| x)
    }

    /// Parallel fold: each chunk folds from a fresh `identity()`, yielding
    /// one accumulator per chunk (rayon's `fold` contract).
    pub fn fold<B, ID, F>(self, identity: ID, fold_op: F) -> ParIter<B>
    where
        B: Send,
        ID: Fn() -> B + Sync,
        F: Fn(B, T) -> B + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| {
            chunk.into_iter().fold(identity(), &fold_op)
        });
        ParIter { items: parts }
    }

    /// Parallel reduce against an identity.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| {
            chunk.into_iter().fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Parallel reduce of a possibly empty iterator.
    pub fn reduce_with<F>(self, op: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Sync,
    {
        let parts = run_chunked(self.items, |_, chunk| chunk.into_iter().reduce(&op));
        parts.into_iter().flatten().reduce(&op)
    }

    /// Sum (the heavy work upstream is already parallel).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Minimum item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    /// Number of items (consuming, to mirror rayon).
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Gather into any `FromIterator` collection, in order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

impl<T: Copy + Send + Sync> ParIter<&T> {
    /// Copy out of references (glue only).
    pub fn copied(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().copied().collect(),
        }
    }
}

impl<T: Clone + Send + Sync> ParIter<&T> {
    /// Clone out of references (glue only).
    pub fn cloned(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().cloned().collect(),
        }
    }
}

/// Conversion into a parallel iterator (owned sources: vectors, ranges).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Borrowing parallel iteration over slices (and anything derefing to one).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous `&[T]` chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Borrowing parallel iteration over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous `&mut [T]` chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// One-stop imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order_large() {
        let v: Vec<usize> = (0..100_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_and_flat_map_preserve_order() {
        let out: Vec<usize> = (0..50_000usize)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .collect();
        assert_eq!(out, (0..50_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
        let out: Vec<usize> = (0..10_000usize)
            .into_par_iter()
            .flat_map_iter(|x| [x, x + 1])
            .collect();
        assert_eq!(out.len(), 20_000);
        assert_eq!(out[0..4], [0, 1, 1, 2]);
    }

    #[test]
    fn find_first_is_first() {
        let v: Vec<usize> = (0..200_000).collect();
        assert_eq!(v.par_iter().find_first(|&&x| x >= 12_345), Some(&12_345));
        assert_eq!(v.par_iter().find_first(|&&x| x > 1_000_000), None);
    }

    #[test]
    fn reduce_and_sum_agree() {
        let v: Vec<u64> = (0..100_000).collect();
        let s: u64 = v.par_iter().copied().sum();
        let r = v.par_iter().copied().reduce(|| 0, u64::wrapping_add);
        assert_eq!(s, r);
        assert_eq!(s, 100_000 * 99_999 / 2);
    }

    #[test]
    fn fold_then_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let total = v
            .par_iter()
            .map(|&x| x)
            .fold(|| 0u64, |a, b| a + b)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, v.iter().sum::<u64>());
    }

    #[test]
    fn chunks_mut_writes_visible() {
        let mut v = vec![0u32; 100_000];
        v.par_chunks_mut(1000)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x = i as u32));
        assert_eq!(v[0], 0);
        assert_eq!(v[99_999], 99);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn split_vec_covers_everything() {
        for n in [1, 2, 3, 7] {
            for len in [0usize, 1, 5, 100] {
                let parts = split_vec((0..len).collect::<Vec<_>>(), n);
                assert_eq!(parts.len(), n);
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>());
            }
        }
    }
}
