//! Parallel iterators: a lazy, index-fused pipeline layer plus an eager
//! owned fallback.
//!
//! The central trait is [`ParallelIterator`]: a random-access description
//! of `len()` items, each produced on demand by `at(i)`. Adapters that
//! preserve one-to-one indexing — [`map`](ParallelIterator::map),
//! [`zip`](ParallelIterator::zip), [`enumerate`](ParallelIterator::enumerate),
//! [`copied`](ParallelIterator::copied) / [`cloned`](ParallelIterator::cloned)
//! — merely *wrap* the source; nothing is materialised. A terminal
//! operation (`collect`, `for_each`, `reduce`, `find_first`, ...) then
//! executes the whole fused chain as **one** crew region that walks index
//! sub-ranges of the original borrowed storage: a chain like
//! `xs.par_iter().zip(ys.par_iter()).map(f).for_each(g)` touches `xs`/`ys`
//! in place, allocates nothing, and pays for one region, not four.
//!
//! Length-changing combinators (`filter`, `filter_map`, `flat_map_iter`,
//! `fold`) cannot stay indexed; they evaluate the fused upstream in one
//! region and return an eager [`ParIter`] of the survivors. [`ParIter`]
//! (also the owned source behind `Vec::into_par_iter`) carries a plain
//! `Vec` and runs its own combinators by moving order-preserving chunks
//! through the crew executor.
//!
//! Order is always preserved, so every `collect` equals the sequential
//! result exactly — the property every test in this workspace asserts.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::{crew_run, parallelism_for_weighted, CHUNKS_PER_WORKER, MIN_CHUNK};

/// Split `0..n` into `k` near-equal contiguous ranges, in order.
fn split_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.max(1);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut lo = 0usize;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Number of cursor-scheduled chunks for a region of `n` items (each
/// standing for ~`weight` underlying elements) run by a crew of `width`.
fn chunk_count(n: usize, width: usize, weight: usize) -> usize {
    let min_chunk_items = (MIN_CHUNK / weight.max(1)).max(1);
    (width * CHUNKS_PER_WORKER)
        .min(n.div_ceil(min_chunk_items))
        .max(width)
        .min(n.max(1))
}

/// Execute `f` over contiguous sub-ranges of `0..n` (one crew region) and
/// return the per-range results in range order. `weight` is the pipeline's
/// [`ParallelIterator::weight_hint`]: the approximate number of underlying
/// elements each item stands for.
pub(crate) fn run_indexed<R: Send>(
    n: usize,
    weight: usize,
    f: impl Fn(usize, usize) -> R + Sync,
) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let width = parallelism_for_weighted(n, weight);
    if width <= 1 {
        return vec![f(0, n)];
    }
    let ranges = split_ranges(n, chunk_count(n, width, weight));
    crew_run(ranges, width, |(lo, hi)| f(lo, hi))
}

/// Concatenate per-chunk outputs, reusing the single part when possible.
pub(crate) fn concat<T>(mut parts: Vec<Vec<T>>) -> Vec<T> {
    if parts.len() == 1 {
        return parts.pop().expect("len checked");
    }
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

/// A random-access parallel pipeline: `len()` items, produced on demand by
/// `at(i)`. See the module docs for the fusion model.
///
/// `at` must be safe to call once per index from any thread (the usual
/// closure purity the data-parallel model already assumes).
pub trait ParallelIterator: Sync + Sized {
    /// Item produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Produce item `i` (`i < len()`).
    fn at(&self, i: usize) -> Self::Item;

    /// Approximate underlying elements per item — the work estimate the
    /// executor multiplies into its go-parallel decision. 1 for element
    /// sources; `par_chunks(w)` reports `w` so a handful of block-sized
    /// chunks still forms a full crew (by item count alone, a blocked
    /// primitive would always look too small to parallelise).
    fn weight_hint(&self) -> usize {
        1
    }

    /// Emptiness test.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lazy parallel map: fused, nothing materialised until a terminal op.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Lazy index-based zip: pairs are formed per index at execution time,
    /// so downstream combinators still chunk the original storage.
    fn zip<P: ParallelIterator>(self, other: P) -> Zip<Self, P> {
        Zip { a: self, b: other }
    }

    /// Lazy index-based enumerate (indices are the pipeline's own).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Copy out of references, lazily.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Clone out of references, lazily.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        Cloned { base: self }
    }

    /// Parallel filter, preserving order (evaluates the fused upstream in
    /// one region; the survivors are owned by the returned [`ParIter`]).
    fn filter<F>(self, pred: F) -> ParIter<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi)
                .map(|i| self.at(i))
                .filter(|x| pred(x))
                .collect::<Vec<_>>()
        });
        ParIter::from_vec(concat(parts))
    }

    /// Parallel filter-map, preserving order.
    fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi).filter_map(|i| f(self.at(i))).collect::<Vec<_>>()
        });
        ParIter::from_vec(concat(parts))
    }

    /// Parallel flat-map over a sequential inner iterator, preserving order.
    fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi).flat_map(|i| f(self.at(i))).collect::<Vec<_>>()
        });
        ParIter::from_vec(concat(parts))
    }

    /// Parallel fold: each execution chunk folds from a fresh `identity()`,
    /// yielding one accumulator per chunk (rayon's `fold` contract).
    fn fold<B, ID, F>(self, identity: ID, fold_op: F) -> ParIter<B>
    where
        B: Send,
        ID: Fn() -> B + Sync,
        F: Fn(B, Self::Item) -> B + Sync,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi).map(|i| self.at(i)).fold(identity(), &fold_op)
        });
        ParIter::from_vec(parts)
    }

    /// Parallel side-effecting visit (one region, nothing allocated).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            for i in lo..hi {
                f(self.at(i));
            }
        });
    }

    /// Parallel reduce against an identity.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi).map(|i| self.at(i)).fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Parallel reduce of a possibly empty pipeline.
    fn reduce_with<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi).map(|i| self.at(i)).reduce(&op)
        });
        parts.into_iter().flatten().reduce(&op)
    }

    /// Parallel sum: per-chunk partial sums, then a sum of partials.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            (lo..hi).map(|i| self.at(i)).sum::<S>()
        });
        parts.into_iter().sum()
    }

    /// Maximum item.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.reduce_with(Ord::max)
    }

    /// Minimum item.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.reduce_with(Ord::min)
    }

    /// Number of items (consuming, to mirror rayon).
    fn count(self) -> usize {
        self.len()
    }

    /// First item matching `pred`, in pipeline order, searched in parallel
    /// with early exit once an earlier index has matched. Allocation-free
    /// on indexed sources (ranges are *not* materialised first).
    fn find_first<F>(self, pred: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        let best = AtomicUsize::new(usize::MAX);
        let hits = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            for i in lo..hi {
                if best.load(Ordering::Relaxed) < lo {
                    return None; // an earlier chunk already matched
                }
                let x = self.at(i);
                if pred(&x) {
                    best.fetch_min(i, Ordering::Relaxed);
                    return Some((i, x));
                }
            }
            None
        });
        hits.into_iter()
            .flatten()
            .min_by_key(|&(i, _)| i)
            .map(|(_, x)| x)
    }

    /// Gather into any `FromIterator` collection, in order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts = run_indexed(self.len(), self.weight_hint(), |lo, hi| {
            let mut v = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                v.push(self.at(i));
            }
            v
        });
        concat(parts).into_iter().collect()
    }

    /// Gather into a reused vector, in order: `out` is cleared and filled,
    /// keeping its capacity. Round-based callers pass the same buffer every
    /// round so the large backing allocation is paid once. When the
    /// pipeline runs inline (width 1), items are written straight into
    /// `out` with no intermediate storage at all.
    fn collect_into_vec(self, out: &mut Vec<Self::Item>) {
        out.clear();
        let n = self.len();
        if n == 0 {
            return;
        }
        if parallelism_for_weighted(n, self.weight_hint()) <= 1 {
            out.reserve(n);
            for i in 0..n {
                out.push(self.at(i));
            }
            return;
        }
        let parts = run_indexed(n, self.weight_hint(), |lo, hi| {
            let mut v = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                v.push(self.at(i));
            }
            v
        });
        out.reserve(n);
        for p in parts {
            out.extend(p);
        }
    }
}

/// Lazy map adapter (see [`ParallelIterator::map`]).
#[derive(Debug, Clone, Copy)]
pub struct Map<A, F> {
    base: A,
    f: F,
}

impl<A, R, F> ParallelIterator for Map<A, F>
where
    A: ParallelIterator,
    R: Send,
    F: Fn(A::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, i: usize) -> R {
        (self.f)(self.base.at(i))
    }
    fn weight_hint(&self) -> usize {
        self.base.weight_hint()
    }
}

/// Lazy zip adapter (see [`ParallelIterator::zip`]).
#[derive(Debug, Clone, Copy)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn at(&self, i: usize) -> Self::Item {
        (self.a.at(i), self.b.at(i))
    }
    fn weight_hint(&self) -> usize {
        self.a.weight_hint().max(self.b.weight_hint())
    }
}

/// Lazy enumerate adapter (see [`ParallelIterator::enumerate`]).
#[derive(Debug, Clone, Copy)]
pub struct Enumerate<A> {
    base: A,
}

impl<A: ParallelIterator> ParallelIterator for Enumerate<A> {
    type Item = (usize, A::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, i: usize) -> Self::Item {
        (i, self.base.at(i))
    }
    fn weight_hint(&self) -> usize {
        self.base.weight_hint()
    }
}

/// Lazy copy-out-of-references adapter.
#[derive(Debug, Clone, Copy)]
pub struct Copied<A> {
    base: A,
}

impl<'a, A, T> ParallelIterator for Copied<A>
where
    A: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, i: usize) -> T {
        *self.base.at(i)
    }
    fn weight_hint(&self) -> usize {
        self.base.weight_hint()
    }
}

/// Lazy clone-out-of-references adapter.
#[derive(Debug, Clone, Copy)]
pub struct Cloned<A> {
    base: A,
}

impl<'a, A, T> ParallelIterator for Cloned<A>
where
    A: ParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn at(&self, i: usize) -> T {
        self.base.at(i).clone()
    }
    fn weight_hint(&self) -> usize {
        self.base.weight_hint()
    }
}

/// Integer types usable as parallel range endpoints.
pub trait RangeItem: Copy + Send + Sync {
    /// `self + i`, assuming it stays in range (guaranteed by `len`).
    fn offset(self, i: usize) -> Self;
    /// `max(0, end - self)` as a usize.
    fn distance(self, end: Self) -> usize;
}

macro_rules! range_item {
    ($($t:ty),*) => {$(
        impl RangeItem for $t {
            fn offset(self, i: usize) -> Self {
                self + i as $t
            }
            fn distance(self, end: Self) -> usize {
                if end > self { (end - self) as usize } else { 0 }
            }
        }
    )*};
}

range_item!(usize, u32, u64);

/// A lazy parallel iterator over an integer range (never materialised).
#[derive(Debug, Clone, Copy)]
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

impl<T: RangeItem> ParallelIterator for RangeIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    fn at(&self, i: usize) -> T {
        self.start.offset(i)
    }
}

/// Conversion into a parallel iterator (owned sources: vectors, ranges).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: RangeItem + Send> IntoParallelIterator for std::ops::Range<T> {
    type Item = T;
    type Iter = RangeIter<T>;
    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter {
            start: self.start,
            len: self.start.distance(self.end),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            weight: 1,
        }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Split a vector into `n` nearly equal contiguous parts, preserving order.
fn split_vec<T>(mut items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut parts = Vec::with_capacity(n);
    // Split off from the back so each split is O(part).
    for i in (0..n).rev() {
        let part_len = base + usize::from(i < extra);
        let tail = items.split_off(items.len() - part_len);
        parts.push(tail);
    }
    parts.reverse();
    parts
}

/// An eager parallel iterator owning its items: the source for
/// `Vec::into_par_iter` and the output of length-changing combinators.
///
/// Its combinators move order-preserving chunks of the owned vector
/// through the crew executor; each call is one region. For borrowed data
/// prefer the lazy slice pipelines, which allocate nothing.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
    /// Approximate underlying elements per item (see
    /// [`ParallelIterator::weight_hint`]); set by coarse sources such as
    /// [`par_chunks_mut`](crate::slice::ParallelSliceMut::par_chunks_mut)
    /// and by [`ParIter::with_weight`].
    weight: usize,
}

impl<T: Send> ParIter<T> {
    /// Wrap already materialised items.
    pub fn from_vec(items: Vec<T>) -> Self {
        ParIter { items, weight: 1 }
    }

    /// Declare each item to stand for ~`weight` underlying elements, so
    /// the go-parallel decision is made on estimated work rather than
    /// item count (for items that are whole blocks of work).
    pub fn with_weight(mut self, weight: usize) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Emptiness test.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// One crew region over order-preserving chunks of the owned items;
    /// `per_chunk` sees each chunk with its starting offset.
    fn run_owned<R: Send>(self, per_chunk: impl Fn(usize, Vec<T>) -> R + Sync) -> Vec<R> {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let width = parallelism_for_weighted(n, self.weight);
        if width <= 1 {
            return vec![per_chunk(0, self.items)];
        }
        let chunks = split_vec(self.items, chunk_count(n, width, self.weight));
        let mut offset = 0usize;
        let inputs: Vec<(usize, Vec<T>)> = chunks
            .into_iter()
            .map(|c| {
                let base = offset;
                offset += c.len();
                (base, c)
            })
            .collect();
        crew_run(inputs, width, |(base, chunk)| per_chunk(base, chunk))
    }

    /// Parallel map, preserving order (and the weight hint: items map
    /// one-to-one, so each output still stands for the same work).
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let weight = self.weight;
        let parts = self.run_owned(|_, chunk| chunk.into_iter().map(&f).collect::<Vec<R>>());
        ParIter::from_vec(concat(parts)).with_weight(weight)
    }

    /// Parallel filter, preserving order.
    pub fn filter<F>(self, pred: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().filter(&pred).collect::<Vec<T>>());
        ParIter::from_vec(concat(parts))
    }

    /// Parallel filter-map, preserving order.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().filter_map(&f).collect::<Vec<R>>());
        ParIter::from_vec(concat(parts))
    }

    /// Parallel flat-map over a sequential inner iterator, preserving order.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(T) -> I + Sync,
    {
        let parts =
            self.run_owned(|_, chunk| chunk.into_iter().flat_map(&f).collect::<Vec<I::Item>>());
        ParIter::from_vec(concat(parts))
    }

    /// Parallel side-effecting visit.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.run_owned(|_, chunk| chunk.into_iter().for_each(&f));
    }

    /// Index-based zip with any lazy pipeline: the right-hand side is read
    /// per index while this side's chunks move, so neither side is
    /// materialised as a whole before pairing. Pairing is one-to-one, so
    /// the result carries the heavier side's weight hint — a zip of two
    /// chunked views stays a full-crew region for its downstream
    /// terminal, instead of looking like a handful of items.
    pub fn zip<P: ParallelIterator>(mut self, other: P) -> ParIter<(T, P::Item)> {
        let n = self.items.len().min(other.len());
        self.items.truncate(n);
        let weight = self.weight.max(other.weight_hint());
        let parts = self.run_owned(|base, chunk| {
            chunk
                .into_iter()
                .enumerate()
                .map(|(j, x)| (x, other.at(base + j)))
                .collect::<Vec<_>>()
        });
        ParIter::from_vec(concat(parts)).with_weight(weight)
    }

    /// Index each item, in parallel (offsets are carried per chunk; the
    /// weight hint carries over — enumeration is one-to-one).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        let weight = self.weight;
        let parts = self.run_owned(|base, chunk| {
            chunk
                .into_iter()
                .enumerate()
                .map(|(j, x)| (base + j, x))
                .collect::<Vec<_>>()
        });
        ParIter::from_vec(concat(parts)).with_weight(weight)
    }

    /// First item matching `pred`, in original order, searched in parallel
    /// with early exit once an earlier chunk has matched.
    pub fn find_first<F>(self, pred: F) -> Option<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let best = AtomicUsize::new(usize::MAX);
        let hits = self.run_owned(|base, chunk| {
            for (j, x) in chunk.into_iter().enumerate() {
                if best.load(Ordering::Relaxed) < base {
                    return None; // an earlier chunk already matched
                }
                if pred(&x) {
                    best.fetch_min(base + j, Ordering::Relaxed);
                    return Some((base + j, x));
                }
            }
            None
        });
        hits.into_iter()
            .flatten()
            .min_by_key(|&(i, _)| i)
            .map(|(_, x)| x)
    }

    /// Parallel fold: each chunk folds from a fresh `identity()`, yielding
    /// one accumulator per chunk (rayon's `fold` contract).
    pub fn fold<B, ID, F>(self, identity: ID, fold_op: F) -> ParIter<B>
    where
        B: Send,
        ID: Fn() -> B + Sync,
        F: Fn(B, T) -> B + Sync,
    {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().fold(identity(), &fold_op));
        ParIter::from_vec(parts)
    }

    /// Parallel reduce against an identity.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().fold(identity(), &op));
        parts.into_iter().fold(identity(), &op)
    }

    /// Parallel reduce of a possibly empty iterator.
    pub fn reduce_with<F>(self, op: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Sync,
    {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().reduce(&op));
        parts.into_iter().flatten().reduce(&op)
    }

    /// Parallel sum: per-chunk partial sums, then a sum of partials.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().sum::<S>());
        parts.into_iter().sum()
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.reduce_with(Ord::max)
    }

    /// Minimum item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.reduce_with(Ord::min)
    }

    /// Number of items (consuming, to mirror rayon).
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Gather into any `FromIterator` collection, in order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

impl<T: Copy + Send + Sync> ParIter<&T> {
    /// Copy out of references, in parallel.
    pub fn copied(self) -> ParIter<T> {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().copied().collect::<Vec<T>>());
        ParIter::from_vec(concat(parts))
    }
}

impl<T: Clone + Send + Sync> ParIter<&T> {
    /// Clone out of references, in parallel.
    pub fn cloned(self) -> ParIter<T> {
        let parts = self.run_owned(|_, chunk| chunk.into_iter().cloned().collect::<Vec<T>>());
        ParIter::from_vec(concat(parts))
    }
}
