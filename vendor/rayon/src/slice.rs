//! Borrowing parallel iteration over slices.
//!
//! [`ParallelSlice::par_iter`] and [`ParallelSlice::par_chunks`] return
//! *lazy index-based views* ([`SliceIter`], [`ChunksIter`]) of the
//! borrowed slice: no `Vec<&T>` is materialised, ever. Combinators fuse on
//! top of them (see the [`iter`](crate::iter) module) and the eventual
//! terminal operation walks index sub-ranges of the original storage.
//!
//! The mutable side cannot be a shared random-access view (handing out
//! `&mut` items through `&self` is aliasing), so
//! [`ParallelSliceMut::par_chunks_mut`] / [`par_iter_mut`](ParallelSliceMut::par_iter_mut)
//! pre-split the borrow into disjoint pieces and move those through the
//! eager [`ParIter`] — an allocation of one pointer per chunk, which for
//! the block-sized chunks the workspace uses is negligible.

use crate::iter::{ParIter, ParallelIterator};

/// Lazy parallel iterator over `&T` items of a borrowed slice.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn at(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Lazy parallel iterator over contiguous `&[T]` chunks of a borrowed
/// slice (the last chunk may be shorter).
#[derive(Debug)]
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn at(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
    fn weight_hint(&self) -> usize {
        // Each item is a whole chunk: the go-parallel decision must see
        // the underlying element count, not the (small) chunk count.
        self.size
    }
}

/// Borrowing parallel iteration over slices (and anything derefing to one).
pub trait ParallelSlice<T: Sync> {
    /// Lazy parallel iterator over `&T` (no materialisation).
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Lazy parallel iterator over contiguous `&[T]` chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
    fn par_chunks(&self, chunk_size: usize) -> ChunksIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksIter {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Borrowing parallel iteration over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous `&mut [T]` chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        // Weighted: a few block-sized chunks are a full region's worth of
        // work even though the item count is tiny.
        ParIter::from_vec(self.chunks_mut(chunk_size).collect()).with_weight(chunk_size)
    }
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter::from_vec(self.iter_mut().collect())
    }
}
