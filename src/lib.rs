//! # `parallel-ri` — Parallelism in Randomized Incremental Algorithms
//!
//! A Rust implementation of the framework and algorithms of
//!
//! > Guy E. Blelloch, Yan Gu, Julian Shun, Yihan Sun.
//! > *Parallelism in Randomized Incremental Algorithms.* SPAA 2016.
//!
//! The paper shows that classic sequential randomized incremental
//! algorithms have *shallow dependence structure* with high probability,
//! so running every iteration as soon as its dependences are satisfied
//! yields work-efficient, polylogarithmic-depth parallel algorithms. This
//! crate re-exports the whole workspace:
//!
//! | Module | Contents | Paper |
//! |---|---|---|
//! | [`framework`] | dependence graphs, Type 1/2/3 executors, the `Runner` engine | §2 |
//! | [`pram`] | parallel primitives (priority writes, scans, semisort, ...) | Prelims |
//! | [`geometry`] | exact predicates, shapes, point distributions | §4–5 |
//! | [`graph`] | CSR digraphs, generators, searches | §6 |
//! | [`sort`] | incremental BST sorting (Type 1) | §3 |
//! | [`delaunay`] | Delaunay triangulation (Type 1, nested) | §4 |
//! | [`lp`] | Seidel 2-D linear programming (Type 2) | §5.1 |
//! | [`closest_pair`] | grid-sieve closest pair (Type 2) | §5.2 |
//! | [`enclosing`] | Welzl smallest enclosing disk (Type 2) | §5.3 |
//! | [`le_lists`] | Cohen least-element lists (Type 3) | §6.1 |
//! | [`scc`] | incremental strongly connected components (Type 3) | §6.2 |
//!
//! ## Quickstart
//!
//! Every algorithm solves through one engine: build a [`RunConfig`]
//! (seed, `Sequential`/`Parallel` mode, worker threads, instrumentation),
//! call `solve`, get the answer plus a unified [`RunReport`] (rounds,
//! work, measured dependence depth, JSON serialization).
//!
//! ```
//! use parallel_ri::prelude::*;
//!
//! let cfg = RunConfig::new().seed(42);
//!
//! // Sort by parallel BST insertion (§3): same tree as the sequential run.
//! let keys = random_permutation(1000, 42);
//! let (sorted, report) = SortProblem::new(&keys).solve(&cfg);
//! assert_eq!(sorted.sorted_indices.len(), 1000);
//! assert!(report.depth < 70); // O(log n) whp (Lemma 3.1)
//!
//! // Delaunay-triangulate random points (§4).
//! let pts = PointDistribution::UniformSquare.generate(200, 7);
//! let (dt, _) = DelaunayProblem::new(&pts).solve(&cfg);
//! dt.mesh.validate().unwrap();
//!
//! // Strongly connected components (§6.2), validated against Tarjan.
//! let g = parallel_ri::graph::generators::gnm(300, 900, 1, false);
//! let (comps, report) = SccProblem::new(&g).solve(&cfg.clone().seed(2));
//! assert_eq!(
//!     canonical_labels(&comps.comp),
//!     canonical_labels(&tarjan_scc(&g)),
//! );
//!
//! // Sequential mode reproduces the same components, and every run
//! // serializes to one JSON line for the bench harness.
//! let (seq, seq_report) = SccProblem::new(&g).solve(&cfg.clone().seed(2).sequential());
//! assert_eq!(canonical_labels(&seq.comp), canonical_labels(&comps.comp));
//! assert_eq!(RunReport::from_json(&report.to_json()).unwrap(), report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;

pub use registry::registry;

/// The §2 framework: dependence graphs and the three executors.
pub mod framework {
    pub use ri_core::*;
}

/// Parallel primitives substrate (PRAM stand-ins).
pub mod pram {
    pub use ri_pram::*;
}

/// Exact predicates, disks, and point distributions.
pub mod geometry {
    pub use ri_geometry::*;
}

/// Graph substrate: CSR, generators, searches.
pub mod graph {
    pub use ri_graph::*;
    /// Seeded graph generators.
    pub mod generators {
        pub use ri_graph::generators::*;
    }
}

/// §3: incremental BST comparison sorting.
pub mod sort {
    pub use ri_sort::*;
}

/// §4: Delaunay triangulation.
pub mod delaunay {
    pub use ri_delaunay::*;
}

/// §5.1: 2-D linear programming.
pub mod lp {
    pub use ri_lp::*;
}

/// §5.2: closest pair.
pub mod closest_pair {
    pub use ri_closest_pair::*;
}

/// §5.3: smallest enclosing disk.
pub mod enclosing {
    pub use ri_enclosing::*;
}

/// §6.1: least-element lists.
pub mod le_lists {
    pub use ri_le_lists::*;
}

/// §6.2: strongly connected components.
pub mod scc {
    pub use ri_scc::*;
}

/// One-stop imports for examples and applications.
///
/// The engine API (`RunConfig` + per-algorithm `*Problem` types, plus the
/// object-safe [`registry()`](crate::registry) layer for name-driven
/// dispatch) is the supported surface; the pre-engine free functions are
/// gone.
pub mod prelude {
    pub use crate::registry;
    pub use ri_closest_pair::{ClosestPairOutput, ClosestPairProblem};
    pub use ri_core::engine::{
        ErasedProblem, ExecMode, Executable, OutputSummary, Phase, Problem, Registry, RunConfig,
        RunReport, Runner, Type1Adapter, Type2Adapter, Type3Adapter, WorkloadSpec,
    };
    pub use ri_core::{harmonic, DependenceGraph, Permutation};
    pub use ri_delaunay::{DelaunayProblem, DtOutput};
    pub use ri_enclosing::{EnclosingProblem, SedOutput};
    pub use ri_geometry::{Point2, PointDistribution};
    pub use ri_graph::CsrGraph;
    pub use ri_le_lists::{LeListsOutput, LeListsProblem};
    pub use ri_lp::{LpInstance, LpInstanceD, LpOutcome, LpOutcomeD, LpProblem, LpProblemD};
    pub use ri_pram::{knuth_shuffle_parallel, knuth_shuffle_sequential, random_permutation};
    pub use ri_scc::{
        canonical_labels, scc_parallel_deterministic, tarjan_scc, SccOutput, SccProblem,
    };
    pub use ri_sort::{BatchSortProblem, SortOutput, SortProblem};
}
