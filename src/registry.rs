//! The fully-populated problem registry.
//!
//! `ri_core::engine::registry` defines the object-safe layer
//! ([`Registry`], [`ErasedProblem`](ri_core::ErasedProblem),
//! [`WorkloadSpec`], [`OutputSummary`](ri_core::OutputSummary)); each
//! algorithm crate contributes its constructors through a
//! `registry::register` function. This module is where they all meet —
//! the only crate that depends on every algorithm crate can build the
//! complete map. [`registry()`] is what the `ri` CLI driver, the bench
//! harness, and any serving layer call.

use ri_core::Registry;

/// The registry of every problem in the workspace:
///
/// | name | problem | class |
/// |---|---|---|
/// | `sort` | incremental BST sort (§3) | Type 1 |
/// | `sort-batch` | batched BST sort (§2.3) | Type 3 |
/// | `delaunay` | Delaunay triangulation (§4) | Type 1 (nested) |
/// | `lp` | Seidel 2-D linear programming (§5.1) | Type 2 |
/// | `lp-d` | d-dimensional Seidel LP | Type 2 |
/// | `closest-pair` | grid-sieve closest pair (§5.2) | Type 2 |
/// | `enclosing` | Welzl smallest enclosing disk (§5.3) | Type 2 |
/// | `le-lists` | Cohen least-element lists (§6.1) | Type 3 |
/// | `scc` | strongly connected components (§6.2) | Type 3 |
///
/// ```
/// use parallel_ri::registry;
/// use ri_core::{RunConfig, WorkloadSpec};
///
/// let reg = registry();
/// let spec = WorkloadSpec::new(128, 7);
/// let (summary, report) = reg.solve("sort", &spec, &RunConfig::new()).unwrap();
/// assert_eq!(report.items, 128);
/// assert!(summary.to_json().contains("\"sorted\":true"));
/// ```
pub fn registry() -> Registry {
    let mut reg = Registry::new();
    ri_sort::registry::register(&mut reg);
    ri_delaunay::registry::register(&mut reg);
    ri_lp::registry::register(&mut reg);
    ri_closest_pair::registry::register(&mut reg);
    ri_enclosing::registry::register(&mut reg);
    ri_le_lists::registry::register(&mut reg);
    ri_scc::registry::register(&mut reg);
    reg
}
