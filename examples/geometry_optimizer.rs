//! Facility placement with the three Type 2 algorithms (§5).
//!
//! Scenario: place a service hub for a set of demand points.
//! * **Smallest enclosing disk** (§5.3) gives the minimax location — the
//!   center minimising the worst-case distance to any demand point.
//! * **Linear programming** (§5.1) checks the location against zoning
//!   constraints (halfplanes) and, if violated, finds the best feasible
//!   point toward the hub.
//! * **Closest pair** (§5.2) flags the two nearest demand points (e.g.
//!   duplicate service requests).
//!
//! Run with: `cargo run --release --example geometry_optimizer [n]`

use parallel_ri::prelude::*;
use ri_lp::Constraint;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 14);

    // Demand points: clustered (like city districts).
    let pts = {
        let raw = ri_geometry::distributions::dedup_points(
            PointDistribution::Clusters(6).generate(n, 13),
        );
        let order = random_permutation(raw.len(), 17);
        order.iter().map(|&i| raw[i]).collect::<Vec<_>>()
    };
    println!("facility placement over {} demand points\n", pts.len());

    // One engine configuration for all three solvers.
    let cfg = RunConfig::new();

    // 1. Minimax hub: smallest enclosing disk.
    let (sed, sed_report) = EnclosingProblem::new(&pts).solve(&cfg);
    println!(
        "hub (minimax center) : {}  worst-case distance {:.4}",
        sed.disk.center,
        sed.disk.radius()
    );
    println!(
        "                       {} boundary updates, {} containment tests (O(n) expected)",
        sed_report.specials.len(),
        sed.contains_tests
    );

    // 2. Zoning: the hub must satisfy random halfplane constraints around
    // the demand centroid; objective pulls toward the unconstrained hub.
    let centroid = {
        let mut c = Point2::new(0.0, 0.0);
        for &p in &pts {
            c = c + p;
        }
        c * (1.0 / pts.len() as f64)
    };
    let zoning: Vec<Constraint> = {
        let mut inst = ri_lp::workloads::tangent_instance(256, 23);
        // Re-center the tangent constraints around the centroid.
        for c in &mut inst.constraints {
            c.bound = 0.75 + c.normal.dot(centroid);
        }
        inst.constraints
    };
    let toward_hub = sed.disk.center - centroid;
    let inst = LpInstance {
        objective: toward_hub,
        constraints: zoning,
    };
    let (lp_outcome, lp_report) = LpProblem::new(&inst).solve(&cfg);
    match lp_outcome {
        LpOutcome::Optimal(x) => {
            println!(
                "zoned hub            : {x}  ({} tight constraints)",
                lp_report.specials.len()
            );
            let shift = x.dist(sed.disk.center);
            println!("                       moved {shift:.4} from the minimax center");
        }
        LpOutcome::Infeasible => println!("zoning infeasible — no legal placement"),
    }

    // 3. Duplicate-request detection: closest pair of demand points.
    let (cp, cp_report) = ClosestPairProblem::new(&pts).solve(&cfg);
    println!(
        "closest demand pair  : #{} and #{} at distance {:.3e} ({} grid rebuilds)",
        cp.pair.0,
        cp.pair.1,
        cp.dist,
        cp_report.specials.len()
    );

    println!(
        "\nAll three solvers are Type 2 randomized incremental algorithms: the\n\
         expected number of 'special' iterations is O(log n) — compare the\n\
         update counts above against ln n = {:.1}.",
        (pts.len() as f64).ln()
    );
}
