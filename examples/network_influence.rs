//! Neighborhood-size estimation from LE-lists — Cohen's original
//! application (§6.1 of the paper cites it as the motivation).
//!
//! The size of the ball `B(u, r) = {v : d(u, v) ≤ r}` can be estimated
//! from `u`'s least-element list alone: if vertices are ranked uniformly
//! at random, the lowest-ranked vertex inside the ball is distributed as
//! the minimum of `|B|` uniform ranks, so `E[min rank] ≈ n / (|B|+1)` and
//! `|B| ≈ n / min_rank − 1`. The LE-list contains exactly the information
//! to read off that minimum for *every* radius at once.
//!
//! This example builds LE-lists on a synthetic social graph (in parallel),
//! estimates ball sizes around sample vertices, and compares against exact
//! BFS counts.
//!
//! Run with: `cargo run --release --example network_influence [n]`

use parallel_ri::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 13);

    // A power-law-ish undirected social graph.
    let scale = (n as f64).log2().ceil() as u32;
    let g0 = parallel_ri::graph::generators::rmat(scale, 16 * n, 3);
    // Symmetrise so distances are metric-like.
    let mut edges = Vec::new();
    for u in 0..g0.num_vertices() as u32 {
        for &v in g0.neighbors(u) {
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    let g = CsrGraph::from_edges(g0.num_vertices(), &edges);
    let nn = g.num_vertices();

    // Rank vertices uniformly at random; build LE-lists in parallel.
    let order = random_permutation(nn, 7);
    let rank_of = {
        let mut r = vec![0usize; nn];
        for (k, &v) in order.iter().enumerate() {
            r[v] = k;
        }
        r
    };
    let t0 = std::time::Instant::now();
    let (le, _) = LeListsProblem::new(&g)
        .with_order(order.clone())
        .solve(&RunConfig::new());
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "LE-lists built: n = {nn}, m = {}, avg list len {:.2} (H_n = {:.2}), {:.1} ms\n",
        g.num_edges(),
        le.total_entries() as f64 / nn as f64,
        harmonic(nn),
        build_ms
    );

    // Estimate |B(u, r)| for sample vertices and radii; compare to exact.
    println!(
        "{:>8} {:>4} {:>10} {:>10} {:>8}",
        "vertex", "r", "exact", "estimate", "error"
    );
    let radii = [1u32, 2, 3];
    let mut rel_errors: Vec<f64> = Vec::new();
    for s in 0..8 {
        let u = (s * (nn / 8)) as u32;
        let exact_d = ri_graph::bfs_distances(&g, u);
        for &r in &radii {
            let exact = exact_d.iter().filter(|&&d| d <= r).count();
            // Minimum rank within radius r, read from the LE-list: entries
            // are (source, dist) with decreasing dist / increasing
            // priority; the first entry with dist ≤ r has the min rank.
            let min_rank = le.lists[u as usize]
                .iter()
                .find(|&&(_, d)| d <= r as f64)
                .map(|&(src, _)| rank_of[src as usize]);
            let estimate = match min_rank {
                Some(k) => nn as f64 / (k as f64 + 1.0),
                None => 0.0,
            };
            let err = (estimate - exact as f64).abs() / exact.max(1) as f64;
            rel_errors.push(err);
            println!(
                "{u:>8} {r:>4} {exact:>10} {estimate:>10.0} {:>7.0}%",
                err * 100.0
            );
        }
    }
    let mean_err = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
    println!(
        "\nmean relative error {:.0}% — a single LE-list gives a one-permutation\n\
         estimator (Cohen averages over O(log n) permutations to concentrate it);\n\
         the point here is that ALL ball sizes come from one parallel pass.",
        mean_err * 100.0
    );
}
