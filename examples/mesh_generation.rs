//! Mesh generation across point distributions — the §4 workload.
//!
//! Triangulates several point-cloud families, verifies the Delaunay
//! property, and reports the Theorem 4.5 accounting: measured InCircle
//! tests vs the `24 n ln n` bound, and the tests *saved* by Fact 4.1
//! (without which the constant would be ~36).
//!
//! Run with: `cargo run --release --example mesh_generation [n]`

use std::time::Instant;

use parallel_ri::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 13);

    println!("Delaunay mesh generation, n = {n}\n");
    println!(
        "{:<16} {:>9} {:>7} {:>12} {:>9} {:>9} {:>8} {:>8}",
        "distribution", "tris", "rounds", "incircle", "/nlnn", "saved", "seq ms", "par ms"
    );

    for dist in PointDistribution::all() {
        let pts = {
            let raw = ri_geometry::distributions::dedup_points(dist.generate(n, 7));
            let order = random_permutation(raw.len(), 11);
            order.iter().map(|&i| raw[i]).collect::<Vec<_>>()
        };
        let m = pts.len() as f64;
        let problem = DelaunayProblem::new(&pts);

        let t0 = Instant::now();
        let (seq, _) = problem.solve(&RunConfig::new().sequential());
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let (par, par_report) = problem.solve(&RunConfig::new().parallel());
        let par_ms = t0.elapsed().as_secs_f64() * 1e3;

        par.mesh
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid mesh: {e}", dist.name()));
        assert_eq!(
            seq.stats, par.stats,
            "parallel must perform the identical ReplaceBoundary calls"
        );

        println!(
            "{:<16} {:>9} {:>7} {:>12} {:>9.2} {:>9} {:>8.1} {:>8.1}",
            dist.name(),
            par.mesh.finite_triangles().len(),
            par_report.depth,
            par.stats.incircle_tests,
            par.stats.incircle_tests as f64 / (m * m.ln()),
            par.stats.skipped_tests,
            seq_ms,
            par_ms,
        );
    }

    println!(
        "\nTheorem 4.5: expected InCircle tests ≤ 24 n ln n + O(n); the '/nlnn'\n\
         column is the measured constant (uniform points sit well below 24\n\
         because the bound's 'every boundary has 4 creators' step is worst-case).\n\
         'saved' counts Fact 4.1 inheritances — tests a naive merge would add."
    );
}
