//! SCC decomposition of a synthetic web-like digraph — the setting where
//! the Coppersmith et al. algorithm is used in practice (§6.2 cites CUDA,
//! multicore and distributed implementations).
//!
//! Compares the Type 3 parallel incremental algorithm against Tarjan's
//! sequential algorithm on several graph shapes, reporting components,
//! reachability-query counts, per-vertex visit bounds and wall-clock time.
//!
//! Run with: `cargo run --release --example web_graph_scc [n]`

use std::time::Instant;

use parallel_ri::prelude::*;

fn count_components(labels: &[u32]) -> usize {
    let mut ids = labels.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 14);
    let scale = (n as f64).log2().ceil() as u32;

    println!("SCC on synthetic digraphs, n ≈ {n}\n");
    println!(
        "{:<14} {:>9} {:>9} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "graph", "m", "comps", "queries", "max v/v", "rounds", "tarjan ms", "par ms"
    );

    let graphs: Vec<(&str, CsrGraph)> = vec![
        (
            "web (rmat)",
            parallel_ri::graph::generators::rmat(scale, 8 * n, 1),
        ),
        (
            "gnm sparse",
            parallel_ri::graph::generators::gnm(n, 2 * n, 2, false),
        ),
        (
            "gnm dense",
            parallel_ri::graph::generators::gnm(n, 8 * n, 3, false),
        ),
        (
            "dag",
            parallel_ri::graph::generators::random_dag(n, 4 * n, 4),
        ),
        (
            "planted",
            parallel_ri::graph::generators::planted_sccs(&vec![n / 64; 64], 4 * n, 2 * n, 5).0,
        ),
    ];

    for (name, g) in graphs {
        let nv = g.num_vertices();
        let order = random_permutation(nv, 42);

        let t0 = Instant::now();
        let base = tarjan_scc(&g);
        let tarjan_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let (par, par_report) = SccProblem::new(&g)
            .with_order(order.clone())
            .solve(&RunConfig::new());
        let par_ms = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            canonical_labels(&par.comp),
            canonical_labels(&base),
            "{name}: parallel SCC disagrees with Tarjan"
        );

        println!(
            "{:<14} {:>9} {:>9} {:>8} {:>8} {:>9} {:>10.1} {:>10.1}",
            name,
            g.num_edges(),
            count_components(&base),
            par.queries,
            par.visits_per_vertex.iter().copied().max().unwrap_or(0),
            par_report.depth,
            tarjan_ms,
            par_ms,
        );
    }

    println!(
        "\nTheorem 6.4: every vertex is visited O(log n) times whp ('max v/v'\n\
         column; log₂ n = {:.0} here) across O(log n) rounds of reachability.\n\
         Tarjan is the work-optimal sequential baseline — the parallel version\n\
         trades an O(log n) work factor for round-parallelism.",
        (n as f64).log2()
    );
}
