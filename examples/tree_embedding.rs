//! Probabilistic tree embedding from LE-lists — the application the paper
//! cites for §6.1 (Blelloch–Gu–Sun, ICALP 2017; FRT-style embeddings).
//!
//! An FRT-style hierarchically-separated tree assigns every vertex, at
//! every distance scale `2^i`, to the *lowest-rank* vertex within distance
//! `β·2^i` — and "lowest-rank vertex within distance r" is precisely a
//! least-element-list lookup. One parallel LE-list construction therefore
//! yields the whole embedding; the expected distance distortion is
//! O(log n).
//!
//! This example builds the embedding on a weighted random graph, then
//! measures the distortion of tree distances against true shortest-path
//! distances over sample pairs.
//!
//! Run with: `cargo run --release --example tree_embedding [n]`

use parallel_ri::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 12);

    let g = parallel_ri::graph::generators::gnm_weighted(n, 8 * n, 3, true);
    let order = random_permutation(n, 5);
    let rank_of = {
        let mut r = vec![0usize; n];
        for (k, &v) in order.iter().enumerate() {
            r[v] = k;
        }
        r
    };

    let t0 = std::time::Instant::now();
    let (le, _) = LeListsProblem::new(&g)
        .with_order(order.clone())
        .solve(&RunConfig::new());
    let le_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Distance scales: weights are in [1,2), so shortest paths are ≲ 2·diam
    // hops; take levels until the radius covers the largest LE distance.
    let max_d = le
        .lists
        .iter()
        .flat_map(|l| l.iter().map(|&(_, d)| d))
        .fold(0.0f64, f64::max);
    let beta = 1.3; // fixed β (FRT randomises it; one sample suffices here)
    let levels: usize = (max_d / beta).log2().ceil().max(1.0) as usize + 1;

    // center(u, r) = lowest-rank vertex within distance r, read from u's
    // LE-list: first entry (in rank order) with distance ≤ r.
    let center = |u: usize, r: f64| -> Option<u32> {
        le.lists[u].iter().find(|&&(_, d)| d <= r).map(|&(s, _)| s)
    };

    // Leaf-to-root chain of centers per vertex = its HST address.
    let t0 = std::time::Instant::now();
    let chains: Vec<Vec<u32>> = (0..n)
        .map(|u| {
            (0..=levels)
                .map(|i| center(u, beta * (1 << i) as f64).unwrap_or(u as u32))
                .collect()
        })
        .collect();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Tree distance: 2 · Σ_{i ≤ LCA level} 2^i ≈ 2^{lca+2}; distortion vs
    // true shortest-path distance on sample pairs (same component only).
    let mut stretches = Vec::new();
    let samples = 400.min(n / 2);
    for s in 0..samples {
        let u = (s * 7919) % n;
        let dist = ri_graph::dijkstra_distances(&g, u as u32);
        let v = ((s * 104729) % n).max(1);
        let v = if v == u { (v + 1) % n } else { v };
        if !dist[v].is_finite() || dist[v] == 0.0 {
            continue;
        }
        // Lowest common level where the chains agree from there upward.
        let lca = (0..=levels)
            .find(|&i| chains[u][i..] == chains[v][i..])
            .unwrap_or(levels);
        let tree_dist: f64 = 2.0 * beta * ((1 << (lca + 1)) - 1) as f64;
        stretches.push(tree_dist / dist[v]);
    }
    stretches.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = stretches.iter().sum::<f64>() / stretches.len().max(1) as f64;

    println!("FRT-style tree embedding via parallel LE-lists");
    println!("  n = {n}, m = {}, levels = {}", g.num_edges(), levels + 1);
    println!(
        "  LE-lists: {le_ms:.1} ms  (avg len {:.2}, H_n = {:.2})",
        le.total_entries() as f64 / n as f64,
        harmonic(n)
    );
    println!("  chains  : {build_ms:.1} ms");
    println!(
        "  stretch over {} pairs: mean {:.2}, median {:.2}, p95 {:.2}, max {:.2}",
        stretches.len(),
        mean,
        stretches[stretches.len() / 2],
        stretches[stretches.len() * 95 / 100],
        stretches.last().unwrap()
    );
    println!(
        "  (tree distances dominate true distances — an HST never\n\
         underestimates — and the mean stretch is O(log n) in expectation;\n\
         ln n = {:.1} here. All level queries were answered from one\n\
         LE-list pass.)",
        (n as f64).ln()
    );

    // Sanity: tree distance must dominate (allowing fp slack).
    assert!(
        stretches.first().copied().unwrap_or(1.0) >= 0.99,
        "HST distance must dominate the metric"
    );
    // Verify rank monotonicity of chains: centers' ranks never increase
    // with level (larger balls can only find lower-rank centers).
    for chain in chains.iter().take(n) {
        for w in chain.windows(2) {
            assert!(
                rank_of[w[1] as usize] <= rank_of[w[0] as usize],
                "rank must be monotone along the chain"
            );
        }
    }
    println!("  invariants verified: domination + rank monotonicity ✓");
}
