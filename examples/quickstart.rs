//! 60-second tour of the library: one call per algorithm family, with the
//! paper-vs-measured numbers printed inline.
//!
//! Run with: `cargo run --release --example quickstart`

use parallel_ri::prelude::*;

fn main() {
    let n = 1 << 14;
    println!("parallel-ri quickstart (n = {n})\n");

    // One engine configuration drives every algorithm below.
    let cfg = RunConfig::new();

    // ---- §3: comparison sorting by parallel BST insertion (Type 1) ----
    let keys = random_permutation(n, 42);
    let (seq, _) = SortProblem::new(&keys).solve(&cfg.clone().sequential());
    let (par, report) = SortProblem::new(&keys).solve(&cfg);
    assert_eq!(seq.tree, par.tree, "Theorem 3.2: identical trees");
    println!(
        "sort       : {n} keys sorted in {} parallel rounds",
        report.depth
    );
    println!(
        "             dependence depth {} vs e·ln n ≈ {:.1} (Lemma 3.1)",
        par.tree.dependence_depth(),
        std::f64::consts::E * (n as f64).ln()
    );

    // ---- §4: Delaunay triangulation (Type 1, nested) ----
    let pts = PointDistribution::UniformSquare.generate(n, 7);
    let (dt, dt_report) = DelaunayProblem::new(&pts).solve(&cfg);
    dt.mesh.validate().expect("valid Delaunay triangulation");
    let rounds = dt_report.depth;
    let bound = 24.0 * (n as f64) * (n as f64).ln();
    println!(
        "delaunay   : {} triangles in {rounds} rounds; {} InCircle tests (24 n ln n = {:.0})",
        dt.mesh.finite_triangles().len(),
        dt.stats.incircle_tests,
        bound
    );

    // ---- §5.1: 2-D linear programming (Type 2) ----
    let inst = ri_lp::workloads::tangent_instance(n, 3);
    let (outcome, lp_report) = LpProblem::new(&inst).solve(&cfg);
    match outcome {
        LpOutcome::Optimal(x) => println!(
            "lp         : optimum {x} after {} tight constraints (≈ 2 ln n = {:.1})",
            lp_report.specials.len(),
            2.0 * (n as f64).ln()
        ),
        LpOutcome::Infeasible => unreachable!("tangent instances are feasible"),
    }

    // ---- §5.2: closest pair (Type 2) ----
    let (cp, cp_report) = ClosestPairProblem::new(&pts).solve(&cfg);
    println!(
        "closestpair: distance {:.2e} between points {:?} ({} grid rebuilds)",
        cp.dist,
        cp.pair,
        cp_report.specials.len()
    );

    // ---- §5.3: smallest enclosing disk (Type 2) ----
    let (sed, sed_report) = EnclosingProblem::new(&pts).solve(&cfg);
    println!(
        "enclosing  : radius {:.4} after {} boundary updates",
        sed.disk.radius(),
        sed_report.specials.len()
    );

    // ---- §6.1: least-element lists (Type 3) ----
    // Weighted graph: distinct distances, so list lengths follow H_n
    // (unweighted graphs truncate lists at diameter+1 entries).
    let g = parallel_ri::graph::generators::gnm_weighted(n, 8 * n, 5, true);
    let (le, le_report) = LeListsProblem::new(&g).solve(&cfg.clone().seed(6));
    println!(
        "le-lists   : avg list length {:.2} (H_n = {:.2}), max {} over {} rounds",
        le.total_entries() as f64 / n as f64,
        harmonic(n),
        le.max_list_len(),
        le_report.depth
    );

    // ---- §6.2: strongly connected components (Type 3) ----
    let dg = parallel_ri::graph::generators::gnm(n, 2 * n, 8, false);
    let (scc, scc_report) = SccProblem::new(&dg).solve(&cfg.clone().seed(9));
    let tarjan = tarjan_scc(&dg);
    assert_eq!(canonical_labels(&scc.comp), canonical_labels(&tarjan));
    let num_comps = {
        let mut ids: Vec<u32> = canonical_labels(&scc.comp);
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    println!(
        "scc        : {num_comps} components (== Tarjan), {} reachability query pairs, max {} visits/vertex",
        scc.queries,
        scc.visits_per_vertex.iter().copied().max().unwrap_or(0)
    );
    let _ = scc_report;

    println!("\nAll parallel runs reproduced their sequential counterparts exactly.");
}
