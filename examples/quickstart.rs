//! 60-second tour of the library: one call per algorithm family, with the
//! paper-vs-measured numbers printed inline.
//!
//! Run with: `cargo run --release --example quickstart`

use parallel_ri::prelude::*;

fn main() {
    let n = 1 << 14;
    println!("parallel-ri quickstart (n = {n})\n");

    // ---- §3: comparison sorting by parallel BST insertion (Type 1) ----
    let keys = random_permutation(n, 42);
    let seq = sequential_bst_sort(&keys);
    let par = parallel_bst_sort(&keys);
    assert_eq!(seq.tree, par.tree, "Theorem 3.2: identical trees");
    println!("sort       : {n} keys sorted in {} parallel rounds", par.log.rounds());
    println!(
        "             dependence depth {} vs e·ln n ≈ {:.1} (Lemma 3.1)",
        par.tree.dependence_depth(),
        std::f64::consts::E * (n as f64).ln()
    );

    // ---- §4: Delaunay triangulation (Type 1, nested) ----
    let pts = PointDistribution::UniformSquare.generate(n, 7);
    let dt = delaunay_parallel(&pts);
    dt.mesh.validate().expect("valid Delaunay triangulation");
    let rounds = dt.rounds.as_ref().unwrap().rounds();
    let bound = 24.0 * (n as f64) * (n as f64).ln();
    println!(
        "delaunay   : {} triangles in {rounds} rounds; {} InCircle tests (24 n ln n = {:.0})",
        dt.mesh.finite_triangles().len(),
        dt.stats.incircle_tests,
        bound
    );

    // ---- §5.1: 2-D linear programming (Type 2) ----
    let inst = ri_lp::workloads::tangent_instance(n, 3);
    let run = lp_parallel(&inst);
    match run.outcome {
        LpOutcome::Optimal(x) => println!(
            "lp         : optimum {x} after {} tight constraints (≈ 2 ln n = {:.1})",
            run.stats.specials.len(),
            2.0 * (n as f64).ln()
        ),
        LpOutcome::Infeasible => unreachable!("tangent instances are feasible"),
    }

    // ---- §5.2: closest pair (Type 2) ----
    let cp = closest_pair_parallel(&pts);
    println!(
        "closestpair: distance {:.2e} between points {:?} ({} grid rebuilds)",
        cp.dist,
        cp.pair,
        cp.stats.specials.len()
    );

    // ---- §5.3: smallest enclosing disk (Type 2) ----
    let sed = sed_parallel(&pts);
    println!(
        "enclosing  : radius {:.4} after {} boundary updates",
        sed.disk.radius(),
        sed.stats.specials.len()
    );

    // ---- §6.1: least-element lists (Type 3) ----
    // Weighted graph: distinct distances, so list lengths follow H_n
    // (unweighted graphs truncate lists at diameter+1 entries).
    let g = parallel_ri::graph::generators::gnm_weighted(n, 8 * n, 5, true);
    let order = random_permutation(n, 6);
    let le = le_lists_parallel(&g, &order);
    println!(
        "le-lists   : avg list length {:.2} (H_n = {:.2}), max {} over {} rounds",
        le.total_entries() as f64 / n as f64,
        harmonic(n),
        le.max_list_len(),
        le.stats.rounds.as_ref().unwrap().rounds()
    );

    // ---- §6.2: strongly connected components (Type 3) ----
    let dg = parallel_ri::graph::generators::gnm(n, 2 * n, 8, false);
    let order = random_permutation(n, 9);
    let scc = scc_parallel(&dg, &order);
    let tarjan = tarjan_scc(&dg);
    assert_eq!(canonical_labels(&scc.comp), canonical_labels(&tarjan));
    let num_comps = {
        let mut ids: Vec<u32> = canonical_labels(&scc.comp);
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    println!(
        "scc        : {num_comps} components (== Tarjan), {} reachability query pairs, max {} visits/vertex",
        scc.stats.queries,
        scc.stats.max_visits_per_vertex()
    );

    println!("\nAll parallel runs reproduced their sequential counterparts exactly.");
}
