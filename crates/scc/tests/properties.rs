//! Property tests for SCC: agreement with Tarjan on arbitrary digraphs and
//! the separating-dependence property of Definition 2 (the Figure 2 /
//! Lemma 6.3 experiment, E12), checked literally against the definition.

use proptest::prelude::*;
use ri_core::engine::{Problem, RunConfig};
use ri_graph::{reachable_in_partition, CsrGraph};
use ri_pram::{random_permutation, WorkCounter};
use ri_scc::{canonical_labels, tarjan_scc, SccProblem};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

fn arb_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (3usize..28).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_three_algorithms_agree((n, edges) in arb_digraph(), seed in any::<u64>()) {
        let g = CsrGraph::from_edges(n, &edges);
        let order = random_permutation(n, seed);
        let want = canonical_labels(&tarjan_scc(&g));
        let problem = SccProblem::new(&g).with_order(order.clone());
        prop_assert_eq!(canonical_labels(&problem.solve(&seq_cfg()).0.comp), want.clone());
        prop_assert_eq!(canonical_labels(&problem.solve(&par_cfg()).0.comp), want);
    }

    #[test]
    fn self_loops_and_parallel_edges((n, mut edges) in arb_digraph(), seed in any::<u64>()) {
        edges.push((0, 0));
        if let Some(&e) = edges.first() {
            edges.push(e);
            edges.push(e);
        }
        let g = CsrGraph::from_edges(n, &edges);
        let order = random_permutation(n, seed);
        let want = canonical_labels(&tarjan_scc(&g));
        let (par, _) = SccProblem::new(&g).with_order(order.clone()).solve(&par_cfg());
        prop_assert_eq!(canonical_labels(&par.comp), want);
    }

    /// Lemma 6.3 / Definition 2 (the Figure 2 experiment, E12), tested via
    /// its checkable consequences. A note on scope: the *literal* triple
    /// condition of Definition 2 instantiated with an **arbitrary**
    /// topological order T admits counterexamples — e.g. edges
    /// {2→3, 2→4, 2→0, 0→1} with insertion order (1, 4, 0, 3, 5, 2) and
    /// T = (2, 4, 3, 0, 1): vertex 1's iteration groups {0, 2} into one
    /// partition, vertex 4's iteration separates nothing, and then 0's
    /// backward search visits 2 although 4 lies strictly between them in
    /// `<_2` and ran first. (A different valid T, (2, 0, 1, 3, 4), orders
    /// the same triple harmlessly — the property is sensitive to the
    /// choice of T, which the paper leaves arbitrary; this part of the
    /// paper is the one its footnote 1 records as corrected after the
    /// conference version.) What the work bound actually needs — and what
    /// we verify — is the dependence-counting consequence:
    ///
    /// 1. a search can only visit a not-yet-carved vertex, so
    ///    `visits(v) ≤ 2·(rank(v) + 1)` deterministically, and
    /// 2. dependences only flow from earlier iterations: if a's search
    ///    visits c then a ran before c was carved.
    #[test]
    fn separating_dependence_consequences((n, edges) in arb_digraph(), seed in any::<u64>()) {
        let g = CsrGraph::from_edges(n, &edges);
        let gt = g.transpose();
        let order = random_permutation(n, seed);
        let rank: Vec<usize> = {
            let mut r = vec![0; n];
            for (k, &v) in order.iter().enumerate() { r[v] = k; }
            r
        };

        // --- Rerun Algorithm 7, recording visit sets per iteration. ---
        const DONE: u64 = u64::MAX;
        let (vc, rc) = (WorkCounter::new(), WorkCounter::new());
        let mut part = vec![0u64; n];
        let mut next_label = 1u64;
        // visited_by[v] = iterations whose searches visited v.
        let mut visited_by: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, &vi) in order.iter().enumerate() {
            if part[vi] == DONE { continue; }
            let fwd = reachable_in_partition(&g, vi as u32, &part, &vc, &rc);
            let bwd = reachable_in_partition(&gt, vi as u32, &part, &vc, &rc);
            for &u in fwd.iter().chain(&bwd) {
                if !visited_by[u as usize].contains(&k) {
                    visited_by[u as usize].push(k);
                }
            }
            let in_fwd: std::collections::HashSet<u32> = fwd.iter().copied().collect();
            let (l_fwd, l_bwd) = (next_label, next_label + 1);
            next_label += 2;
            for &u in &bwd {
                part[u as usize] = if in_fwd.contains(&u) { DONE } else { l_bwd };
            }
            for &u in &fwd {
                if part[u as usize] != DONE && part[u as usize] != l_bwd {
                    part[u as usize] = l_fwd;
                }
            }
        }

        // Carve time of each vertex: the first iteration whose SCC contains
        // it. Recomputed from the final result: vertex v is carved by the
        // minimum-rank member of its own SCC.
        let comp = canonical_labels(&tarjan_scc(&g));
        let mut carve_rank = vec![usize::MAX; n];
        for v in 0..n {
            // v is carved by the minimum-rank member of its own SCC.
            carve_rank[v] = (0..n)
                .filter(|&u| comp[u] == comp[v])
                .map(|u| rank[u])
                .min()
                .unwrap();
        }

        for c in 0..n {
            // (1) Deterministic visit bound.
            prop_assert!(
                visited_by[c].len() <= 2 * (carve_rank[c] + 1),
                "vertex {c} visited {} times but carved at rank {}",
                visited_by[c].len(),
                carve_rank[c]
            );
            // (2) Dependences flow from iterations no later than the carve.
            for &k in &visited_by[c] {
                prop_assert!(
                    k <= carve_rank[c],
                    "iteration {k} visited {c} after it was carved (rank {})",
                    carve_rank[c]
                );
            }
        }
    }
}
