//! Registry entry: `"scc"` — incremental strongly connected components
//! over a seeded random digraph (§6.2, Type 3). Shapes: `"gnm"`
//! (default), `"dag"`, `"rmat"` (skewed power-law degrees, exactly `n`
//! vertices), `"planted"` (planted SCCs of >= 8 vertices each, up to 64
//! of them, sizes summing to n), plus the adversarial `"deep-path"` (a
//! hidden-order spine with shortcuts and giant back-edge cycles — the
//! worst case for reachability-based partitioning) and `"grid"` (a
//! bidirected high-diameter grid), with `param` as average out-degree
//! (default 4). The processing order is drawn from the *run* config's
//! seed. Every shape honors `spec.n` exactly, which the streaming
//! adapter's vertex-prefix reveal relies on.
//!
//! The native streaming adapter fixes the full digraph at open and
//! reveals its **vertex prefix**: each batch solves the subgraph induced
//! by the first `cumulative` vertices (edges with both endpoints inside
//! the prefix), reporting the updated component membership as the delta.

use ri_core::engine::json::Value;
use ri_core::engine::registry::{ErasedIncremental, ErasedProblem, OutputSummary, Registry};
use ri_core::engine::session::{BatchDelta, FeedState};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_graph::generators::degree_edges;
use ri_graph::CsrGraph;

use crate::{canonical_labels, SccProblem};

/// Build the full workload digraph from `spec`: the shared path of the
/// one-shot constructor and the streaming adapter's open.
fn build_graph(spec: &ri_core::engine::registry::WorkloadSpec) -> Result<CsrGraph, String> {
    if spec.n == 0 {
        return Err("scc needs at least 1 vertex".into());
    }
    let m = degree_edges(spec.n, spec.param_or(4.0))?;
    let g = match spec.shape_or("gnm") {
        "gnm" => ri_graph::generators::gnm(spec.n, m, spec.seed, false),
        "dag" => ri_graph::generators::random_dag(spec.n, m, spec.seed),
        // rmat_n, not rmat: the raw generator rounds n up to a power of
        // two, which would let the streamed vertex prefix stop short of
        // the full graph (capacity is spec.n).
        "rmat" => {
            if spec.n < 2 {
                return Err("scc rmat needs at least 2 vertices".into());
            }
            ri_graph::generators::rmat_n(spec.n, m, spec.seed, false)
        }
        "deep-path" => {
            if spec.n < 2 {
                return Err("scc deep-path needs at least 2 vertices".into());
            }
            ri_graph::generators::deep_path(spec.n, m.saturating_sub(spec.n - 1), spec.seed, false)
        }
        "grid" => ri_graph::generators::grid2d_n(spec.n, spec.seed),
        "planted" => {
            // Plant SCCs of >= 8 vertices (up to 64 of them) and
            // spread the remainder so the sizes sum to exactly n —
            // a planted shape must actually contain cycles.
            let parts = (spec.n / 8).clamp(1, 64);
            let (base, extra) = (spec.n / parts, spec.n % parts);
            let sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < extra)).collect();
            ri_graph::generators::planted_sccs(&sizes, m / 2, m / 2, spec.seed).0
        }
        other => {
            return Err(format!(
                "unknown scc graph shape `{other}` (known: gnm, dag, rmat, \
                 planted, deep-path, grid)"
            ))
        }
    };
    Ok(g)
}

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "scc",
        "incremental strongly connected components of a random digraph (§6.2, Type 3)",
        |spec| {
            Ok(Box::new(SccWorkload {
                g: build_graph(spec)?,
            }))
        },
    );
    reg.register_incremental("scc", |spec| {
        let g = build_graph(spec)?;
        let mut edges = Vec::with_capacity(g.num_edges());
        for u in 0..g.num_vertices() as u32 {
            for &v in g.neighbors(u) {
                edges.push((u, v));
            }
        }
        Ok(Box::new(SccStream {
            g,
            edges,
            labels: Vec::new(),
            state: FeedState::new(spec.n),
        }))
    });
}

fn summarize(g: &CsrGraph, cfg: &RunConfig) -> (OutputSummary, RunReport, Vec<u32>) {
    let (out, report) = SccProblem::new(g).solve(cfg);
    let mut s = OutputSummary::new();
    s.answer_num("vertices", g.num_vertices() as f64)
        .answer_num("components", out.num_components() as f64)
        .metric_num("queries", out.queries as f64)
        .metric_num("max_visits_per_vertex", out.max_visits_per_vertex() as f64);
    let labels = canonical_labels(&out.comp);
    (s, report, labels)
}

/// FNV-1a over the canonical label vector, masked below 2⁵³ so the
/// checksum survives a JSON (f64) round trip exactly.
fn label_checksum(labels: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in labels {
        for byte in l.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1_0000_0193);
        }
    }
    h & ((1 << 53) - 1)
}

struct SccWorkload {
    g: CsrGraph,
}

impl ErasedProblem for SccWorkload {
    fn name(&self) -> &str {
        "scc"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (s, report, _) = summarize(&self.g, cfg);
        (s, report)
    }
}

/// The native streaming adapter. Each batch solves the subgraph induced
/// by the revealed vertex prefix; at full capacity the original graph
/// object is solved directly, so the final streamed answer and trace are
/// the one-shot solve's bit for bit. The delta reports the component
/// count, how many previously-revealed vertices changed canonical
/// component label (merges as new vertices close cycles), and a label
/// checksum.
struct SccStream {
    g: CsrGraph,
    /// The full graph's edge list, for induced-prefix rebuilds.
    edges: Vec<(u32, u32)>,
    /// Canonical component labels of the previous prefix.
    labels: Vec<u32>,
    state: FeedState,
}

impl ErasedIncremental for SccStream {
    fn name(&self) -> &str {
        "scc"
    }

    fn capacity(&self) -> usize {
        self.state.capacity()
    }

    fn absorbed(&self) -> usize {
        self.state.absorbed()
    }

    fn native(&self) -> bool {
        true
    }

    fn approx_bytes(&self) -> usize {
        self.edges.len() * 8 + self.g.num_vertices() * 8 + self.labels.len() * 4 + 256
    }

    fn feed(&mut self, count: usize, cfg: &RunConfig) -> Result<(BatchDelta, RunReport), String> {
        let (batch, _lo, hi) = self.state.advance(count)?;
        let capacity = self.state.capacity();
        let induced;
        let g = if hi == capacity {
            &self.g
        } else {
            let prefix_edges: Vec<(u32, u32)> = self
                .edges
                .iter()
                .copied()
                .filter(|&(u, v)| (u as usize) < hi && (v as usize) < hi)
                .collect();
            induced = CsrGraph::from_edges(hi, &prefix_edges);
            &induced
        };
        let (summary, report, labels) = summarize(g, cfg);
        let relabeled = self
            .labels
            .iter()
            .zip(&labels)
            .filter(|(prev, cur)| prev != cur)
            .count();
        let components = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        let prev_components = self
            .labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        let delta = Value::Obj(vec![
            ("components".into(), Value::Num(components as f64)),
            ("prev_components".into(), Value::Num(prev_components as f64)),
            ("relabeled".into(), Value::Num(relabeled as f64)),
            (
                "checksum".into(),
                Value::Num(label_checksum(&labels) as f64),
            ),
        ]);
        self.labels = labels;
        Ok((
            BatchDelta::solved(batch, count, hi, capacity, delta, &summary, &report),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves_all_shapes() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in ["gnm", "dag", "rmat", "planted", "deep-path", "grid"] {
            // 100 is not a power of two: the old rmat shape would have
            // built 128 vertices here.
            let spec = WorkloadSpec::new(100, 2).shape(shape);
            let (summary, report) = reg.solve("scc", &spec, &RunConfig::new().seed(3)).unwrap();
            assert!(
                summary.to_json().contains("\"vertices\":100"),
                "{shape} inflated n: {}",
                summary.to_json()
            );
            assert!(summary.to_json().contains("components"), "{shape}");
            assert!(report.items > 0, "{shape}");
        }
        assert!(reg
            .construct("scc", &WorkloadSpec::new(128, 2).shape("sideways"))
            .is_err());
    }

    #[test]
    fn components_match_tarjan_through_registry() {
        let g = ri_graph::generators::gnm(200, 800, 9, false);
        let (out, _) = SccProblem::new(&g).solve(&RunConfig::new().seed(4));
        let want = {
            let mut t = crate::canonical_labels(&crate::tarjan_scc(&g));
            t.sort_unstable();
            t.dedup();
            t.len()
        };
        assert_eq!(out.num_components(), want);
    }

    #[test]
    fn stream_reveals_the_vertex_prefix_and_matches_one_shot() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in ["gnm", "planted"] {
            let spec = WorkloadSpec::new(96, 2).shape(shape);
            let cfg = RunConfig::new().seed(3);
            let mut inc = reg.construct_incremental("scc", &spec).unwrap();
            assert!(inc.native(), "{shape}");
            let (d0, _) = inc.feed(30, &cfg).unwrap();
            assert!(!d0.pending, "{shape}");
            assert_eq!(
                d0.delta.get("relabeled"),
                Some(&Value::Num(0.0)),
                "{shape}: nothing revealed before the first batch"
            );
            let (d1, _) = inc.feed(50, &cfg).unwrap();
            // Induced subgraphs only lose edges vs the final graph, so
            // intermediate prefixes can only have MORE components per
            // vertex; the count itself is just checked for presence.
            assert!(d1.delta.get("components").is_some(), "{shape}");
            let (d2, _) = inc.feed(16, &cfg).unwrap();
            assert!(d2.complete, "{shape}");
            let (one_shot, report) = reg.solve("scc", &spec, &cfg).unwrap();
            assert_eq!(d2.answer, one_shot.answer().to_vec(), "{shape}");
            assert_eq!(
                d2.trace,
                ri_core::engine::RoundTrace::from_report(&report),
                "{shape}"
            );
        }
    }
}
