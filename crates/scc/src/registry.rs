//! Registry entry: `"scc"` — incremental strongly connected components
//! over a seeded random digraph (§6.2, Type 3). Shapes: `"gnm"`
//! (default), `"dag"`, `"rmat"`, `"planted"` (planted SCCs of >= 8
//! vertices each, up to 64 of them, sizes summing to n), with
//! `param` as average out-degree (default 4). The processing order is
//! drawn from the *run* config's seed.

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_graph::generators::degree_edges;
use ri_graph::CsrGraph;

use crate::SccProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "scc",
        "incremental strongly connected components of a random digraph (§6.2, Type 3)",
        |spec| {
            if spec.n == 0 {
                return Err("scc needs at least 1 vertex".into());
            }
            let m = degree_edges(spec.n, spec.param_or(4.0))?;
            let g = match spec.shape_or("gnm") {
                "gnm" => ri_graph::generators::gnm(spec.n, m, spec.seed, false),
                "dag" => ri_graph::generators::random_dag(spec.n, m, spec.seed),
                "rmat" => {
                    let scale = (spec.n as f64).log2().ceil().max(1.0) as u32;
                    ri_graph::generators::rmat(scale, m, spec.seed)
                }
                "planted" => {
                    // Plant SCCs of >= 8 vertices (up to 64 of them) and
                    // spread the remainder so the sizes sum to exactly n —
                    // a planted shape must actually contain cycles.
                    let parts = (spec.n / 8).clamp(1, 64);
                    let (base, extra) = (spec.n / parts, spec.n % parts);
                    let sizes: Vec<usize> =
                        (0..parts).map(|i| base + usize::from(i < extra)).collect();
                    ri_graph::generators::planted_sccs(&sizes, m / 2, m / 2, spec.seed).0
                }
                other => {
                    return Err(format!(
                        "unknown scc graph shape `{other}` (known: gnm, dag, rmat, planted)"
                    ))
                }
            };
            Ok(Box::new(SccWorkload { g }))
        },
    );
}

struct SccWorkload {
    g: CsrGraph,
}

impl ErasedProblem for SccWorkload {
    fn name(&self) -> &str {
        "scc"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = SccProblem::new(&self.g).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("vertices", self.g.num_vertices() as f64)
            .answer_num("components", out.num_components() as f64)
            .metric_num("queries", out.queries as f64)
            .metric_num("max_visits_per_vertex", out.max_visits_per_vertex() as f64);
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves_all_shapes() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in ["gnm", "dag", "rmat", "planted"] {
            let spec = WorkloadSpec::new(128, 2).shape(shape);
            let (summary, report) = reg.solve("scc", &spec, &RunConfig::new().seed(3)).unwrap();
            assert!(summary.to_json().contains("components"), "{shape}");
            assert!(report.items > 0, "{shape}");
        }
        assert!(reg
            .construct("scc", &WorkloadSpec::new(128, 2).shape("sideways"))
            .is_err());
    }

    #[test]
    fn components_match_tarjan_through_registry() {
        let g = ri_graph::generators::gnm(200, 800, 9, false);
        let (out, _) = SccProblem::new(&g).solve(&RunConfig::new().seed(4));
        let want = {
            let mut t = crate::canonical_labels(&crate::tarjan_scc(&g));
            t.sort_unstable();
            t.dedup();
            t.len()
        };
        assert_eq!(out.num_components(), want);
    }
}
