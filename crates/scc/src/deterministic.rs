//! The deterministic SCC combine — §6.2's *"Acquiring the same
//! intermediate states as the sequential algorithm"*.
//!
//! The default parallel combine (parallel mode of
//! [`SccProblem`](crate::SccProblem)) is the paper's
//! eager variant: it cuts the partition by *every* search of a round,
//! which is "more aggressive than the sequential algorithm, but this will
//! only help". When determinism of intermediate states matters, the paper
//! describes a filter: process the round's searches per vertex in priority
//! order and drop the ones the sequential execution would not have made.
//!
//! The filter's core observation (paper): *"vertex z is forward reached
//! from x and reached from y, and at the meantime x has a higher priority.
//! The search of y affects z if and only if y is also reached in x's
//! forward search."* — because any path `y ⇝ z` stays on one side of `x`'s
//! forward split (if `x` reaches an intermediate vertex it reaches `z`
//! too), searching from `y` survives `x`'s split exactly when `y` and `z`
//! land on the same side. We implement the general form: per vertex a
//! running *signature* (its sequential sub-partition id within the round);
//! search `k` affects `z` iff `z`'s signature equals the signature of
//! `k`'s center at `k`'s turn. Signatures then refine by `k`'s
//! (fwd?, bwd?) membership. The result: after every round, the partition
//! (and the carved SCCs) are **identical** to the sequential algorithm's
//! state after the same prefix of iterations — verified by the tests
//! below.

use ri_core::engine::{execute_type3, RunConfig};
use ri_core::Type3Algorithm;
use ri_graph::{reachable_in_partition, CsrGraph};
use ri_pram::hash::{hash_combine, hash_u64, FxHashSet};
use ri_pram::WorkCounter;

use crate::incremental::{SccResult, SccStats};

const DONE: u64 = u64::MAX;

/// Result of a deterministic parallel run, with per-round partition
/// snapshots for state-equivalence checking.
#[derive(Debug)]
pub struct DetSccRun {
    /// The standard result (components, stats).
    pub result: SccResult,
    /// Partition labels after each round (index = round), `u64::MAX` =
    /// assigned to an SCC. Compare against sequential prefix states with
    /// [`partition_classes`].
    pub snapshots: Vec<Vec<u64>>,
}

struct DetState<'a> {
    g: &'a CsrGraph,
    gt: CsrGraph,
    order: &'a [usize],
    part: Vec<u64>,
    comp: Vec<u32>,
    visits: WorkCounter,
    relax: WorkCounter,
    queries: u64,
    snapshots: Vec<Vec<u64>>,
    work_mark: u64,
}

struct Footprint {
    fwd: Vec<u32>,
    bwd: Vec<u32>,
}

impl Type3Algorithm for DetState<'_> {
    type Output = Option<Footprint>;

    fn len(&self) -> usize {
        self.order.len()
    }

    fn run_iteration(&self, k: usize) -> Self::Output {
        let v = self.order[k] as u32;
        if self.part[v as usize] == DONE {
            return None;
        }
        Some(Footprint {
            fwd: reachable_in_partition(self.g, v, &self.part, &self.visits, &self.relax),
            bwd: reachable_in_partition(&self.gt, v, &self.part, &self.visits, &self.relax),
        })
    }

    fn combine(&mut self, lo: usize, outputs: &mut Vec<Self::Output>) -> u64 {
        // Per-round signatures: sig[z] starts at the frozen partition label
        // and refines search by search; kept in a side array indexed by
        // vertex (only touched vertices matter, but dense is simpler and
        // the round already did Ω(touched) work).
        let mut sig: Vec<u64> = self.part.clone();

        for (off, out) in outputs.drain(..).enumerate() {
            let k = (lo + off) as u32;
            let Some(fp) = out else { continue };
            let center = self.order[k as usize];
            // Sequentially, this center may already have been carved by an
            // earlier search *of this round*: then its iteration is the
            // paper's "S = ∅" skip and the whole search is filtered out.
            let sc = sig[center];
            if sc == DONE {
                continue;
            }
            self.queries += 1;

            let fwd_set: FxHashSet<u32> = fp.fwd.iter().copied().collect();
            let bwd_set: FxHashSet<u32> = fp.bwd.iter().copied().collect();
            // Apply the split to exactly the vertices this search reaches
            // sequentially: those whose signature matches the center's.
            // "Rest" vertices keep their signature, matching the sequential
            // convention that the remainder keeps its old label. A vertex
            // in both lists is visited twice by the chain; the signature
            // update on the first occurrence makes the `sig[zu] != sc`
            // filter skip the second, and both membership flags are
            // evaluated per occurrence, so carving wins on first sight.
            let salt = hash_u64(0x0DE7 ^ k as u64);
            let relabel =
                |flag: u64| hash_combine(hash_combine(salt, flag), hash_u64(sc)) & !(1 << 63);
            for &z in fp.fwd.iter().chain(&fp.bwd) {
                let zu = z as usize;
                if sig[zu] != sc {
                    continue; // filtered: sequentially unreachable
                }
                match (fwd_set.contains(&z), bwd_set.contains(&z)) {
                    (true, true) => {
                        sig[zu] = DONE;
                        self.comp[zu] = center as u32;
                    }
                    (true, false) => sig[zu] = relabel(1),
                    (false, _) => sig[zu] = relabel(2),
                }
            }
        }
        self.part = sig;
        self.snapshots.push(self.part.clone());

        let now = self.visits.get() + self.relax.get();
        let round_work = now - self.work_mark;
        self.work_mark = now;
        round_work
    }
}

/// Parallel SCC with the deterministic (sequential-faithful) combine.
///
/// Produces not only the same final components as the sequential run
/// ([`SccProblem`](crate::SccProblem) in sequential mode) but the same
/// *partition state* at every round boundary — at the cost of per-vertex membership filtering in the
/// combine (same asymptotic work).
pub fn scc_parallel_deterministic(g: &CsrGraph, order: &[usize]) -> DetSccRun {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover every vertex");
    let mut st = DetState {
        g,
        gt: g.transpose(),
        order,
        part: vec![0u64; n],
        comp: vec![u32::MAX; n],
        visits: WorkCounter::new(),
        relax: WorkCounter::new(),
        queries: 0,
        snapshots: Vec::new(),
        work_mark: 0,
    };
    let log = execute_type3(&mut st, &RunConfig::new().parallel()).rounds;
    debug_assert!(st.comp.iter().all(|&c| c != u32::MAX));
    DetSccRun {
        result: SccResult {
            comp: st.comp,
            stats: SccStats {
                visits: st.visits.get(),
                relaxations: st.relax.get(),
                visits_per_vertex: Vec::new(),
                queries: st.queries,
                rounds: Some(log),
                rank_inversions: 0,
            },
        },
        snapshots: st.snapshots,
    }
}

/// Canonicalise a partition into comparable equivalence classes: each
/// vertex maps to the smallest vertex sharing its label (`u64::MAX`
/// labels — carved vertices — map to themselves marked by `u32::MAX`).
pub fn partition_classes(part: &[u64]) -> Vec<u32> {
    use std::collections::HashMap;
    let mut min_of: HashMap<u64, u32> = HashMap::new();
    for (v, &p) in part.iter().enumerate() {
        if p != DONE {
            let e = min_of.entry(p).or_insert(v as u32);
            if (v as u32) < *e {
                *e = v as u32;
            }
        }
    }
    part.iter()
        .map(|&p| if p == DONE { u32::MAX } else { min_of[&p] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{scc_sequential_impl, sequential_partition_after};
    use crate::{canonical_labels, tarjan_scc};
    use ri_core::prefix_rounds;
    use ri_graph::generators::{gnm, planted_sccs, random_dag};
    use ri_pram::random_permutation;

    fn check_state_equivalence(g: &CsrGraph, order: &[usize], tag: &str) {
        let det = scc_parallel_deterministic(g, order);
        // Final components equal Tarjan.
        assert_eq!(
            canonical_labels(&det.result.comp),
            canonical_labels(&tarjan_scc(g)),
            "{tag}: components"
        );
        // Partition state after every round equals the sequential partition
        // after the same prefix of iterations.
        for (r, (lo, hi)) in prefix_rounds(order.len()).into_iter().enumerate() {
            let _ = lo;
            let seq_part = sequential_partition_after(g, order, hi);
            assert_eq!(
                partition_classes(&det.snapshots[r]),
                partition_classes(&seq_part),
                "{tag}: partition state diverges after round {r} (prefix {hi})"
            );
        }
    }

    #[test]
    fn state_equivalence_random_digraphs() {
        for seed in 0..5 {
            let g = gnm(60, 180, seed, false);
            let order = random_permutation(60, seed ^ 0xD1);
            check_state_equivalence(&g, &order, "gnm");
        }
    }

    #[test]
    fn state_equivalence_dags() {
        for seed in 0..4 {
            let g = random_dag(50, 150, seed);
            let order = random_permutation(50, seed ^ 0xD2);
            check_state_equivalence(&g, &order, "dag");
        }
    }

    #[test]
    fn state_equivalence_planted() {
        for seed in 0..4 {
            let (g, _) = planted_sccs(&[8, 3, 12, 1, 6], 30, 40, seed);
            let order = random_permutation(30, seed ^ 0xD3);
            check_state_equivalence(&g, &order, "planted");
        }
    }

    #[test]
    fn deterministic_queries_match_sequential() {
        // The filter must skip exactly the searches sequential would skip.
        for seed in 0..5 {
            let g = gnm(120, 400, seed, false);
            let order = random_permutation(120, seed ^ 0xD4);
            let seq = scc_sequential_impl(&g, &order);
            let det = scc_parallel_deterministic(&g, &order);
            assert_eq!(
                seq.stats.queries, det.result.stats.queries,
                "seed {seed}: filtered query count differs"
            );
        }
    }

    #[test]
    fn partition_classes_canonicalisation() {
        assert_eq!(partition_classes(&[5, 9, 5, DONE]), vec![0, 1, 0, u32::MAX]);
    }
}
