//! Algorithm 7 (sequential) and its Type 3 parallelisation.

use ri_core::engine::{execute_type3, RunConfig};
use ri_core::Type3Algorithm;
use ri_graph::{reachable_in_partition, CsrGraph};
use ri_pram::hash::{hash_combine, hash_u64};
use ri_pram::{semisort_by_key, RoundLog, WorkCounter};

/// Partition label of vertices already assigned to an SCC: no restricted
/// search ever matches it (searches start from undone vertices only).
const DONE: u64 = u64::MAX;

/// Result of an SCC run.
#[derive(Debug)]
pub struct SccResult {
    /// `comp[v]` = id of `v`'s SCC. Ids are vertex ids (`< n`) — the
    /// carving center — so [`crate::canonical_labels`] applies directly.
    pub comp: Vec<u32>,
    /// Work and round statistics.
    pub stats: SccStats,
}

/// Work/depth measurements of a run.
#[derive(Debug, Default)]
pub struct SccStats {
    /// Settled vertices over all reachability searches (both directions).
    pub visits: u64,
    /// Scanned edges over all searches.
    pub relaxations: u64,
    /// Per-vertex visit counts (Theorem 6.4: max is `O(log n)` whp).
    pub visits_per_vertex: Vec<u32>,
    /// Number of (non-skipped) reachability query pairs issued.
    pub queries: u64,
    /// Rounds of the parallel executor (`None` for sequential runs).
    pub rounds: Option<RoundLog>,
    /// Out-of-priority-order pops of the relaxed scheduler (0 outside
    /// relaxed-mode runs).
    pub rank_inversions: u64,
}

impl SccStats {
    /// Largest per-vertex visit count.
    pub fn max_visits_per_vertex(&self) -> u32 {
        self.visits_per_vertex.iter().copied().max().unwrap_or(0)
    }
}

/// Algorithm 7: sequential incremental SCC. `order[i]` is the vertex
/// processed at iteration `i`.
pub(crate) fn scc_sequential_impl(g: &CsrGraph, order: &[usize]) -> SccResult {
    scc_sequential_prefix(g, order, order.len()).0
}

/// Partition labels (`u64::MAX` = carved into an SCC) after sequentially
/// processing the first `m` iterations of Algorithm 7. Used by the
/// deterministic-combine state-equivalence tests (§6.2's "same
/// intermediate states" variant).
pub fn sequential_partition_after(g: &CsrGraph, order: &[usize], m: usize) -> Vec<u64> {
    scc_sequential_prefix(g, order, m).1
}

fn scc_sequential_prefix(g: &CsrGraph, order: &[usize], m: usize) -> (SccResult, Vec<u64>) {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover every vertex");
    assert!(m <= n);
    let gt = g.transpose();
    let mut part = vec![0u64; n];
    let mut comp = vec![u32::MAX; n];
    let mut next_label = 1u64;
    let visits = WorkCounter::new();
    let relax = WorkCounter::new();
    let mut per_vertex = vec![0u32; n];
    let mut queries = 0u64;

    for &vi in &order[..m] {
        let v = vi as u32;
        if part[vi] == DONE {
            continue; // the paper's "S = ∅" skip
        }
        queries += 1;
        let fwd = reachable_in_partition(g, v, &part, &visits, &relax);
        let bwd = reachable_in_partition(&gt, v, &part, &visits, &relax);
        for &u in fwd.iter().chain(&bwd) {
            per_vertex[u as usize] += 1;
        }
        // V_scc = R+ ∩ R−.
        let in_fwd: std::collections::HashSet<u32> = fwd.iter().copied().collect();
        let l_fwd = next_label;
        let l_bwd = next_label + 1;
        next_label += 2;
        for &u in &bwd {
            if in_fwd.contains(&u) {
                part[u as usize] = DONE;
                comp[u as usize] = v;
            } else {
                part[u as usize] = l_bwd;
            }
        }
        for &u in &fwd {
            if part[u as usize] != DONE && part[u as usize] != l_bwd {
                part[u as usize] = l_fwd;
            }
        }
        // The remainder S \ (R+ ∪ R−) keeps its old label.
    }
    debug_assert!(m < n || comp.iter().all(|&c| c != u32::MAX));
    (
        SccResult {
            comp,
            stats: SccStats {
                visits: visits.get(),
                relaxations: relax.get(),
                visits_per_vertex: per_vertex,
                queries,
                rounds: None,
                rank_inversions: 0,
            },
        },
        part,
    )
}

struct ParState<'a> {
    g: &'a CsrGraph,
    gt: CsrGraph,
    order: &'a [usize],
    part: Vec<u64>,
    comp: Vec<u32>,
    visits: WorkCounter,
    relax: WorkCounter,
    per_vertex: Vec<u32>,
    queries: u64,
    /// Counter totals at the end of the previous round (the searches run
    /// in `run_iteration`, so per-round work is measured between combines).
    work_mark: u64,
}

/// One search's footprint: the vertices reached forward and backward.
struct Footprint {
    fwd: Vec<u32>,
    bwd: Vec<u32>,
}

impl Type3Algorithm for ParState<'_> {
    type Output = Option<Footprint>;

    fn len(&self) -> usize {
        self.order.len()
    }

    fn run_iteration(&self, k: usize) -> Self::Output {
        let v = self.order[k] as u32;
        if self.part[v as usize] == DONE {
            return None;
        }
        // Both searches run against the frozen partition of the previous
        // round.
        Some(Footprint {
            fwd: reachable_in_partition(self.g, v, &self.part, &self.visits, &self.relax),
            bwd: reachable_in_partition(&self.gt, v, &self.part, &self.visits, &self.relax),
        })
    }

    fn combine(&mut self, lo: usize, outputs: &mut Vec<Self::Output>) -> u64 {
        // Flatten to (vertex, center iteration k, direction) records.
        // The flat buffer (and the per-group center lists below) come from
        // the engine's scratch arena, so every round reuses allocations.
        const FWD: u32 = 0;
        const BWD: u32 = 1;
        let mut records: Vec<(u32, u32, u32)> = ri_pram::take_vec();
        for (off, out) in outputs.drain(..).enumerate() {
            let k = (lo + off) as u32;
            if let Some(fp) = out {
                self.queries += 1;
                for u in fp.fwd {
                    records.push((u, k, FWD));
                }
                for u in fp.bwd {
                    records.push((u, k, BWD));
                }
            }
        }
        for &(u, _, _) in &records {
            self.per_vertex[u as usize] += 1;
        }

        // Group the searches touching each vertex. Stability keeps each
        // group in center order (records were appended in k order).
        let grouped = semisort_by_key(records, |&(u, _, _)| u as u64);
        let mut fwd_ks: Vec<u32> = ri_pram::take_vec();
        let mut bwd_ks: Vec<u32> = ri_pram::take_vec();
        for (ukey, recs) in grouped.iter() {
            let u = ukey as usize;
            if self.part[u] == DONE {
                // Can happen only if u was carved in an *earlier* round and
                // a search still saw it — impossible with frozen partitions
                // (DONE vertices are excluded), so this is a hard error.
                unreachable!("search reached DONE vertex {u}");
            }
            fwd_ks.clear();
            bwd_ks.clear();
            fwd_ks.extend(recs.iter().filter(|r| r.2 == FWD).map(|r| r.1));
            bwd_ks.extend(recs.iter().filter(|r| r.2 == BWD).map(|r| r.1));
            // Minimum common center: u belongs to that center's SCC.
            let common = first_common(&fwd_ks, &bwd_ks);
            if let Some(c) = common {
                self.part[u] = DONE;
                self.comp[u] = self.order[c as usize] as u32;
            } else {
                // Eager refinement: any search separating two vertices cuts
                // them apart — the signature is (old label, fwd set, bwd set).
                let mut sig = hash_u64(self.part[u]);
                for &k in &fwd_ks {
                    sig = hash_combine(sig, (k as u64) << 1);
                }
                sig = hash_combine(sig, 0x5eed_5eed);
                for &k in &bwd_ks {
                    sig = hash_combine(sig, ((k as u64) << 1) | 1);
                }
                self.part[u] = sig & !(1 << 63); // keep clear of DONE
            }
        }
        ri_pram::put_vec(fwd_ks);
        ri_pram::put_vec(bwd_ks);
        ri_pram::put_vec(grouped.records);
        let now = self.visits.get() + self.relax.get();
        let round_work = now - self.work_mark;
        self.work_mark = now;
        round_work
    }
}

/// First element present in both ascending lists.
fn first_common(a: &[u32], b: &[u32]) -> Option<u32> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => return Some(a[i]),
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    None
}

/// Type 3 parallel SCC (Algorithm 2 applied to Algorithm 7): same
/// components as the sequential run / [`crate::tarjan_scc`], `O(log n)`
/// rounds of reachability. `cfg` selects the round schedule — exact
/// parallel or k-relaxed (the frozen-state rounds make relaxed execution
/// answer-identical); sequential requests take the dedicated
/// [`scc_sequential_impl`] path instead.
pub(crate) fn scc_parallel_impl(g: &CsrGraph, order: &[usize], cfg: &RunConfig) -> SccResult {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover every vertex");
    let mut st = ParState {
        g,
        gt: g.transpose(),
        order,
        part: vec![0u64; n],
        comp: vec![u32::MAX; n],
        visits: WorkCounter::new(),
        relax: WorkCounter::new(),
        per_vertex: vec![0u32; n],
        queries: 0,
        work_mark: 0,
    };
    let inner = execute_type3(&mut st, cfg);
    debug_assert!(st.comp.iter().all(|&c| c != u32::MAX));
    SccResult {
        comp: st.comp,
        stats: SccStats {
            visits: st.visits.get(),
            relaxations: st.relax.get(),
            visits_per_vertex: st.per_vertex,
            queries: st.queries,
            rounds: Some(inner.rounds),
            rank_inversions: inner.rank_inversions,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{canonical_labels, tarjan_scc};
    use ri_graph::generators::{gnm, planted_sccs, random_dag, rmat};
    use ri_pram::random_permutation;

    fn check_against_tarjan(g: &CsrGraph, seed: u64, tag: &str) {
        let n = g.num_vertices();
        let order = random_permutation(n, seed);
        let want = canonical_labels(&tarjan_scc(g));
        let seq = scc_sequential_impl(g, &order);
        let par = scc_parallel_impl(g, &order, &RunConfig::new().parallel());
        assert_eq!(canonical_labels(&seq.comp), want, "{tag}: sequential");
        assert_eq!(canonical_labels(&par.comp), want, "{tag}: parallel");
    }

    #[test]
    fn random_digraphs_match_tarjan() {
        for seed in 0..6 {
            let g = gnm(150, 450, seed, false);
            check_against_tarjan(&g, seed ^ 0x111, "gnm-sparse");
            let g = gnm(100, 1200, seed, false);
            check_against_tarjan(&g, seed ^ 0x222, "gnm-dense");
        }
    }

    #[test]
    fn dags_match_tarjan() {
        for seed in 0..4 {
            let g = random_dag(200, 800, seed);
            check_against_tarjan(&g, seed ^ 0x333, "dag");
        }
    }

    #[test]
    fn planted_sccs_recovered() {
        for seed in 0..4 {
            let (g, truth) = planted_sccs(&[20, 1, 7, 33, 2, 13], 60, 90, seed);
            let order = random_permutation(g.num_vertices(), seed ^ 0x444);
            let par = scc_parallel_impl(&g, &order, &RunConfig::new().parallel());
            assert_eq!(
                canonical_labels(&par.comp),
                canonical_labels(&truth),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn powerlaw_graph_matches() {
        let g = rmat(9, 4096, 3);
        check_against_tarjan(&g, 0x555, "rmat");
    }

    #[test]
    fn single_giant_cycle() {
        let n = 1000;
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        let g = CsrGraph::from_edges(n, &edges);
        check_against_tarjan(&g, 0x666, "cycle");
        // One query suffices sequentially: the first center carves all.
        let order = random_permutation(n, 1);
        let seq = scc_sequential_impl(&g, &order);
        assert_eq!(seq.stats.queries, 1);
    }

    #[test]
    fn empty_edges_all_singletons() {
        let g = CsrGraph::from_edges(50, &[]);
        check_against_tarjan(&g, 0x777, "no-edges");
    }

    #[test]
    fn visits_per_vertex_logarithmic() {
        let n = 1 << 12;
        let g = random_dag(n, 8 * n, 5); // DAG: adversarial (no carving shortcuts)
        let order = random_permutation(n, 6);
        let par = scc_parallel_impl(&g, &order, &RunConfig::new().parallel());
        let max = par.stats.max_visits_per_vertex();
        assert!(
            (max as usize) < 10 * 12,
            "max visits/vertex {max} not O(log n)"
        );
    }

    #[test]
    fn rounds_logarithmic() {
        let n = 1 << 10;
        let g = gnm(n, 4 * n, 7, false);
        let order = random_permutation(n, 8);
        let par = scc_parallel_impl(&g, &order, &RunConfig::new().parallel());
        assert_eq!(par.stats.rounds.unwrap().rounds(), 11);
    }

    #[test]
    fn parallel_work_constant_factor_of_sequential() {
        let n = 1 << 11;
        let g = gnm(n, 6 * n, 9, false);
        let order = random_permutation(n, 10);
        let seq = scc_sequential_impl(&g, &order);
        let par = scc_parallel_impl(&g, &order, &RunConfig::new().parallel());
        let ratio = par.stats.visits as f64 / seq.stats.visits.max(1) as f64;
        assert!(
            ratio < 5.0,
            "parallel visit work {ratio}x sequential — overhead too large"
        );
    }
}
