//! Iterative Tarjan SCC — the linear-time sequential baseline
//! (the paper's reference point for work: *"Tarjan's algorithm finds all
//! strongly connected components ... in O(|V|+|E|) work"*, §6.2).
//!
//! Implemented with an explicit stack (no recursion), so million-vertex
//! path graphs cannot overflow the call stack.

use ri_graph::CsrGraph;

const UNVISITED: u32 = u32::MAX;

/// Tarjan's algorithm. Returns `comp[v]` = component id, with ids assigned
/// in reverse topological order of components (0, 1, 2, ...); all ids are
/// `< n`.
pub fn tarjan_scc(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS frames: (vertex, next-edge-offset).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let vu = v as usize;
            if *ei == 0 {
                // First visit.
                index[vu] = next_index;
                lowlink[vu] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            let neighbors = g.neighbors(v);
            let mut descended = false;
            while *ei < neighbors.len() {
                let w = neighbors[*ei];
                *ei += 1;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    frames.push((w, 0));
                    descended = true;
                    break;
                } else if on_stack[wu] {
                    lowlink[vu] = lowlink[vu].min(index[wu]);
                }
            }
            if descended {
                continue;
            }
            // v is finished: close its component if it is a root.
            if lowlink[vu] == index[vu] {
                loop {
                    let w = stack.pop().expect("stack holds the component");
                    on_stack[w as usize] = false;
                    comp[w as usize] = next_comp;
                    if w == v {
                        break;
                    }
                }
                next_comp += 1;
            }
            frames.pop();
            // Propagate lowlink to the parent frame.
            if let Some(&(p, _)) = frames.last() {
                let pu = p as usize;
                lowlink[pu] = lowlink[pu].min(lowlink[vu]);
            }
        }
    }
    debug_assert!(comp.iter().all(|&c| c != UNVISITED));
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical_labels;

    #[test]
    fn simple_cycle_is_one_component() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = canonical_labels(&tarjan_scc(&g));
        assert_eq!(c, vec![0, 0, 0]);
    }

    #[test]
    fn dag_is_all_singletons() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let c = canonical_labels(&tarjan_scc(&g));
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // 0↔1 and 2↔3, bridge 1→2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let c = canonical_labels(&tarjan_scc(&g));
        assert_eq!(c, vec![0, 0, 2, 2]);
    }

    #[test]
    fn reverse_topological_component_ids() {
        // 0 → 1: component of 1 closes first (id 0), 0 gets id 1.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let c = tarjan_scc(&g);
        assert_eq!(c, vec![1, 0]);
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n, &edges);
        let c = tarjan_scc(&g);
        // A path: all singletons.
        let mut seen = std::collections::HashSet::new();
        for &x in &c {
            assert!(seen.insert(x));
        }
    }

    #[test]
    fn long_cycle_single_component() {
        let n = 100_000;
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        let g = CsrGraph::from_edges(n, &edges);
        let c = tarjan_scc(&g);
        assert!(c.iter().all(|&x| x == c[0]));
    }

    #[test]
    fn matches_planted_ground_truth() {
        for seed in 0..5 {
            let (g, truth) = ri_graph::generators::planted_sccs(&[7, 3, 1, 12, 5], 20, 40, seed);
            let got = canonical_labels(&tarjan_scc(&g));
            let want = canonical_labels(&truth);
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
