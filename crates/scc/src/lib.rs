//! # `ri-scc` — strongly connected components
//! (§6.2 of the paper, Type 3)
//!
//! The divide-and-conquer SCC algorithm of Coppersmith et al. viewed as a
//! randomized *incremental* algorithm (Algorithm 7): process vertices in
//! random order; for each undone vertex, run forward and backward
//! reachability restricted to its current partition, carve out the
//! intersection as an SCC, and split the partition into the three
//! remainders. Sequentially this does `O(m log n)` expected work.
//!
//! The parallel version runs each doubling round's centers *concurrently
//! against the previous round's partition* (Algorithm 2). The combine step
//! here is the paper's "more aggressive" eager variant: every vertex's new
//! partition label is the hash of (old label, set of searches reaching it
//! forward, set reaching it backward) — any search that distinguishes two
//! vertices separates them, which "will only help". SCS are carved by the
//! *minimum common* center reaching a vertex in both directions.
//!
//! Baseline: an iterative Tarjan ([`tarjan_scc`]) validates every run.
//! Theorem 6.4: `O(W_R(n,m) log n)` expected work, `O(log n)` rounds of
//! reachability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deterministic;
mod incremental;
pub mod problem;
pub mod registry;
mod tarjan;

pub use deterministic::{partition_classes, scc_parallel_deterministic, DetSccRun};
pub use incremental::{sequential_partition_after, SccResult, SccStats};
pub use problem::{SccOutput, SccProblem};
pub use tarjan::tarjan_scc;

/// Canonicalise component labels: relabel every component by its smallest
/// member vertex, so labelings from different algorithms compare with
/// `==`.
pub fn canonical_labels(comp: &[u32]) -> Vec<u32> {
    let table = comp.iter().map(|&c| c as usize).max().map_or(0, |m| m + 1);
    let mut min_member = vec![u32::MAX; table];
    for (v, &c) in comp.iter().enumerate() {
        let c = c as usize;
        if (v as u32) < min_member[c] {
            min_member[c] = v as u32;
        }
    }
    comp.iter().map(|&c| min_member[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation_is_stable_under_renaming() {
        // Components {0,2} and {1,3} under two different labelings.
        let a = canonical_labels(&[5, 7, 5, 7]);
        let b = canonical_labels(&[1, 0, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 0, 1]);
    }
}
