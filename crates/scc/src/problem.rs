//! The problem-level API: [`SccProblem`], solving through the unified
//! engine to `(SccOutput, RunReport)`.

use ri_core::engine::{ExecMode, Executable, Problem, RunConfig, RunReport, Runner};
use ri_graph::CsrGraph;
use ri_pram::random_permutation;

use crate::incremental::{scc_parallel_impl, scc_sequential_impl};

/// The answer of an SCC run: component labels (ids are carving-center
/// vertex ids; [`crate::canonical_labels`] canonicalises them) plus the
/// per-vertex visit counts Theorem 6.4 bounds.
#[derive(Debug)]
pub struct SccOutput {
    /// `comp[v]` = id of `v`'s SCC.
    pub comp: Vec<u32>,
    /// Per-vertex visit counts (`max` is `O(log n)` whp).
    pub visits_per_vertex: Vec<u32>,
    /// Number of (non-skipped) reachability query pairs issued.
    pub queries: u64,
}

impl SccOutput {
    /// Largest per-vertex visit count (the Theorem 6.4 quantity).
    pub fn max_visits_per_vertex(&self) -> u32 {
        self.visits_per_vertex.iter().copied().max().unwrap_or(0)
    }

    /// Number of distinct strongly connected components.
    pub fn num_components(&self) -> usize {
        let mut labels = self.comp.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

/// Incremental strongly connected components (§6.2 of the paper, Type 3;
/// the eager-combine variant).
///
/// The processing order is drawn from the config's seed unless fixed with
/// [`with_order`](SccProblem::with_order).
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_scc::{canonical_labels, tarjan_scc, SccProblem};
///
/// let g = ri_graph::generators::gnm(300, 900, 1, false);
/// let (out, _report) = SccProblem::new(&g).solve(&RunConfig::new().seed(2));
/// assert_eq!(
///     canonical_labels(&out.comp),
///     canonical_labels(&tarjan_scc(&g)),
/// );
/// ```
#[derive(Debug)]
pub struct SccProblem<'a> {
    g: &'a CsrGraph,
    order: Option<Vec<usize>>,
}

impl<'a> SccProblem<'a> {
    /// An SCC problem over `g`; the processing order is drawn from the
    /// config seed at solve time.
    pub fn new(g: &'a CsrGraph) -> Self {
        SccProblem { g, order: None }
    }

    /// Fix the processing order explicitly (must cover every vertex).
    pub fn with_order(mut self, order: Vec<usize>) -> Self {
        self.order = Some(order);
        self
    }
}

struct SccExec<'a> {
    g: &'a CsrGraph,
    order: Option<&'a [usize]>,
    out: Option<SccOutput>,
}

impl Executable for SccExec<'_> {
    fn name(&self) -> &str {
        "scc"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let drawn;
        let order: &[usize] = match self.order {
            Some(order) => order,
            None => {
                drawn = random_permutation(self.g.num_vertices(), cfg.seed);
                &drawn
            }
        };
        let mut report = RunReport::new("scc");
        report.items = order.len();
        let result = match cfg.mode {
            ExecMode::Sequential => report.phase("solve", cfg.instrument, |_| {
                scc_sequential_impl(self.g, order)
            }),
            // Parallel and relaxed share the Type 3 executor; the mode in
            // `cfg` picks the round schedule (relaxed is native here — the
            // frozen-state rounds make any within-round order equivalent).
            ExecMode::Parallel | ExecMode::Relaxed { .. } => {
                report.phase("solve", cfg.instrument, |_| {
                    scc_parallel_impl(self.g, order, cfg)
                })
            }
        };
        report.rank_inversions = result.stats.rank_inversions;
        let work = result.stats.visits + result.stats.relaxations;
        match result.stats.rounds {
            Some(ref log) => {
                report.depth = log.rounds();
                report.rounds = log.clone();
            }
            None => {
                if !order.is_empty() {
                    report.record_round(order.len(), work);
                }
                report.depth = order.len();
            }
        }
        report.checks = work;
        self.out = Some(SccOutput {
            comp: result.comp,
            visits_per_vertex: result.stats.visits_per_vertex,
            queries: result.stats.queries,
        });
        report
    }
}

impl Problem for SccProblem<'_> {
    type Output = SccOutput;

    fn solve(&self, cfg: &RunConfig) -> (SccOutput, RunReport) {
        let mut exec = SccExec {
            g: self.g,
            order: self.order.as_deref(),
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{canonical_labels, tarjan_scc};

    #[test]
    fn modes_agree_with_tarjan() {
        let g = ri_graph::generators::gnm(500, 2000, 6, false);
        let problem = SccProblem::new(&g);
        let cfg = RunConfig::new().seed(11);
        let (seq, _) = problem.solve(&cfg.clone().sequential());
        let (par, report) = problem.solve(&cfg.clone().parallel());
        let want = canonical_labels(&tarjan_scc(&g));
        assert_eq!(canonical_labels(&seq.comp), want);
        assert_eq!(canonical_labels(&par.comp), want);
        assert!(report.depth <= 10, "O(log n) doubling rounds");
    }
}
