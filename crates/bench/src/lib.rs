//! # `ri-bench` — the experiment harness
//!
//! Regenerates every table, figure, and quantitative theorem claim of the
//! paper (the experiment index lives in `DESIGN.md` §4; results are
//! recorded in `EXPERIMENTS.md`).
//!
//! Report binaries (run with `cargo run -p ri-bench --release --bin <name>`):
//!
//! | Binary | Experiment | Paper artifact |
//! |---|---|---|
//! | `table1` | E1–E8 | Table 1 (all seven rows) |
//! | `depth_scaling` | E1, E2, E14 | Thm 2.1/4.3, Lemma 3.1 depth growth |
//! | `incircle_constant` | E3 | Thm 4.5 (`24 n ln n`, 36 ablation) |
//! | `special_iterations` | E4–E6, E13 | Thm 2.2/5.1–5.3 special counts |
//! | `lelist_lengths` | E7 | Thm 6.2 / Cohen list lengths |
//! | `scc_visits` | E8 | Thm 6.4 per-vertex visit bound |
//! | `dependence_counts` | E9 | Corollary 2.4 (`2 n ln n`) |
//! | `dependence_histogram` | E10 | Lemma 2.5 geometric tail |
//!
//! Criterion wall-clock benches (`cargo bench -p ri-bench`) compare the
//! sequential and parallel implementations of each Table 1 row on this
//! machine.

use ri_geometry::distributions::dedup_points;
use ri_geometry::{Point2, PointDistribution};
use ri_pram::random_permutation;

/// A deduplicated, randomly ordered point workload (points shuffled into
/// their insertion order).
pub fn point_workload(n: usize, seed: u64, dist: PointDistribution) -> Vec<Point2> {
    let raw = dedup_points(dist.generate(n, seed));
    let order = random_permutation(raw.len(), seed ^ 0xbead);
    order.iter().map(|&i| raw[i]).collect()
}

/// Geometric size sweep `2^lo ..= 2^hi`.
pub fn sizes(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|k| 1usize << k).collect()
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Max of a slice.
pub fn fmax(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seeded_and_deduped() {
        let a = point_workload(500, 1, PointDistribution::UniformSquare);
        let b = point_workload(500, 1, PointDistribution::UniformSquare);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_by(|p, q| {
            p.x.partial_cmp(&q.x)
                .unwrap()
                .then(p.y.partial_cmp(&q.y).unwrap())
        });
        sorted.dedup_by(|p, q| p == q);
        assert_eq!(sorted.len(), a.len());
    }

    #[test]
    fn sizes_sweep() {
        assert_eq!(sizes(3, 5), vec![8, 16, 32]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(fmax(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
