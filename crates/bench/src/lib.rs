//! # `ri-bench` — the experiment harness and the `ri` CLI driver
//!
//! Regenerates every table, figure, and quantitative theorem claim of the
//! paper (the experiment index lives in `DESIGN.md` §4; results are
//! recorded in `EXPERIMENTS.md`).
//!
//! Report binaries (run with `cargo run -p ri-bench --release --bin <name>`):
//!
//! | Binary | Experiment | Paper artifact |
//! |---|---|---|
//! | `ri` | — | the registry-driven CLI: any problem by name, JSON in/out |
//! | `table1` | E1–E8 | Table 1 (all seven rows) |
//! | `depth_scaling` | E1, E2, E14 | Thm 2.1/4.3, Lemma 3.1 depth growth |
//! | `incircle_constant` | E3 | Thm 4.5 (`24 n ln n`, 36 ablation) |
//! | `special_iterations` | E4–E6, E13 | Thm 2.2/5.1–5.3 special counts |
//! | `lelist_lengths` | E7 | Thm 6.2 / Cohen list lengths |
//! | `scc_visits` | E8 | Thm 6.4 per-vertex visit bound |
//! | `dependence_counts` | E9 | Corollary 2.4 (`2 n ln n`) |
//! | `dependence_histogram` | E10 | Lemma 2.5 geometric tail |
//!
//! Every binary drives the algorithms through the unified engine
//! (`*Problem::solve(&RunConfig)` or the [`parallel_ri::registry`]);
//! the pre-engine entry points are gone. Point workload generation lives
//! in [`ri_geometry::point_workload`].
//!
//! Criterion wall-clock benches (`cargo bench -p ri-bench`) compare the
//! sequential and parallel implementations of each Table 1 row on this
//! machine.

/// Geometric size sweep `2^lo ..= 2^hi`.
pub fn sizes(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|k| 1usize << k).collect()
}

/// Print a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Max of a slice.
pub fn fmax(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_sweep() {
        assert_eq!(sizes(3, 5), vec![8, 16, 32]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(fmax(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
