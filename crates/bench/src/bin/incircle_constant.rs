//! E3: the Theorem 4.5 constant — expected InCircle tests for 2-D
//! incremental Delaunay is at most `24 n ln n + O(n)`, and `36 n ln n`
//! without the Fact 4.1 intersection optimization (the GKS-style
//! accounting). We report the measured constants `tests / (n ln n)` for
//! both, across sizes and distributions.
//!
//! `cargo run -p ri-bench --release --bin incircle_constant [seeds]`

use ri_bench::{mean, sizes};
use ri_core::engine::{Problem, RunConfig};
use ri_geometry::{point_workload, PointDistribution};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("Theorem 4.5: InCircle-test constant ({trials} seeds per config)\n");
    let header = format!(
        "{:<16} {:>9} {:>13} {:>9} {:>13} {:>11} {:>9}",
        "distribution", "n", "incircle", "/nlnn", "w/o Fact4.1", "/nlnn", "saved%"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let seq = RunConfig::new().sequential().instrument(false);
    for dist in [
        PointDistribution::UniformSquare,
        PointDistribution::UniformDisk,
        PointDistribution::Clusters(8),
        PointDistribution::NearCircle,
    ] {
        for n in sizes(11, 14) {
            let mut with = Vec::new();
            let mut without = Vec::new();
            for seed in 0..trials {
                let pts = point_workload(n, seed, dist);
                let (out, _) = ri_delaunay::DelaunayProblem::new(&pts).solve(&seq);
                let m = pts.len() as f64;
                let denom = m * m.ln();
                // `skipped_tests` are the tests Fact 4.1 avoided: the naive
                // merge (no intersection shortcut) would perform them.
                with.push(out.stats.incircle_tests as f64 / denom);
                without.push((out.stats.incircle_tests + out.stats.skipped_tests) as f64 / denom);
            }
            let (w, wo) = (mean(&with), mean(&without));
            println!(
                "{:<16} {:>9} {:>13.0} {:>9.2} {:>13.0} {:>11.2} {:>8.0}%",
                dist.name(),
                n,
                w * (n as f64) * (n as f64).ln(),
                w,
                wo * (n as f64) * (n as f64).ln(),
                wo,
                100.0 * (wo - w) / wo,
            );
        }
    }

    println!(
        "\nShape check: both constants are near-flat in n (the work really is\n\
         Θ(n log n); the slow drift is the O(n) lower-order term fading); the\n\
         Fact 4.1 savings (~20% of tests) are the measured counterpart of the\n\
         paper's 24-vs-36 accounting gap; every measurement sits well below\n\
         the worst-case 24 (the analysis charges 4 possible creators per\n\
         boundary edge — an over-count on average inputs)."
    );
}
