//! E4/E5/E6/E13: the Type 2 structure — special-iteration counts against
//! their backwards-analysis bounds (`2/j` for LP and closest pair, `3/j`
//! for SED ⇒ `2H_n` / `3H_n` expected specials), and the executor's
//! sub-round counts (expected O(1) per prefix, Theorem 2.2's proof).
//!
//! `cargo run -p ri-bench --release --bin special_iterations [seeds]`

// Still on the pre-engine entry points; migration to the `Runner` API is
// tracked in ROADMAP.md ("remaining shim removals").
#![allow(deprecated)]

use ri_bench::{fmax, mean, point_workload, sizes};
use ri_core::harmonic;
use ri_geometry::PointDistribution;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("Type 2 special iterations ({trials} seeds per size)\n");
    let header = format!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>14} {:>12}",
        "problem", "n", "specials", "bound", "max", "sub-rnds/pfx", "checks/n"
    );
    println!("{header}");
    ri_bench::rule(&header);

    for n in sizes(10, 15) {
        let hn = harmonic(n);

        // LP: P[special] ≤ 2/j.
        let mut sp = Vec::new();
        let mut sub = Vec::new();
        let mut checks = Vec::new();
        for seed in 0..trials {
            let inst = ri_lp::workloads::tangent_instance(n, seed);
            let run = ri_lp::lp_parallel(&inst);
            sp.push(run.stats.specials.len() as f64);
            sub.push(run.stats.total_sub_rounds() as f64 / run.stats.sub_rounds.len() as f64);
            checks.push(run.stats.checks as f64 / n as f64);
        }
        print_row("lp", n, &sp, 2.0 * hn, &sub, &checks);

        // Closest pair: P[special] ≤ 2/j.
        let mut sp = Vec::new();
        let mut sub = Vec::new();
        let mut checks = Vec::new();
        for seed in 0..trials {
            let pts = point_workload(n, seed, PointDistribution::UniformSquare);
            let run = ri_closest_pair::closest_pair_parallel(&pts);
            sp.push(run.stats.specials.len() as f64);
            sub.push(run.stats.total_sub_rounds() as f64 / run.stats.sub_rounds.len() as f64);
            checks.push(run.stats.checks as f64 / n as f64);
        }
        print_row("closest-pair", n, &sp, 2.0 * hn, &sub, &checks);

        // SED: P[special] ≤ 3/i.
        let mut sp = Vec::new();
        let mut sub = Vec::new();
        let mut checks = Vec::new();
        for seed in 0..trials {
            let pts = point_workload(n, seed, PointDistribution::UniformDisk);
            let run = ri_enclosing::sed_parallel(&pts);
            sp.push(run.stats.specials.len() as f64);
            sub.push(run.stats.total_sub_rounds() as f64 / run.stats.sub_rounds.len() as f64);
            checks.push(run.stats.checks as f64 / n as f64);
        }
        print_row("enclosing", n, &sp, 3.0 * hn, &sub, &checks);
    }

    println!(
        "\nShape checks: 'specials' tracks its H_n bound (column 'bound') within\n\
         sampling noise (per-run std is ≈ √(2 ln n) ≈ 4–5 here); sub-rounds\n\
         per prefix is a small constant (Theorem 2.2's O(1) expected\n\
         sub-rounds); total checks are O(n) (the 'checks/n' column is flat)."
    );
}

fn print_row(name: &str, n: usize, sp: &[f64], bound: f64, sub: &[f64], checks: &[f64]) {
    println!(
        "{:<14} {:>9} {:>10.1} {:>9.1} {:>9.0} {:>14.2} {:>12.2}",
        name,
        n,
        mean(sp),
        bound,
        fmax(sp),
        mean(sub),
        mean(checks),
    );
}
