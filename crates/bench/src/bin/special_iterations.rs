//! E4/E5/E6/E13: the Type 2 structure — special-iteration counts against
//! their backwards-analysis bounds (`2/j` for LP and closest pair, `3/j`
//! for SED ⇒ `2H_n` / `3H_n` expected specials), and the executor's
//! sub-round counts (expected O(1) per prefix, Theorem 2.2's proof).
//!
//! `cargo run -p ri-bench --release --bin special_iterations [seeds]`

use ri_bench::{fmax, mean, sizes};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_core::harmonic;
use ri_geometry::{point_workload, PointDistribution};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("Type 2 special iterations ({trials} seeds per size)\n");
    let header = format!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>14} {:>12}",
        "problem", "n", "specials", "bound", "max", "sub-rnds/pfx", "checks/n"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let par = RunConfig::new().parallel().instrument(false);
    for n in sizes(10, 15) {
        let hn = harmonic(n);

        // Each Type 2 run's structure lives entirely in the unified
        // report: the specials trace, per-prefix sub-rounds, check work.
        let tally =
            |report: &RunReport, sp: &mut Vec<f64>, sub: &mut Vec<f64>, checks: &mut Vec<f64>| {
                sp.push(report.specials.len() as f64);
                sub.push(report.total_sub_rounds() as f64 / report.sub_rounds.len() as f64);
                checks.push(report.checks as f64 / n as f64);
            };

        // LP: P[special] ≤ 2/j.
        let mut sp = Vec::new();
        let mut sub = Vec::new();
        let mut checks = Vec::new();
        for seed in 0..trials {
            let inst = ri_lp::workloads::tangent_instance(n, seed);
            let (_, report) = ri_lp::LpProblem::new(&inst).solve(&par);
            tally(&report, &mut sp, &mut sub, &mut checks);
        }
        print_row("lp", n, &sp, 2.0 * hn, &sub, &checks);

        // Closest pair: P[special] ≤ 2/j.
        let mut sp = Vec::new();
        let mut sub = Vec::new();
        let mut checks = Vec::new();
        for seed in 0..trials {
            let pts = point_workload(n, seed, PointDistribution::UniformSquare);
            let (_, report) = ri_closest_pair::ClosestPairProblem::new(&pts).solve(&par);
            tally(&report, &mut sp, &mut sub, &mut checks);
        }
        print_row("closest-pair", n, &sp, 2.0 * hn, &sub, &checks);

        // SED: P[special] ≤ 3/i.
        let mut sp = Vec::new();
        let mut sub = Vec::new();
        let mut checks = Vec::new();
        for seed in 0..trials {
            let pts = point_workload(n, seed, PointDistribution::UniformDisk);
            let (_, report) = ri_enclosing::EnclosingProblem::new(&pts).solve(&par);
            tally(&report, &mut sp, &mut sub, &mut checks);
        }
        print_row("enclosing", n, &sp, 3.0 * hn, &sub, &checks);
    }

    println!(
        "\nShape checks: 'specials' tracks its H_n bound (column 'bound') within\n\
         sampling noise (per-run std is ≈ √(2 ln n) ≈ 4–5 here); sub-rounds\n\
         per prefix is a small constant (Theorem 2.2's O(1) expected\n\
         sub-rounds); total checks are O(n) (the 'checks/n' column is flat)."
    );
}

fn print_row(name: &str, n: usize, sp: &[f64], bound: f64, sub: &[f64], checks: &[f64]) {
    println!(
        "{:<14} {:>9} {:>10.1} {:>9.1} {:>9.0} {:>14.2} {:>12.2}",
        name,
        n,
        mean(sp),
        bound,
        fmax(sp),
        mean(sub),
        mean(checks),
    );
}
