//! E8: SCC per-vertex visit bound (Theorem 6.4): every vertex is visited
//! by `O(log n)` reachability searches whp, across graph families with
//! very different SCC structure.
//!
//! `cargo run -p ri-bench --release --bin scc_visits [seeds]`

use ri_bench::{fmax, mean, sizes};
use ri_core::engine::{Problem, RunConfig};
use ri_pram::random_permutation;
use ri_scc::SccProblem;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("SCC visit bounds ({trials} seeds per config)\n");
    let header = format!(
        "{:<12} {:>9} {:>8} {:>10} {:>10} {:>10} {:>11} {:>9}",
        "graph", "n", "log2 n", "avg v/v", "max v/v", "queries", "par/seq wk", "rounds"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let seq_cfg = RunConfig::new().sequential().instrument(false);
    let par_cfg = RunConfig::new().parallel().instrument(false);
    for n in sizes(11, 14) {
        let log2n = (n as f64).log2();
        for (name, make) in graph_families(n) {
            let mut avg_vv = Vec::new();
            let mut max_vv = Vec::new();
            let mut queries = Vec::new();
            let mut ratio = Vec::new();
            let mut rounds = 0usize;
            for seed in 0..trials {
                let g = make(seed);
                let nn = g.num_vertices();
                // Salt the order independently of the generators' internal
                // seeds (`planted_sccs` scatters ids with `seed ^ 0x5cc`;
                // reusing that expression here would make the insertion
                // order process each planted SCC as a contiguous block —
                // the Type 3 worst case, not a random order).
                let order = random_permutation(nn, seed.wrapping_mul(0x9e37_79b9).wrapping_add(71));
                let problem = SccProblem::new(&g).with_order(order);
                let (seq, seq_report) = problem.solve(&seq_cfg);
                let (par, par_report) = problem.solve(&par_cfg);
                assert_eq!(
                    ri_scc::canonical_labels(&seq.comp),
                    ri_scc::canonical_labels(&par.comp)
                );
                avg_vv
                    .push(par.visits_per_vertex.iter().map(|&x| x as f64).sum::<f64>() / nn as f64);
                max_vv.push(par.max_visits_per_vertex() as f64);
                queries.push(par.queries as f64);
                // `checks` is the run's visits + relaxations work measure.
                ratio.push(par_report.checks as f64 / seq_report.checks.max(1) as f64);
                rounds = par_report.depth;
            }
            println!(
                "{:<12} {:>9} {:>8.0} {:>10.2} {:>10.0} {:>10.0} {:>11.2} {:>9}",
                name,
                n,
                log2n,
                mean(&avg_vv),
                fmax(&max_vv),
                mean(&queries),
                mean(&ratio),
                rounds,
            );
        }
    }

    println!(
        "\nShape checks: max visits/vertex stays within a small multiple of\n\
         log₂ n on every family (Theorem 6.4 whp bound; Lemma 2.3 gives 2H_n\n\
         expected); the parallel/sequential work ratio is the constant-factor\n\
         Type 3 overhead; rounds = ⌈log₂ n⌉ + 1 by construction."
    );
}

type GraphMaker = Box<dyn Fn(u64) -> ri_graph::CsrGraph>;

fn graph_families(n: usize) -> Vec<(&'static str, GraphMaker)> {
    let scale = (n as f64).log2().ceil() as u32;
    vec![
        (
            "gnm sparse",
            Box::new(move |s| ri_graph::generators::gnm(n, 2 * n, s, false)) as GraphMaker,
        ),
        (
            "gnm dense",
            Box::new(move |s| ri_graph::generators::gnm(n, 8 * n, s, false)),
        ),
        (
            "dag",
            Box::new(move |s| ri_graph::generators::random_dag(n, 4 * n, s)),
        ),
        (
            "rmat",
            Box::new(move |s| ri_graph::generators::rmat(scale, 8 * n, s)),
        ),
        (
            "planted64",
            Box::new(move |s| ri_graph::generators::planted_sccs(&vec![n / 64; 64], 2 * n, n, s).0),
        ),
    ]
}
