//! `speedup` — the registry-wide performance gate: run every registered
//! problem sequentially, in parallel at several thread counts, and under
//! the k-relaxed scheduler, verify the parallel **and relaxed** answers
//! match the sequential ones, and write `BENCH_PR8.json` (per-problem
//! wall times, speedups, the `par1_overhead` ratio par@1 / sequential —
//! the round engine's scheduling+allocation overhead, independent of the
//! host's core count — and a `relaxed` column with per-width wall times,
//! the measured `rank_inversions`/`wasted_retries`, and whether the
//! problem ran its native relaxed loop or the reported exact fallback).
//!
//! ```text
//! speedup [--quick] [--out PATH] [--threads 1,2,4,8] [--repeat N]
//!         [--scale X] [--relax-k K] [--gate-par1]
//! ```
//!
//! `--quick` shrinks instances for CI smoke runs; `--scale` divides the
//! default sizes by an arbitrary factor. Exits nonzero if any parallel or
//! relaxed answer diverges from the sequential answer — that check is the
//! hard CI gate on every run. `--gate-par1` additionally fails the run
//! when a problem's `par1_overhead` exceeds its committed budget
//! ([`PAR1_BUDGETS`]); instances whose sequential time is below
//! [`GATE_MIN_SEQ_SECONDS`] are skipped by that gate (their ratios are
//! timer noise), so give the gate real sizes (`--scale 1` or `2`). On a
//! single-core host the relaxed-vs-exact *scaling* comparison is
//! meaningless, so the relaxed column keeps only the width-1 answer gate
//! and carries an explicit `"scaling": "skipped: 1 core"` marker.

use std::time::Instant;

use parallel_ri::registry;
use ri_core::engine::json::Value;
use ri_core::engine::{OutputSummary, Registry, RunConfig, RunReport, WorkloadSpec};

/// Default instance sizes, chosen so each sequential run is substantial
/// enough to time meaningfully but the full matrix stays in CI budget.
const SIZES: &[(&str, usize)] = &[
    ("sort", 200_000),
    ("sort-batch", 200_000),
    ("delaunay", 20_000),
    ("lp", 300_000),
    ("lp-d", 60_000),
    ("closest-pair", 200_000),
    ("enclosing", 300_000),
    ("le-lists", 15_000),
    ("scc", 60_000),
];

/// Committed `par1_overhead` budgets (par@1 wall time / sequential wall
/// time), enforced by `--gate-par1`. The sort/delaunay targets reflect
/// the zero-allocation round engine (measured ≈0.9 on the dev host);
/// Type 2/3 problems inherently redo some checks in parallel mode, so
/// their budgets sit above 1 by the paper's constant factors, plus
/// headroom for CI timer noise.
const PAR1_BUDGETS: &[(&str, f64)] = &[
    ("sort", 1.4),
    ("sort-batch", 1.9),
    ("delaunay", 1.5),
    ("lp", 1.6),
    ("lp-d", 1.5),
    ("closest-pair", 1.8),
    ("enclosing", 1.7),
    ("le-lists", 2.0),
    ("scc", 1.7),
];

/// Sequential runs faster than this are too short to gate on: a ±1 ms
/// scheduling hiccup would swamp the ratio.
const GATE_MIN_SEQ_SECONDS: f64 = 0.005;

struct Args {
    out: String,
    threads: Vec<usize>,
    repeat: usize,
    scale: usize,
    relax_k: usize,
    gate_par1: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_PR8.json".to_string(),
        threads: vec![1, 2, 4, 8],
        repeat: 3,
        scale: 1,
        relax_k: 8,
        gate_par1: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--quick" => {
                args.scale = 16;
                args.threads = vec![1, 2, 4];
                args.repeat = 1;
            }
            "--gate-par1" => args.gate_par1 = true,
            "--out" => args.out = value("--out")?,
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("bad --repeat: {e}"))?
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--relax-k" => {
                args.relax_k = value("--relax-k")?
                    .parse()
                    .map_err(|e| format!("bad --relax-k: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("bad --threads: {e}")))
                    .collect::<Result<_, _>>()?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.repeat == 0 || args.scale == 0 || args.relax_k == 0 || args.threads.is_empty() {
        return Err("--repeat, --scale, --relax-k and --threads must be nonzero/nonempty".into());
    }
    Ok(args)
}

/// The mode-invariant answer as a canonical JSON string (the divergence
/// fingerprint: equal strings = equal answers).
fn answer_fingerprint(summary: &OutputSummary) -> String {
    Value::Obj(summary.answer().to_vec()).write()
}

/// Best-of-`repeat` wall time and the last summary + report for one
/// configuration.
fn time_solve(
    reg: &Registry,
    name: &str,
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    repeat: usize,
) -> Result<(f64, OutputSummary, RunReport), String> {
    let problem = reg
        .construct(name, spec)
        .map_err(|e| format!("{name}: {e}"))?;
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let (summary, report) = problem.solve_erased(cfg);
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some((summary, report));
    }
    let (summary, report) = last.expect("repeat >= 1");
    Ok((best, summary, report))
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("speedup: {e}");
        std::process::exit(2);
    });
    let reg = registry();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut problems: Vec<(String, Value)> = Vec::new();
    let mut divergent: Vec<String> = Vec::new();
    let mut winners_at_4plus: Vec<String> = Vec::new();
    let mut over_budget: Vec<String> = Vec::new();

    for &(name, full_n) in SIZES {
        let n = (full_n / args.scale).max(64);
        let spec = WorkloadSpec::new(n, 1);
        let seq_cfg = RunConfig::new().seed(7).sequential().instrument(false);
        eprintln!("speedup: {name} n={n} sequential...");
        let (seq_secs, seq_summary, _) = time_solve(&reg, name, &spec, &seq_cfg, args.repeat)
            .unwrap_or_else(|e| {
                eprintln!("speedup: {e}");
                std::process::exit(2);
            });
        let seq_answer = answer_fingerprint(&seq_summary);

        let mut par_entries: Vec<(String, Value)> = Vec::new();
        let mut speedup_entries: Vec<(String, Value)> = Vec::new();
        let mut matches = true;
        let mut best_speedup_at_4plus = 0.0f64;
        let mut par1_secs: Option<f64> = None;
        for &t in &args.threads {
            let par_cfg = RunConfig::new()
                .seed(7)
                .parallel()
                .threads(t)
                .instrument(false);
            eprintln!("speedup: {name} n={n} parallel t={t}...");
            let (par_secs, par_summary, _) = time_solve(&reg, name, &spec, &par_cfg, args.repeat)
                .unwrap_or_else(|e| {
                    eprintln!("speedup: {e}");
                    std::process::exit(2);
                });
            if answer_fingerprint(&par_summary) != seq_answer {
                matches = false;
                eprintln!("speedup: DIVERGENCE on {name} at {t} threads");
            }
            let speedup = seq_secs / par_secs;
            if t == 1 {
                par1_secs = Some(par_secs);
            }
            if t >= 4 {
                best_speedup_at_4plus = best_speedup_at_4plus.max(speedup);
            }
            par_entries.push((t.to_string(), Value::Num(par_secs)));
            speedup_entries.push((
                t.to_string(),
                Value::Num((speedup * 1000.0).round() / 1000.0),
            ));
        }
        // The relaxed column: k-relaxed schedule at the same widths (just
        // width 1 on a single-core host — relaxed-vs-exact scaling is
        // meaningless there and gets an explicit skip marker), gated on
        // answer equality with the sequential fingerprint.
        let relax_widths: &[usize] = if cores < 2 { &[1] } else { &args.threads };
        let mut relaxed_seconds: Vec<(String, Value)> = Vec::new();
        let mut relaxed_speedup: Vec<(String, Value)> = Vec::new();
        let mut relaxed_matches = true;
        let mut relaxed_report: Option<RunReport> = None;
        for &t in relax_widths {
            let rel_cfg = RunConfig::new()
                .seed(7)
                .relaxed(args.relax_k)
                .threads(t)
                .instrument(false);
            eprintln!("speedup: {name} n={n} relaxed:{} t={t}...", args.relax_k);
            let (rel_secs, rel_summary, rel_report) =
                time_solve(&reg, name, &spec, &rel_cfg, args.repeat).unwrap_or_else(|e| {
                    eprintln!("speedup: {e}");
                    std::process::exit(2);
                });
            if answer_fingerprint(&rel_summary) != seq_answer {
                relaxed_matches = false;
                eprintln!("speedup: RELAXED DIVERGENCE on {name} at {t} threads");
            }
            relaxed_seconds.push((t.to_string(), Value::Num(rel_secs)));
            relaxed_speedup.push((
                t.to_string(),
                Value::Num((seq_secs / rel_secs * 1000.0).round() / 1000.0),
            ));
            relaxed_report = Some(rel_report);
        }
        let relaxed_report = relaxed_report.expect("relax_widths is nonempty");
        let mut relaxed_fields = vec![
            ("k".into(), Value::Num(args.relax_k as f64)),
            ("seconds".into(), Value::Obj(relaxed_seconds)),
            ("speedup".into(), Value::Obj(relaxed_speedup)),
            ("answers_match".into(), Value::Bool(relaxed_matches)),
            (
                "rank_inversions".into(),
                Value::Num(relaxed_report.rank_inversions as f64),
            ),
            (
                "wasted_retries".into(),
                Value::Num(relaxed_report.wasted_retries as f64),
            ),
            (
                "native".into(),
                Value::Bool(relaxed_report.relaxed_fallback.is_none()),
            ),
        ];
        if let Some(reason) = &relaxed_report.relaxed_fallback {
            relaxed_fields.push(("fallback".into(), Value::Str(reason.clone())));
        }
        if cores < 2 {
            relaxed_fields.push(("scaling".into(), Value::Str("skipped: 1 core".into())));
        }

        if !matches {
            divergent.push(name.to_string());
        }
        if !relaxed_matches {
            divergent.push(format!("{name} (relaxed:{})", args.relax_k));
        }
        if best_speedup_at_4plus > 1.0 {
            winners_at_4plus.push(name.to_string());
        }
        let mut fields = vec![
            ("n".into(), Value::Num(n as f64)),
            ("seq_seconds".into(), Value::Num(seq_secs)),
            ("par_seconds".into(), Value::Obj(par_entries)),
            ("speedup".into(), Value::Obj(speedup_entries)),
            ("answers_match".into(), Value::Bool(matches)),
            ("relaxed".into(), Value::Obj(relaxed_fields)),
        ];
        if let Some(par1) = par1_secs {
            // par@1 / sequential: the round engine's own overhead, the
            // quantity the per-problem budgets gate.
            let overhead = par1 / seq_secs;
            fields.push((
                "par1_overhead".into(),
                Value::Num((overhead * 1000.0).round() / 1000.0),
            ));
            let budget = PAR1_BUDGETS
                .iter()
                .find(|(b, _)| *b == name)
                .map(|&(_, b)| b);
            if let Some(budget) = budget {
                fields.push(("par1_budget".into(), Value::Num(budget)));
                if overhead > budget && seq_secs >= GATE_MIN_SEQ_SECONDS {
                    over_budget.push(format!("{name} ({overhead:.2} > {budget})"));
                }
            }
        }
        problems.push((name.to_string(), Value::Obj(fields)));
    }

    // `cores` comes from the actual runner, so the note can say the right
    // thing for the host that produced this file (CI regenerates it per
    // runner and uploads it as an artifact).
    let note = if cores == 1 {
        "single-core host: speedups cannot exceed 1 and relaxed-vs-exact \
         scaling is skipped (skipped: 1 core); par1_overhead and the \
         relaxed answer gate are the meaningful columns"
    } else {
        "multi-core host: speedups are bounded by this host's core count; \
         par1_overhead and rank_inversions are core-count independent"
    };
    let doc = Value::Obj(vec![
        (
            "machine".into(),
            Value::Obj(vec![
                ("cores".into(), Value::Num(cores as f64)),
                ("note".into(), Value::Str(note.into())),
            ]),
        ),
        (
            "threads".into(),
            Value::Arr(args.threads.iter().map(|&t| Value::Num(t as f64)).collect()),
        ),
        ("repeat".into(), Value::Num(args.repeat as f64)),
        ("scale".into(), Value::Num(args.scale as f64)),
        ("relax_k".into(), Value::Num(args.relax_k as f64)),
        ("problems".into(), Value::Obj(problems)),
        (
            "summary".into(),
            Value::Obj(vec![
                (
                    "problems_with_speedup_at_4plus_threads".into(),
                    Value::Arr(
                        winners_at_4plus
                            .iter()
                            .map(|s| Value::Str(s.clone()))
                            .collect(),
                    ),
                ),
                (
                    "all_answers_match".into(),
                    Value::Bool(divergent.is_empty()),
                ),
                (
                    "par1_over_budget".into(),
                    Value::Arr(over_budget.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
            ]),
        ),
    ]);
    std::fs::write(&args.out, format!("{}\n", doc.write())).unwrap_or_else(|e| {
        eprintln!("speedup: writing {}: {e}", args.out);
        std::process::exit(2);
    });
    eprintln!("speedup: wrote {}", args.out);

    if !divergent.is_empty() {
        eprintln!(
            "speedup: parallel/relaxed answers diverged from sequential for: {}",
            divergent.join(", ")
        );
        std::process::exit(1);
    }
    if args.gate_par1 && !over_budget.is_empty() {
        eprintln!(
            "speedup: par@1 overhead exceeded its committed budget for: {}",
            over_budget.join(", ")
        );
        std::process::exit(1);
    }
}
