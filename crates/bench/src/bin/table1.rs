//! Regenerate **Table 1** of the paper: for each of the seven problems,
//! the measured *work ratio* (parallel work / sequential work — the paper
//! claims 1 for Types 1–2 and a constant for Type 3) and the measured
//! *depth* (rounds), against the theorem's prediction.
//!
//! `cargo run -p ri-bench --release --bin table1 [log2_n]`

use ri_bench::point_workload;
use ri_core::harmonic;
use ri_geometry::PointDistribution;
use ri_pram::random_permutation;

fn main() {
    let log2n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let n = 1usize << log2n;
    let seed = 7u64;
    let hn = harmonic(n);

    println!("Table 1 reproduction, n = 2^{log2n} = {n} (seed {seed})");
    println!();
    let header = format!(
        "{:<28} {:>12} {:>12} {:>10} {:>16} {:>14}",
        "problem (type)", "seq work", "par work", "ratio", "measured depth", "predicted"
    );
    println!("{header}");
    ri_bench::rule(&header);

    // Row 1: comparison sorting (Type 1). Work = comparisons; depth =
    // priority-write rounds; prediction Θ(log n) (Lemma 3.1: ≈ c·ln n).
    {
        let keys = random_permutation(n, seed);
        let seq = ri_sort::sequential_bst_sort(&keys);
        let par = ri_sort::parallel_bst_sort(&keys);
        row(
            "sorting (1)",
            seq.comparisons,
            par.comparisons,
            par.log.rounds(),
            &format!("Θ(log n) ≈ {:.0}", 4.3 * (n as f64).log2()),
        );
    }

    // Row 2: Delaunay triangulation (Type 1 nested). Work = InCircle
    // tests; depth = face rounds; prediction O(log n).
    {
        let pts = point_workload(n, seed, PointDistribution::UniformSquare);
        let seq = ri_delaunay::delaunay_sequential(&pts);
        let par = ri_delaunay::delaunay_parallel(&pts);
        row(
            "delaunay (1, nested)",
            seq.stats.incircle_tests,
            par.stats.incircle_tests,
            par.rounds.unwrap().rounds(),
            &format!("O(log n), 24nlnn={:.1e}", 24.0 * n as f64 * (n as f64).ln()),
        );
    }

    // Row 3: 2-D LP (Type 2). Work = feasibility checks; depth = executor
    // sub-rounds; prediction O(log n) specials.
    {
        let inst = ri_lp::workloads::tangent_instance(n, seed);
        let seq = ri_lp::lp_sequential(&inst);
        let par = ri_lp::lp_parallel(&inst);
        row(
            "2d linear program (2)",
            seq.stats.checks,
            par.stats.checks,
            par.stats.total_sub_rounds(),
            &format!("specials ≤ 2H_n = {:.1}", 2.0 * hn),
        );
        assert_eq!(seq.stats.specials, par.stats.specials);
    }

    // Row 4: closest pair (Type 2).
    {
        let pts = point_workload(n, seed, PointDistribution::UniformSquare);
        let seq = ri_closest_pair::closest_pair_sequential(&pts);
        let par = ri_closest_pair::closest_pair_parallel(&pts);
        row(
            "closest pair (2)",
            seq.stats.checks,
            par.stats.checks,
            par.stats.total_sub_rounds(),
            &format!("specials ≤ 2H_n = {:.1}", 2.0 * hn),
        );
        assert_eq!(seq.dist, par.dist);
    }

    // Row 5: smallest enclosing disk (Type 2). Work = containment tests.
    {
        let pts = point_workload(n, seed, PointDistribution::UniformDisk);
        let seq = ri_enclosing::sed_sequential(&pts);
        let par = ri_enclosing::sed_parallel(&pts);
        row(
            "smallest disk (2)",
            seq.contains_tests,
            par.contains_tests,
            par.stats.total_sub_rounds(),
            &format!("specials ≤ 3H_n = {:.1}", 3.0 * hn),
        );
        assert_eq!(seq.disk, par.disk);
    }

    // Row 6: LE-lists (Type 3). Work = settled vertices + relaxations;
    // depth = doubling rounds; work ratio is the Type 3 constant factor.
    {
        let g = ri_graph::generators::gnm_weighted(n, 8 * n, seed, true);
        let order = random_permutation(n, seed ^ 1);
        let seq = ri_le_lists::le_lists_sequential(&g, &order);
        let par = ri_le_lists::le_lists_parallel(&g, &order);
        row(
            "le-lists (3)",
            seq.stats.visits + seq.stats.relaxations,
            par.stats.visits + par.stats.relaxations,
            par.stats.rounds.unwrap().rounds(),
            &format!("⌈log₂ n⌉+1 = {}", log2n + 1),
        );
        assert_eq!(seq.lists, par.lists);
    }

    // Row 7: SCC (Type 3).
    {
        let g = ri_graph::generators::gnm(n, 4 * n, seed, false);
        let order = random_permutation(n, seed ^ 2);
        let seq = ri_scc::scc_sequential(&g, &order);
        let par = ri_scc::scc_parallel(&g, &order);
        row(
            "scc (3)",
            seq.stats.visits + seq.stats.relaxations,
            par.stats.visits + par.stats.relaxations,
            par.stats.rounds.as_ref().unwrap().rounds(),
            &format!("⌈log₂ n⌉+1 = {}", log2n + 1),
        );
        assert_eq!(
            ri_scc::canonical_labels(&seq.comp),
            ri_scc::canonical_labels(&par.comp)
        );
    }

    println!();
    println!(
        "Type 1: parallel work == sequential work exactly (identical calls,\n\
         reordered). Type 2: the special-iteration work is identical; the ratio\n\
         reflects the executor's prefix re-checks after each special — a\n\
         constant factor, still O(n) total. Type 3: the ratio is the paper's\n\
         'constant factor in expectation' redundancy. Depth column: executor\n\
         rounds — the machine-independent quantity the theorems bound\n\
         (wall-clock comparisons live in `cargo bench`)."
    );
}

fn row(name: &str, seq_work: u64, par_work: u64, depth: usize, predicted: &str) {
    println!(
        "{:<28} {:>12} {:>12} {:>10.3} {:>16} {:>14}",
        name,
        seq_work,
        par_work,
        par_work as f64 / seq_work.max(1) as f64,
        depth,
        predicted
    );
}
