//! Regenerate **Table 1** of the paper: for each of the seven problems,
//! the measured *work ratio* (parallel work / sequential work — the paper
//! claims 1 for Types 1–2 and a constant for Type 3) and the measured
//! *depth* (rounds), against the theorem's prediction.
//!
//! Every row runs through the unified engine: the same `RunConfig` pair
//! (sequential + parallel) and the same `RunReport` shape for all eight
//! algorithms. Pass `--json` to additionally emit one report JSON line per
//! run for downstream tooling.
//!
//! `cargo run -p ri-bench --release --bin table1 [log2_n] [--json]`

use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_core::harmonic;
use ri_geometry::point_workload;
use ri_geometry::PointDistribution;
use ri_pram::random_permutation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let emit_json = args.iter().any(|a| a == "--json");
    let log2n: u32 = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let n = 1usize << log2n;
    let seed = 7u64;
    let hn = harmonic(n);
    let seq_cfg = RunConfig::new().seed(seed).sequential();
    let par_cfg = RunConfig::new().seed(seed).parallel();

    println!("Table 1 reproduction, n = 2^{log2n} = {n} (seed {seed})");
    println!();
    let header = format!(
        "{:<28} {:>12} {:>12} {:>10} {:>16} {:>14}",
        "problem (type)", "seq work", "par work", "ratio", "measured depth", "predicted"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let mut json_lines: Vec<String> = Vec::new();
    let mut record = |reports: [&RunReport; 2]| {
        if emit_json {
            for r in reports {
                json_lines.push(r.to_json());
            }
        }
    };

    // Row 1: comparison sorting (Type 1). Work = comparisons; depth =
    // priority-write rounds; prediction Θ(log n) (Lemma 3.1: ≈ c·ln n).
    {
        let keys = random_permutation(n, seed);
        let problem = ri_sort::SortProblem::new(&keys);
        let (seq, seq_report) = problem.solve(&seq_cfg);
        let (par, par_report) = problem.solve(&par_cfg);
        assert_eq!(seq.tree, par.tree);
        row(
            "sorting (1)",
            seq.comparisons,
            par.comparisons,
            par_report.depth,
            &format!("Θ(log n) ≈ {:.0}", 4.3 * (n as f64).log2()),
        );
        record([&seq_report, &par_report]);
    }

    // Row 2: Delaunay triangulation (Type 1 nested). Work = InCircle
    // tests; depth = face rounds; prediction O(log n).
    {
        let pts = point_workload(n, seed, PointDistribution::UniformSquare);
        let problem = ri_delaunay::DelaunayProblem::new(&pts);
        let (seq, seq_report) = problem.solve(&seq_cfg);
        let (par, par_report) = problem.solve(&par_cfg);
        assert_eq!(seq.stats, par.stats);
        row(
            "delaunay (1, nested)",
            seq.stats.incircle_tests,
            par.stats.incircle_tests,
            par_report.depth,
            &format!("O(log n), 24nlnn={:.1e}", 24.0 * n as f64 * (n as f64).ln()),
        );
        record([&seq_report, &par_report]);
    }

    // Row 3: 2-D LP (Type 2). Work = feasibility checks; depth = executor
    // sub-rounds; prediction O(log n) specials.
    {
        let inst = ri_lp::workloads::tangent_instance(n, seed);
        let problem = ri_lp::LpProblem::new(&inst);
        let (_, seq_report) = problem.solve(&seq_cfg);
        let (_, par_report) = problem.solve(&par_cfg);
        assert_eq!(seq_report.specials, par_report.specials);
        row(
            "2d linear program (2)",
            seq_report.checks,
            par_report.checks,
            par_report.depth,
            &format!("specials ≤ 2H_n = {:.1}", 2.0 * hn),
        );
        record([&seq_report, &par_report]);
    }

    // Row 4: closest pair (Type 2).
    {
        let pts = point_workload(n, seed, PointDistribution::UniformSquare);
        let problem = ri_closest_pair::ClosestPairProblem::new(&pts);
        let (seq, seq_report) = problem.solve(&seq_cfg);
        let (par, par_report) = problem.solve(&par_cfg);
        assert_eq!(seq.dist, par.dist);
        row(
            "closest pair (2)",
            seq_report.checks,
            par_report.checks,
            par_report.depth,
            &format!("specials ≤ 2H_n = {:.1}", 2.0 * hn),
        );
        record([&seq_report, &par_report]);
    }

    // Row 5: smallest enclosing disk (Type 2). Work = containment tests.
    {
        let pts = point_workload(n, seed, PointDistribution::UniformDisk);
        let problem = ri_enclosing::EnclosingProblem::new(&pts);
        let (seq, seq_report) = problem.solve(&seq_cfg);
        let (par, par_report) = problem.solve(&par_cfg);
        assert_eq!(seq.disk, par.disk);
        row(
            "smallest disk (2)",
            seq.contains_tests,
            par.contains_tests,
            par_report.depth,
            &format!("specials ≤ 3H_n = {:.1}", 3.0 * hn),
        );
        record([&seq_report, &par_report]);
    }

    // Row 6: LE-lists (Type 3). Work = settled vertices + relaxations;
    // depth = doubling rounds; work ratio is the Type 3 constant factor.
    {
        let g = ri_graph::generators::gnm_weighted(n, 8 * n, seed, true);
        let order = random_permutation(n, seed ^ 1);
        let problem = ri_le_lists::LeListsProblem::new(&g).with_order(order);
        let (seq, seq_report) = problem.solve(&seq_cfg);
        let (par, par_report) = problem.solve(&par_cfg);
        assert_eq!(seq.lists, par.lists);
        row(
            "le-lists (3)",
            seq_report.checks,
            par_report.checks,
            par_report.depth,
            &format!("⌈log₂ n⌉+1 = {}", log2n + 1),
        );
        record([&seq_report, &par_report]);
    }

    // Row 7: SCC (Type 3).
    {
        let g = ri_graph::generators::gnm(n, 4 * n, seed, false);
        let order = random_permutation(n, seed ^ 2);
        let problem = ri_scc::SccProblem::new(&g).with_order(order);
        let (seq, seq_report) = problem.solve(&seq_cfg);
        let (par, par_report) = problem.solve(&par_cfg);
        assert_eq!(
            ri_scc::canonical_labels(&seq.comp),
            ri_scc::canonical_labels(&par.comp)
        );
        row(
            "scc (3)",
            seq_report.checks,
            par_report.checks,
            par_report.depth,
            &format!("⌈log₂ n⌉+1 = {}", log2n + 1),
        );
        record([&seq_report, &par_report]);
    }

    println!();
    println!(
        "Type 1: parallel work == sequential work exactly (identical calls,\n\
         reordered). Type 2: the special-iteration work is identical; the ratio\n\
         reflects the executor's prefix re-checks after each special — a\n\
         constant factor, still O(n) total. Type 3: the ratio is the paper's\n\
         'constant factor in expectation' redundancy. Depth column: executor\n\
         rounds — the machine-independent quantity the theorems bound\n\
         (wall-clock comparisons live in `cargo bench`)."
    );

    if emit_json {
        println!();
        for line in json_lines {
            println!("{line}");
        }
    }
}

fn row(name: &str, seq_work: u64, par_work: u64, depth: usize, predicted: &str) {
    println!(
        "{:<28} {:>12} {:>12} {:>10.3} {:>16} {:>14}",
        name,
        seq_work,
        par_work,
        par_work as f64 / seq_work.max(1) as f64,
        depth,
        predicted
    );
}
