//! `loadgen` — the serving-layer load generator: fire N concurrent
//! `/solve` requests at an `ri-serve` instance (or, with `--router`, an
//! `ri-router` fronted fleet) and record latency percentiles to
//! `BENCH_PR4.json` / `BENCH_PR6.json`. The CI performance artifact:
//! runs briefly against an in-process target and fails on any non-2xx
//! response or unparseable body.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--concurrency C] [--n SIZE]
//!         [--problems a,b,c] [--mix benign|hostile] [--threads K]
//!         [--executors E] [--out PATH]
//!         [--router] [--shards S] [--witness PATH]
//!         [--stream] [--sessions S] [--rps R] [--batches B]
//!         [--batch-count C] [--gate-p99 MS] [--chaos PROFILE]
//! ```
//!
//! `--mix` draws each request's workload shape from the `ri-testgen`
//! vocabulary instead of every problem's default: `benign` cycles the
//! benign families, `hostile` the adversarial ones (degenerate
//! geometry, hostile arrival orders, deep digraphs) — the serving tier
//! under the workloads the tail gates sweep. In `--stream` mode the
//! session capacity is read back from the open response, so shapes
//! that deduplicate their instance (`duplicate-heavy`) still stream to
//! completion.
//!
//! Without `--addr`, an in-process server is booted on an ephemeral port
//! (sized by `--threads`/`--executors`) and shut down gracefully at the
//! end — the one-command CI path. With `--addr`, an already-running
//! server is targeted and `--threads`/`--executors` are ignored.
//!
//! With `--router`, the in-process target is a full front tier:
//! `--shards` backends plus a router, each request carrying a distinct
//! workload seed (so every request really routes — nothing collapses
//! into the result cache), and clients reuse keep-alive connections.
//! The output gains a `router` section: per-shard request counts, retry
//! counts, and cache statistics straight from the router's `/healthz`.
//! `--witness PATH` additionally captures the run's witness log,
//! replayable with `ri witness replay PATH`.
//!
//! In plain mode requests round-robin over the problem list (default:
//! every registered problem), all with workload size `--n`, one
//! connection per request — concurrency C exercises C simultaneous
//! solves end to end: admission, queueing, the shared pool, response
//! serialization.
//!
//! With `--stream`, the generator drives the streaming session protocol
//! instead: `--sessions` concurrent sessions (one keep-alive connection
//! each, capacity `--batches × --batch-count`), with batch sends paced
//! **open-loop** across the sessions at a global `--rps` target — each
//! batch has a wall-clock deadline `t0 + i/rps` fixed up front, and the
//! generator reports both per-batch latency percentiles and *lateness*
//! (how far behind schedule each send fired, the open-loop backpressure
//! signal a closed loop would hide). Results land in `BENCH_PR7.json`;
//! `--gate-p99 MS` makes the run fail when the p99 batch latency
//! exceeds the budget — the CI regression gate for the streaming path.
//! `--stream` composes with `--router` (sticky sessions over the fleet)
//! and `--witness` (the streamed log replays with `ri witness replay`).
//!
//! `--chaos PROFILE` runs the burst as a chaos soak: a deterministic
//! [`FaultPlan`] is installed on every target shard via
//! `POST /admin/chaos` before the burst (profiles `latency`, `stall`,
//! `drop`, `error`, `crash`, `mixed`, or a raw `seed=...` spec), the
//! client honors `Retry-After`/`X-RI-Retry-After-Ms` hints on retryable
//! errors (and re-sends idempotent solves on transport failures — a
//! dropped response never loses a request), and results default to
//! `BENCH_PR10.json` with retry/breaker/deadline counters folded in.
//! Under `--router` the fleet's circuit breakers, backoff, and deadline
//! propagation absorb the injected faults; the soak fails on any
//! unrecovered request.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parallel_ri::registry;
use ri_core::engine::faults::{FaultPlan, RETRY_AFTER_MS_HEADER};
use ri_core::engine::json::{self, Value};
use ri_core::engine::{ServeError, ServeRequest, ServeResponse, WorkloadSpec};
use ri_router::{BackendSpec, BackendTarget, Router, RouterConfig};
use ri_serve::{http, ServeConfig, Server};

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    n: usize,
    problems: Option<Vec<String>>,
    mix: Option<String>,
    threads: usize,
    executors: usize,
    out: Option<String>,
    router: bool,
    shards: usize,
    witness: Option<String>,
    stream: bool,
    sessions: usize,
    rps: f64,
    batches: usize,
    batch_count: usize,
    gate_p99: Option<f64>,
    chaos: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        requests: 64,
        concurrency: 8,
        n: 512,
        problems: None,
        mix: None,
        threads: 0,
        executors: 2,
        out: None,
        router: false,
        shards: 2,
        witness: None,
        stream: false,
        sessions: 4,
        rps: 40.0,
        batches: 6,
        batch_count: 32,
        gate_p99: None,
        chaos: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--concurrency" => {
                args.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("bad --concurrency: {e}"))?
            }
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--problems" => {
                args.problems = Some(
                    value("--problems")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--mix" => args.mix = Some(value("--mix")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--executors" => {
                args.executors = value("--executors")?
                    .parse()
                    .map_err(|e| format!("bad --executors: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--router" => args.router = true,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?
            }
            "--witness" => args.witness = Some(value("--witness")?),
            "--stream" => args.stream = true,
            "--sessions" => {
                args.sessions = value("--sessions")?
                    .parse()
                    .map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--rps" => {
                args.rps = value("--rps")?
                    .parse()
                    .map_err(|e| format!("bad --rps: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("bad --batches: {e}"))?
            }
            "--batch-count" => {
                args.batch_count = value("--batch-count")?
                    .parse()
                    .map_err(|e| format!("bad --batch-count: {e}"))?
            }
            "--gate-p99" => {
                args.gate_p99 = Some(
                    value("--gate-p99")?
                        .parse()
                        .map_err(|e| format!("bad --gate-p99: {e}"))?,
                )
            }
            "--chaos" => args.chaos = Some(value("--chaos")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.requests == 0 || args.concurrency == 0 || args.executors == 0 {
        return Err("--requests, --concurrency and --executors must be positive".into());
    }
    let positive = |x: f64| x.is_finite() && x > 0.0;
    if args.stream
        && (args.sessions == 0 || args.batches == 0 || args.batch_count == 0 || !positive(args.rps))
    {
        return Err("--sessions, --batches, --batch-count and --rps must be positive".into());
    }
    if args.gate_p99.is_some_and(|g| !positive(g)) {
        return Err("--gate-p99 must be a positive millisecond budget".into());
    }
    if args.router && args.addr.is_some() {
        return Err("--router boots its own in-process fleet; drop --addr".into());
    }
    if args.router && args.shards == 0 {
        return Err("--shards must be positive".into());
    }
    if let Some(mix) = &args.mix {
        if mix != "benign" && mix != "hostile" {
            return Err(format!("--mix must be `benign` or `hostile`, got `{mix}`"));
        }
    }
    if let Some(profile) = &args.chaos {
        chaos_spec(profile)?; // validate up front, before booting anything
    }
    Ok(args)
}

/// Resolve a `--chaos` profile name to a deterministic [`FaultPlan`]
/// spec (a raw `seed=...` spec is validated and passed through). Each
/// named profile pins its own seed so a profile names one reproducible
/// fault schedule, not a family of them.
fn chaos_spec(profile: &str) -> Result<String, String> {
    let spec = if profile.contains('=') {
        profile.to_string()
    } else {
        match profile {
            "latency" => "seed=42,latency=0.3:40".to_string(),
            "stall" => "seed=42,stall=0.15:120".to_string(),
            "drop" => "seed=42,drop=0.15".to_string(),
            "error" | "503" => "seed=42,error=0.25".to_string(),
            "crash" => "seed=42,crash-after=200".to_string(),
            "mixed" => "seed=42,latency=0.15:30,drop=0.08,error=0.12".to_string(),
            other => {
                return Err(format!(
                    "unknown --chaos profile `{other}` (latency|stall|drop|error|crash|mixed \
                     or a raw seed=... spec)"
                ))
            }
        }
    };
    match FaultPlan::parse(&spec) {
        Ok(Some(_)) => Ok(spec),
        Ok(None) => Err("--chaos spec resolves to no faults".into()),
        Err(e) => Err(format!("bad --chaos spec `{spec}`: {e}")),
    }
}

/// Install the chaos plan on every target shard via `POST /admin/chaos`
/// (the shards inject the faults; the router in between is what the
/// soak exercises).
fn install_chaos(addrs: &[SocketAddr], spec: &str) {
    let body = Value::Obj(vec![("spec".into(), Value::Str(spec.into()))]).write();
    for &addr in addrs {
        match http::request(
            addr,
            "POST",
            "/admin/chaos",
            Some(&body),
            Duration::from_secs(10),
        ) {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => fail(format!(
                "installing chaos on {addr}: status {}: {}",
                resp.status, resp.body
            )),
            Err(e) => fail(format!("installing chaos on {addr}: {e}")),
        }
    }
    eprintln!(
        "loadgen: chaos plan `{spec}` installed on {} shard(s)",
        addrs.len()
    );
}

/// Whether an error response means "never ran; safe to re-send": trust
/// the envelope's `retryable` when the body parses, else fall back to
/// the status code.
fn response_retryable(resp: &http::HttpResponse) -> bool {
    match ServeError::from_json(&resp.body) {
        Ok(err) => err.retryable,
        Err(_) => matches!(resp.status, 503 | 504),
    }
}

/// The server's retry hint in milliseconds: ms-precision
/// `X-RI-Retry-After-Ms` when present, else whole-second `Retry-After`.
fn retry_hint_ms(resp: &http::HttpResponse) -> Option<u64> {
    resp.header(RETRY_AFTER_MS_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .or_else(|| {
            resp.header("retry-after")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(|secs| secs.saturating_mul(1000))
        })
}

/// Cap on any single client-side Retry-After sleep, so a pathological
/// hint cannot wedge the generator.
const MAX_CLIENT_RETRY_SLEEP_MS: u64 = 2_000;

/// Re-sends per request before a chaos soak gives up on it. High enough
/// that the heaviest profile (`error=0.25` straight at one shard) fails
/// a request with probability ~`0.25^9`.
const CLIENT_MAX_RETRIES: usize = 8;

/// Send via `send`, honoring `Retry-After` on retryable error envelopes
/// with up to `max_retries` re-sends. With `retry_transport` (idempotent
/// requests under chaos: a dropped response must not lose the request),
/// transport errors are also retried after a short fixed pause. Every
/// re-send is counted into `retries`.
fn with_retry_after(
    mut send: impl FnMut() -> std::io::Result<http::HttpResponse>,
    retry_transport: bool,
    max_retries: usize,
    retries: &AtomicUsize,
) -> std::io::Result<http::HttpResponse> {
    let mut taken = 0usize;
    loop {
        let outcome = send();
        let pause_ms = match &outcome {
            Ok(resp) if resp.status != 200 && response_retryable(resp) => Some(
                retry_hint_ms(resp)
                    .unwrap_or(50)
                    .min(MAX_CLIENT_RETRY_SLEEP_MS),
            ),
            Err(_) if retry_transport => Some(25),
            _ => None,
        };
        match pause_ms {
            Some(ms) if taken < max_retries => {
                std::thread::sleep(Duration::from_millis(ms));
                taken += 1;
                retries.fetch_add(1, Ordering::Relaxed);
            }
            _ => return outcome,
        }
    }
}

/// The shape cycle `--mix` draws from for `problem`: the testgen
/// vocabulary's benign or hostile families. Empty (→ default shape)
/// when no mix is requested or the problem has no vocabulary entry.
fn mix_shapes(mix: Option<&str>, problem: &str) -> &'static [&'static str] {
    match (mix, ri_testgen::vocabulary(problem)) {
        (Some("benign"), Some(v)) => v.benign,
        (Some("hostile"), Some(v)) => v.hostile,
        _ => &[],
    }
}

/// One completed request's record.
struct Sample {
    problem: String,
    latency: Duration,
    ok: bool,
    detail: Option<String>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}

/// The router's cluster view, folded into the output document.
fn router_stats_value(router: &Router) -> Value {
    let resp = http::request(
        router.local_addr(),
        "GET",
        "/healthz",
        None,
        Duration::from_secs(10),
    )
    .unwrap_or_else(|e| fail(format!("router healthz: {e}")));
    let health = json::parse(&resp.body)
        .unwrap_or_else(|e| fail(format!("unparseable router healthz: {e}")));
    let pick = |key: &str| health.get(key).cloned().unwrap_or(Value::Null);
    Value::Obj(vec![
        ("shards".into(), pick("shards")),
        ("retries".into(), pick("retries")),
        ("routed".into(), pick("routed")),
        ("errored".into(), pick("errored")),
        ("robustness".into(), pick("robustness")),
        ("sessions".into(), pick("sessions")),
        ("cache".into(), pick("cache")),
        ("witness".into(), pick("witness")),
    ])
}

/// One streamed batch's record.
struct StreamSample {
    latency_ms: f64,
    /// How far behind its open-loop deadline the send fired.
    lateness_ms: f64,
    ok: bool,
    detail: Option<String>,
}

/// Drive `--sessions` streaming sessions at a global open-loop `--rps`
/// batch target: every batch's send deadline is fixed up front as
/// `t0 + i/rps` (batches interleave round-robin across sessions), so a
/// slow server shows up as *lateness* rather than silently stretching
/// the schedule. Returns the result document (sans the `router`/`gate`
/// sections), the failure count, and the observed p99 batch latency.
fn run_stream(args: &Args, addr: SocketAddr, problem: &str) -> (Value, usize, f64) {
    let capacity = args.batches * args.batch_count;
    let interval = Duration::from_secs_f64(1.0 / args.rps);
    let client_retries = AtomicUsize::new(0);
    // The schedule starts shortly after every session thread has opened.
    let t0 = Instant::now() + Duration::from_millis(50);
    let results: Vec<(Vec<StreamSample>, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.sessions)
            .map(|s| {
                let client_retries = &client_retries;
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let mut lifecycle = Vec::new();
                    let mut conn = http::ClientConn::new(addr, Duration::from_secs(120));
                    let mut req = ServeRequest::new(problem.to_string());
                    req.workload = WorkloadSpec::new(capacity, s as u64);
                    let shapes = mix_shapes(args.mix.as_deref(), problem);
                    if !shapes.is_empty() {
                        req.workload = req.workload.shape(shapes[s % shapes.len()]);
                    }
                    req.config.seed = 7;
                    let open_body = req.to_json();
                    // Session opens and batches retry only on *retryable*
                    // error envelopes (never blind transport re-sends: a
                    // duplicate open leaks a session, a duplicate batch
                    // corrupts the sequence).
                    let opened = match with_retry_after(
                        || conn.request("POST", "/stream", Some(&open_body)),
                        false,
                        CLIENT_MAX_RETRIES,
                        client_retries,
                    ) {
                        Ok(resp) if resp.status == 200 => {
                            json::parse(&resp.body).ok().and_then(|v| {
                                let id = v
                                    .get("session")
                                    .and_then(Value::as_str)
                                    .map(str::to_string)?;
                                // Shapes that deduplicate their instance
                                // open below the requested capacity; the
                                // schedule follows the server's number.
                                let cap = v
                                    .get("capacity")
                                    .and_then(Value::as_usize)
                                    .unwrap_or(capacity);
                                Some((id, cap))
                            })
                        }
                        Ok(resp) => {
                            lifecycle.push(format!(
                                "session {s}: open status {}: {}",
                                resp.status, resp.body
                            ));
                            None
                        }
                        Err(e) => {
                            lifecycle.push(format!("session {s}: open transport: {e}"));
                            None
                        }
                    };
                    let Some((id, cap)) = opened else {
                        return (samples, lifecycle);
                    };
                    // Spread the actual capacity evenly over the batch
                    // schedule; with the default capacity this is exactly
                    // `--batch-count` per batch.
                    let sizes: Vec<usize> = (0..args.batches)
                        .map(|j| cap / args.batches + usize::from(j < cap % args.batches))
                        .filter(|&c| c > 0)
                        .collect();
                    let path = format!("/stream/{id}/batch");
                    for (j, count) in sizes.into_iter().enumerate() {
                        let body = format!("{{\"count\":{count}}}");
                        let scheduled = t0 + interval.mul_f64((j * args.sessions + s) as f64);
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let send = Instant::now();
                        let lateness_ms =
                            send.saturating_duration_since(scheduled).as_secs_f64() * 1000.0;
                        let outcome = with_retry_after(
                            || conn.request("POST", &path, Some(&body)),
                            false,
                            CLIENT_MAX_RETRIES,
                            client_retries,
                        );
                        let latency_ms = send.elapsed().as_secs_f64() * 1000.0;
                        let (ok, detail) = match outcome {
                            Ok(resp) if resp.status == 200 => match json::parse(&resp.body) {
                                Ok(v) if v.get("batch").and_then(Value::as_usize) == Some(j) => {
                                    (true, None)
                                }
                                Ok(_) => (
                                    false,
                                    Some(format!(
                                        "session {id} batch {j}: out-of-sequence delta: {}",
                                        resp.body
                                    )),
                                ),
                                Err(e) => (
                                    false,
                                    Some(format!("session {id} batch {j}: unparseable delta: {e}")),
                                ),
                            },
                            Ok(resp) => (
                                false,
                                Some(format!(
                                    "session {id} batch {j}: status {}: {}",
                                    resp.status, resp.body
                                )),
                            ),
                            Err(e) => (
                                false,
                                Some(format!("session {id} batch {j}: transport: {e}")),
                            ),
                        };
                        samples.push(StreamSample {
                            latency_ms,
                            lateness_ms,
                            ok,
                            detail,
                        });
                    }
                    match conn.request("DELETE", &format!("/stream/{id}"), None) {
                        Ok(resp) if resp.status == 200 => {}
                        Ok(resp) => lifecycle.push(format!(
                            "session {id}: close status {}: {}",
                            resp.status, resp.body
                        )),
                        Err(e) => lifecycle.push(format!("session {id}: close transport: {e}")),
                    }
                    (samples, lifecycle)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    let wall = (Instant::now() - t0).as_secs_f64().max(1e-9);

    let mut samples = Vec::new();
    let mut lifecycle_failures = Vec::new();
    for (s, l) in results {
        samples.extend(s);
        lifecycle_failures.extend(l);
    }
    let batch_failures = samples.iter().filter(|s| !s.ok).count();
    for s in samples.iter().filter(|s| !s.ok) {
        eprintln!(
            "loadgen: FAILED {}",
            s.detail.as_deref().unwrap_or("unknown")
        );
    }
    for msg in &lifecycle_failures {
        eprintln!("loadgen: FAILED {msg}");
    }
    let failed = batch_failures + lifecycle_failures.len();

    let mut lat: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let mut late: Vec<f64> = samples.iter().map(|s| s.lateness_ms).collect();
    late.sort_by(|a, b| a.total_cmp(b));
    let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
    let p99 = percentile(&lat, 0.99);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Value::Obj(vec![
        (
            "machine".into(),
            Value::Obj(vec![("cores".into(), Value::Num(cores as f64))]),
        ),
        (
            "config".into(),
            Value::Obj(vec![
                ("stream".into(), Value::Bool(true)),
                ("problem".into(), Value::Str(problem.into())),
                (
                    "mix".into(),
                    args.mix
                        .as_deref()
                        .map(|m| Value::Str(m.into()))
                        .unwrap_or(Value::Null),
                ),
                ("sessions".into(), Value::Num(args.sessions as f64)),
                ("rps".into(), Value::Num(args.rps)),
                ("batches".into(), Value::Num(args.batches as f64)),
                ("batch_count".into(), Value::Num(args.batch_count as f64)),
                ("capacity".into(), Value::Num(capacity as f64)),
                ("executors".into(), Value::Num(args.executors as f64)),
                ("in_process_server".into(), Value::Bool(args.addr.is_none())),
                ("router".into(), Value::Bool(args.router)),
                (
                    "shards".into(),
                    if args.router {
                        Value::Num(args.shards as f64)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
        (
            "totals".into(),
            Value::Obj(vec![
                ("batches".into(), Value::Num(samples.len() as f64)),
                (
                    "ok".into(),
                    Value::Num((samples.len() - batch_failures) as f64),
                ),
                ("failed".into(), Value::Num(failed as f64)),
                (
                    "client_retries".into(),
                    Value::Num(client_retries.load(Ordering::Relaxed) as f64),
                ),
                ("wall_seconds".into(), Value::Num(round3(wall))),
                (
                    "achieved_rps".into(),
                    Value::Num(round3(samples.len() as f64 / wall)),
                ),
            ]),
        ),
        (
            "latency_ms".into(),
            Value::Obj(vec![
                ("mean".into(), Value::Num(round3(mean))),
                ("p50".into(), Value::Num(round3(percentile(&lat, 0.50)))),
                ("p90".into(), Value::Num(round3(percentile(&lat, 0.90)))),
                ("p99".into(), Value::Num(round3(p99))),
                (
                    "max".into(),
                    Value::Num(round3(lat.last().copied().unwrap_or(0.0))),
                ),
            ]),
        ),
        (
            "lateness_ms".into(),
            Value::Obj(vec![
                ("p50".into(), Value::Num(round3(percentile(&late, 0.50)))),
                ("p99".into(), Value::Num(round3(percentile(&late, 0.99)))),
                (
                    "max".into(),
                    Value::Num(round3(late.last().copied().unwrap_or(0.0))),
                ),
            ]),
        ),
    ]);
    (doc, failed, p99)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| fail(e));
    let out = args.out.clone().unwrap_or_else(|| {
        if args.chaos.is_some() {
            "BENCH_PR10.json".to_string()
        } else if args.stream {
            "BENCH_PR7.json".to_string()
        } else if args.router {
            "BENCH_PR6.json".to_string()
        } else {
            "BENCH_PR4.json".to_string()
        }
    });

    // Target: an external server, an in-process one, or (--router) an
    // in-process fleet of shards behind a router — all shut down
    // gracefully after the run.
    let mut in_process: Option<Server> = None;
    let mut fleet: Option<(Router, Vec<Server>)> = None;
    let addr: SocketAddr = if args.router {
        let backends: Vec<Server> = (0..args.shards)
            .map(|i| {
                Server::start(
                    registry(),
                    ServeConfig {
                        threads: args.threads,
                        executors: args.executors,
                        shard_id: format!("s{i}"),
                        ..ServeConfig::default()
                    },
                )
                .unwrap_or_else(|e| fail(format!("starting shard {i}: {e}")))
            })
            .collect();
        let specs = backends
            .iter()
            .enumerate()
            .map(|(i, b)| BackendSpec {
                shard_id: format!("s{i}"),
                target: BackendTarget::Attach(b.local_addr()),
            })
            .collect();
        let router = Router::start(
            RouterConfig {
                witness_path: args.witness.clone().map(Into::into),
                health_interval_ms: 200,
                ..RouterConfig::default()
            },
            specs,
        )
        .unwrap_or_else(|e| fail(format!("starting router: {e}")));
        let addr = router.local_addr();
        eprintln!(
            "loadgen: in-process router on {addr} fronting {} shards",
            args.shards
        );
        fleet = Some((router, backends));
        addr
    } else {
        match &args.addr {
            // Resolve through ToSocketAddrs so hostnames (`localhost:8077`)
            // work exactly as they do for `ri-serve --addr`.
            Some(addr) => std::net::ToSocketAddrs::to_socket_addrs(addr.as_str())
                .unwrap_or_else(|e| fail(format!("bad --addr: {e}")))
                .next()
                .unwrap_or_else(|| fail(format!("--addr `{addr}` resolved to nothing"))),
            None => {
                let server = Server::start(
                    registry(),
                    ServeConfig {
                        threads: args.threads,
                        executors: args.executors,
                        ..ServeConfig::default()
                    },
                )
                .unwrap_or_else(|e| fail(format!("starting in-process server: {e}")));
                let addr = server.local_addr();
                eprintln!(
                    "loadgen: in-process server on {addr} (pool width {}, {} executors)",
                    server.pool_width(),
                    args.executors
                );
                in_process = Some(server);
                addr
            }
        }
    };

    // Chaos soak: install the fault plan on every shard before the
    // burst. In `--router` mode the faults land behind the front tier
    // (the breakers/backoff/deadlines under test); otherwise they land
    // on the single target server and the *client's* Retry-After
    // handling is what recovers.
    let chaos = args
        .chaos
        .as_deref()
        .map(|p| chaos_spec(p).unwrap_or_else(|e| fail(e)));
    if let Some(spec) = &chaos {
        let targets: Vec<SocketAddr> = match &fleet {
            Some((_, backends)) => backends.iter().map(|b| b.local_addr()).collect(),
            None => vec![addr],
        };
        install_chaos(&targets, spec);
    }
    let chaos_value = || {
        chaos
            .as_deref()
            .map(|s| Value::Str(s.into()))
            .unwrap_or(Value::Null)
    };

    if args.stream {
        let problem = args
            .problems
            .as_ref()
            .and_then(|p| p.first().cloned())
            .unwrap_or_else(|| "sort".to_string());
        eprintln!(
            "loadgen: streaming {} sessions x {} batches of {} ({}) at {} batches/s open-loop",
            args.sessions, args.batches, args.batch_count, problem, args.rps
        );
        let (mut doc, failed, p99) = run_stream(&args, addr, &problem);
        let router_stats = fleet.as_ref().map(|(router, _)| router_stats_value(router));
        if let Some(server) = in_process.take() {
            server.shutdown();
        }
        if let Some((router, backends)) = fleet.take() {
            router.shutdown();
            for backend in backends {
                backend.shutdown();
            }
        }
        let gate = match args.gate_p99 {
            Some(limit) => Value::Obj(vec![
                ("p99_ms_limit".into(), Value::Num(round3(limit))),
                ("p99_ms".into(), Value::Num(round3(p99))),
                ("passed".into(), Value::Bool(p99 <= limit)),
            ]),
            None => Value::Null,
        };
        if let Value::Obj(members) = &mut doc {
            if let Some((_, Value::Obj(cfg))) = members.iter_mut().find(|(k, _)| k == "config") {
                cfg.push(("chaos".into(), chaos_value()));
            }
            members.push(("gate".into(), gate));
            members.push(("router".into(), router_stats.unwrap_or(Value::Null)));
        }
        std::fs::write(&out, format!("{}\n", doc.write()))
            .unwrap_or_else(|e| fail(format!("writing {out}: {e}")));
        eprintln!(
            "loadgen: {} sessions, {} batches, {} failed, p99 {:.1}ms, wrote {}",
            args.sessions,
            args.sessions * args.batches,
            failed,
            p99,
            out
        );
        if failed > 0 {
            std::process::exit(1);
        }
        if let Some(limit) = args.gate_p99 {
            if p99 > limit {
                eprintln!("loadgen: p99 {p99:.1}ms exceeds the --gate-p99 {limit:.1}ms budget");
                std::process::exit(1);
            }
        }
        return;
    }

    let problems: Vec<String> = match &args.problems {
        Some(list) => list.clone(),
        None => registry().names().iter().map(|s| s.to_string()).collect(),
    };
    if problems.is_empty() {
        fail("no problems to request");
    }

    // Pre-render the request bodies. Plain mode: one per problem,
    // round-robined. Router mode: one per *request* with a distinct
    // workload seed, so every request carries a fresh witness key and
    // really routes (the result cache would otherwise absorb repeats
    // and the per-shard counts would measure nothing).
    let shaped = |p: &str, wseed: u64, round: usize| -> (String, String) {
        let mut req = ServeRequest::new(p.to_string());
        req.workload = WorkloadSpec::new(args.n, wseed);
        let shapes = mix_shapes(args.mix.as_deref(), p);
        if !shapes.is_empty() {
            req.workload = req.workload.shape(shapes[round % shapes.len()]);
        }
        req.config.seed = 7;
        (p.to_string(), req.to_json())
    };
    let bodies: Vec<(String, String)> = if args.router {
        (0..args.requests)
            .map(|i| {
                let p = &problems[i % problems.len()];
                shaped(p, i as u64, i / problems.len())
            })
            .collect()
    } else if args.mix.is_some() {
        // One body per (problem, shape) pair so a short burst still
        // touches the whole requested family mix.
        problems
            .iter()
            .flat_map(|p| {
                let shapes = mix_shapes(args.mix.as_deref(), p);
                (0..shapes.len().max(1)).map(|round| shaped(p, 1, round))
            })
            .collect()
    } else {
        problems.iter().map(|p| shaped(p, 1, 0)).collect()
    };

    let next = AtomicUsize::new(0);
    let client_retries = AtomicUsize::new(0);
    let bodies = Arc::new(bodies);
    let total = args.requests;
    let use_keep_alive = args.router;
    // Solves are idempotent (same request ⇒ same deterministic result),
    // so under chaos a transport failure is also safe to re-send.
    let retry_transport = chaos.is_some();
    let t0 = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.concurrency)
            .map(|_| {
                let bodies = Arc::clone(&bodies);
                let next = &next;
                let client_retries = &client_retries;
                s.spawn(move || {
                    // Router mode: one keep-alive connection per client
                    // thread, reused across its whole share of the burst.
                    let mut conn = use_keep_alive
                        .then(|| http::ClientConn::new(addr, Duration::from_secs(120)));
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let (problem, body) = &bodies[i % bodies.len()];
                        let t = Instant::now();
                        let outcome = with_retry_after(
                            || match conn.as_mut() {
                                Some(c) => c.request("POST", "/solve", Some(body)),
                                None => http::request(
                                    addr,
                                    "POST",
                                    "/solve",
                                    Some(body),
                                    Duration::from_secs(120),
                                ),
                            },
                            retry_transport,
                            CLIENT_MAX_RETRIES,
                            client_retries,
                        );
                        let latency = t.elapsed();
                        let (ok, detail) = match outcome {
                            Ok(resp) if resp.status == 200 => {
                                match ServeResponse::from_json(&resp.body) {
                                    Ok(r) if r.problem == *problem => (true, None),
                                    Ok(r) => {
                                        (false, Some(format!("echoed problem `{}`", r.problem)))
                                    }
                                    Err(e) => (false, Some(format!("unparseable response: {e}"))),
                                }
                            }
                            Ok(resp) => (
                                false,
                                Some(format!("status {}: {}", resp.status, resp.body)),
                            ),
                            Err(e) => (false, Some(format!("transport: {e}"))),
                        };
                        local.push(Sample {
                            problem: problem.clone(),
                            latency,
                            ok,
                            detail,
                        });
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    // Router mode: capture the cluster view (per-shard request counts,
    // retries, cache stats, witness info) before tearing the fleet down.
    let router_stats: Option<Value> = fleet.as_ref().map(|(router, _)| router_stats_value(router));

    if let Some(server) = in_process.take() {
        server.shutdown();
    }
    if let Some((router, backends)) = fleet.take() {
        router.shutdown();
        for backend in backends {
            backend.shutdown();
        }
    }

    let failures: Vec<&Sample> = samples.iter().filter(|s| !s.ok).collect();
    for f in &failures {
        eprintln!(
            "loadgen: FAILED {} ({})",
            f.problem,
            f.detail.as_deref().unwrap_or("unknown")
        );
    }

    let mut all_ms: Vec<f64> = samples
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1000.0)
        .collect();
    all_ms.sort_by(|a, b| a.total_cmp(b));
    let mean_ms = all_ms.iter().sum::<f64>() / all_ms.len().max(1) as f64;

    let mut per_problem: Vec<(String, Value)> = Vec::new();
    for problem in &problems {
        let mut ms: Vec<f64> = samples
            .iter()
            .filter(|s| s.problem == *problem)
            .map(|s| s.latency.as_secs_f64() * 1000.0)
            .collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        per_problem.push((
            problem.clone(),
            Value::Obj(vec![
                ("count".into(), Value::Num(ms.len() as f64)),
                ("p50_ms".into(), Value::Num(round3(percentile(&ms, 0.50)))),
                (
                    "max_ms".into(),
                    Value::Num(round3(ms.last().copied().unwrap_or(0.0))),
                ),
            ]),
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Value::Obj(vec![
        (
            "machine".into(),
            Value::Obj(vec![("cores".into(), Value::Num(cores as f64))]),
        ),
        (
            "config".into(),
            Value::Obj(vec![
                ("requests".into(), Value::Num(args.requests as f64)),
                ("concurrency".into(), Value::Num(args.concurrency as f64)),
                ("n".into(), Value::Num(args.n as f64)),
                (
                    "mix".into(),
                    args.mix
                        .as_deref()
                        .map(|m| Value::Str(m.into()))
                        .unwrap_or(Value::Null),
                ),
                ("executors".into(), Value::Num(args.executors as f64)),
                ("in_process_server".into(), Value::Bool(args.addr.is_none())),
                ("router".into(), Value::Bool(args.router)),
                (
                    "shards".into(),
                    if args.router {
                        Value::Num(args.shards as f64)
                    } else {
                        Value::Null
                    },
                ),
                ("chaos".into(), chaos_value()),
            ]),
        ),
        (
            "totals".into(),
            Value::Obj(vec![
                ("requests".into(), Value::Num(samples.len() as f64)),
                (
                    "ok".into(),
                    Value::Num((samples.len() - failures.len()) as f64),
                ),
                ("failed".into(), Value::Num(failures.len() as f64)),
                (
                    "client_retries".into(),
                    Value::Num(client_retries.load(Ordering::Relaxed) as f64),
                ),
                ("wall_seconds".into(), Value::Num(round3(wall))),
                (
                    "throughput_rps".into(),
                    Value::Num(round3(samples.len() as f64 / wall.max(1e-9))),
                ),
            ]),
        ),
        (
            "latency_ms".into(),
            Value::Obj(vec![
                ("mean".into(), Value::Num(round3(mean_ms))),
                ("p50".into(), Value::Num(round3(percentile(&all_ms, 0.50)))),
                ("p90".into(), Value::Num(round3(percentile(&all_ms, 0.90)))),
                ("p99".into(), Value::Num(round3(percentile(&all_ms, 0.99)))),
                (
                    "max".into(),
                    Value::Num(round3(all_ms.last().copied().unwrap_or(0.0))),
                ),
            ]),
        ),
        ("per_problem".into(), Value::Obj(per_problem)),
        ("router".into(), router_stats.unwrap_or(Value::Null)),
    ]);

    std::fs::write(&out, format!("{}\n", doc.write()))
        .unwrap_or_else(|e| fail(format!("writing {}: {e}", out)));
    eprintln!(
        "loadgen: {} requests, {} ok, p50 {:.1}ms p99 {:.1}ms, wrote {}",
        samples.len(),
        samples.len() - failures.len(),
        percentile(&all_ms, 0.50),
        percentile(&all_ms, 0.99),
        out
    );

    if !failures.is_empty() {
        std::process::exit(1);
    }
}
