//! `ri` — the registry-driven CLI: run any registered problem by name and
//! print `{summary, report}` JSON on one line. This is the foundation of
//! the ROADMAP serving layer: the same request/response shapes work over
//! any transport.
//!
//! Request forms (all equivalent):
//!
//! ```text
//! ri '{"problem":"delaunay","workload":{"n":1000,"seed":7,"shape":"uniform-disk"},"config":{"mode":"parallel","threads":4}}'
//! ri --request-file req.json        # same JSON from a file ("-" = stdin)
//! ri --problem delaunay --n 1000 --seed 7 --shape uniform-disk --mode parallel --threads 4
//! ri --list                         # registered problem names + descriptions
//! ```
//!
//! `workload.seed` seeds the input generator; `config.seed` seeds run-time
//! randomness (processing orders). Omitted fields take their defaults
//! (`n` 1024, seeds 0, parallel mode, machine threads). The response is
//! `{"problem":...,"workload":...,"config":...,"summary":...,"report":...}`
//! — problem + workload + config replay exactly the documented run;
//! errors print one line to stderr and exit nonzero.

use std::io::Read;

use parallel_ri::registry;
use ri_core::engine::json::{self, Value};
use ri_core::engine::{RunConfig, WorkloadSpec};

/// Seeds must stay strictly below 2^53 (the JSON layer is f64): any
/// larger integer in a request either is unrepresentable or rounds to at
/// least 2^53, so rejecting `seed >= 2^53` catches every over-limit
/// input regardless of rounding direction, and a response's echoed
/// request always replays to the run it documents.
const SEED_LIMIT: u64 = 1 << 53;

fn check_seed(name: &str, seed: u64) -> Result<u64, String> {
    if seed >= SEED_LIMIT {
        return Err(format!(
            "{name} {seed} is not below 2^53 and cannot round-trip through the JSON response"
        ));
    }
    Ok(seed)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ri: {msg}");
    std::process::exit(2);
}

fn usage_text() -> &'static str {
    "usage: ri '<request-json>'\n\
     \x20      ri --request-file <path|->\n\
     \x20      ri --problem <name> [--n N] [--seed S] [--shape NAME] [--param X]\n\
     \x20         [--mode sequential|parallel] [--run-seed S] [--threads K] [--no-instrument]\n\
     \x20      ri --list\n\
     \n\
     The request JSON shape is {\"problem\": <name>, \"workload\": {n, seed, shape?, param?},\n\
     \"config\": {seed, mode, threads?, instrument?}}; the response echoes\n\
     problem/workload/config and adds summary + report JSON."
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

struct Request {
    problem: String,
    spec: WorkloadSpec,
    cfg: RunConfig,
}

/// Parse the top-level `{problem, workload, config}` request object.
fn parse_request(text: &str) -> Result<Request, String> {
    let v = json::parse(text).map_err(|e| format!("bad request JSON: {e}"))?;
    let problem = v
        .get("problem")
        .and_then(Value::as_str)
        .ok_or("request needs a string `problem` field")?
        .to_string();
    let workload = v.get("workload");
    let mut spec = match workload {
        Some(w) => WorkloadSpec::from_value(w).map_err(|e| e.to_string())?,
        None => WorkloadSpec::new(0, 0),
    };
    // Default the size only when the field is genuinely absent — an
    // explicit "n": 0 must reach the constructor and fail there, exactly
    // like `--n 0` does on the flags path.
    if workload.and_then(|w| w.get("n")).is_none() {
        spec.n = 1024; // a sensible default instance size
    }
    spec.seed = check_seed("workload.seed", spec.seed)?;
    let mut cfg = match v.get("config") {
        Some(c) => RunConfig::from_value(c).map_err(|e| e.to_string())?,
        None => RunConfig::default(),
    };
    cfg.seed = check_seed("config.seed", cfg.seed)?;
    Ok(Request { problem, spec, cfg })
}

/// Parse `--flag value` style arguments into a request.
fn parse_flags(args: &[String]) -> Result<Request, String> {
    let mut problem: Option<String> = None;
    let mut spec = WorkloadSpec::new(1024, 0);
    let mut cfg = RunConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--problem" => problem = Some(value("--problem")?),
            "--n" => spec.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--seed" => {
                spec.seed = check_seed(
                    "--seed",
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )?
            }
            "--shape" => spec.shape = Some(value("--shape")?),
            "--param" => {
                spec.param = Some(
                    value("--param")?
                        .parse()
                        .map_err(|e| format!("bad --param: {e}"))?,
                )
            }
            "--mode" => {
                cfg.mode = value("--mode")?
                    .parse()
                    .map_err(|e| format!("bad --mode: {e}"))?
            }
            "--run-seed" => {
                cfg.seed = check_seed(
                    "--run-seed",
                    value("--run-seed")?
                        .parse()
                        .map_err(|e| format!("bad --run-seed: {e}"))?,
                )?
            }
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                cfg.threads = (t > 0).then_some(t);
            }
            "--no-instrument" => cfg.instrument = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Request {
        problem: problem.ok_or("--problem is required")?,
        spec,
        cfg,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage_text());
        return;
    }
    if args.is_empty() {
        usage();
    }

    let reg = registry();
    if args[0] == "--list" {
        for (name, description) in reg.descriptions() {
            println!("{name:<14} {description}");
        }
        return;
    }

    let request = if args[0] == "--request-file" {
        if args.len() > 2 {
            fail(format!(
                "unexpected arguments after --request-file: {}",
                args[2..].join(" ")
            ));
        }
        let path = args.get(1).unwrap_or_else(|| usage());
        let text = if path == "-" {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(format!("reading stdin: {e}")));
            buf
        } else {
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("reading {path}: {e}")))
        };
        parse_request(&text)
    } else if args[0].trim_start().starts_with('{') {
        if args.len() > 1 {
            fail(format!(
                "unexpected arguments after the JSON request: {}",
                args[1..].join(" ")
            ));
        }
        parse_request(&args[0])
    } else {
        parse_flags(&args)
    }
    .unwrap_or_else(|e| fail(e));

    let (summary, report) = reg
        .solve(&request.problem, &request.spec, &request.cfg)
        .unwrap_or_else(|e| fail(e));

    // Response: echo the resolved problem/workload/config — together they
    // replay exactly this run — then summary + report. Assembled from
    // already-serialized parts so the shapes stay exactly the library's
    // own JSON forms.
    println!(
        "{{\"problem\":{},\"workload\":{},\"config\":{},\"summary\":{},\"report\":{}}}",
        Value::Str(request.problem.clone()).write(),
        request.spec.to_json(),
        request.cfg.to_json(),
        summary.to_json(),
        report.to_json()
    );
}
