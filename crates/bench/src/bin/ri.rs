//! `ri` — the registry-driven CLI: run any registered problem by name and
//! print `{summary, report}` JSON on one line. The CLI and the `ri-serve`
//! HTTP server speak the same [`ServeRequest`]/[`ServeResponse`] envelope
//! from `ri_core::engine::envelope` — one parse path, identical defaults,
//! so a request body works verbatim over either transport.
//!
//! Request forms (all equivalent):
//!
//! ```text
//! ri '{"problem":"delaunay","workload":{"n":1000,"seed":7,"shape":"uniform-disk"},"config":{"mode":"parallel","threads":4}}'
//! ri --request-file req.json        # same JSON from a file ("-" = stdin)
//! ri --problem delaunay --n 1000 --seed 7 --shape uniform-disk --mode parallel --threads 4
//! ri --list                         # registered problem names + descriptions
//! ri witness replay <file>          # re-execute a witness log, assert bit-identity
//! ```
//!
//! `witness replay` loads an `ri-router` witness log (one JSON record per
//! routed solve or served stream batch), re-executes every record through
//! the local registry — solves one-shot, stream sessions re-fed batch by
//! batch under their original ids — and asserts the answers, per-batch
//! deltas **and** the deterministic round traces come back bit-identical:
//! the cross-shard determinism gate. Prints a one-line JSON summary;
//! exits nonzero if any record diverges.
//!
//! `workload.seed` seeds the input generator; `config.seed` seeds run-time
//! randomness (processing orders). Omitted fields take their defaults
//! (`n` 1024, seeds 0, parallel mode, machine threads). The response is
//! `{"problem":...,"workload":...,"config":...,"summary":...,"report":...}`
//! — problem + workload + config replay exactly the documented run;
//! errors print one line to stderr and exit nonzero.

use std::io::Read;

use parallel_ri::registry;
use ri_core::engine::envelope::check_seed;
use ri_core::engine::json::Value;
use ri_core::engine::registry::Registry;
use ri_core::engine::witness;
use ri_core::engine::{ServeRequest, ServeResponse};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ri: {msg}");
    std::process::exit(2);
}

fn usage_text() -> &'static str {
    "usage: ri '<request-json>'\n\
     \x20      ri --request-file <path|->\n\
     \x20      ri --problem <name> [--n N] [--seed S] [--shape NAME] [--param X]\n\
     \x20         [--mode sequential|parallel|relaxed:k] [--run-seed S] [--threads K] [--no-instrument]\n\
     \x20      ri --list\n\
     \x20      ri witness replay <file>\n\
     \n\
     The request JSON shape is {\"problem\": <name>, \"workload\": {n, seed, shape?, param?},\n\
     \"config\": {seed, mode, threads?, instrument?}}; the response echoes\n\
     problem/workload/config and adds summary + report JSON. The same\n\
     request body works verbatim against ri-serve's POST /solve.\n\
     `witness replay` re-executes every record of an ri-router witness log\n\
     (one-shot solves and streamed session batches alike) and exits nonzero\n\
     unless all answers, per-batch deltas and round traces reproduce\n\
     bit-identically; relaxed-mode records gate on answer equality only\n\
     (their round traces follow the relaxed schedule by design)."
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

/// Parse `--flag value` style arguments into the shared request envelope.
fn parse_flags(args: &[String]) -> Result<ServeRequest, String> {
    let mut problem: Option<String> = None;
    let mut request = ServeRequest::new("");
    let check = |name: &str, seed: u64| check_seed(name, seed).map_err(|e| e.message);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--problem" => problem = Some(value("--problem")?),
            "--n" => {
                request.workload.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?
            }
            "--seed" => {
                request.workload.seed = check(
                    "--seed",
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                )?
            }
            "--shape" => request.workload.shape = Some(value("--shape")?),
            "--param" => {
                request.workload.param = Some(
                    value("--param")?
                        .parse()
                        .map_err(|e| format!("bad --param: {e}"))?,
                )
            }
            "--mode" => {
                request.config.mode = value("--mode")?
                    .parse()
                    .map_err(|e| format!("bad --mode: {e}"))?
            }
            "--run-seed" => {
                request.config.seed = check(
                    "--run-seed",
                    value("--run-seed")?
                        .parse()
                        .map_err(|e| format!("bad --run-seed: {e}"))?,
                )?
            }
            "--threads" => {
                let t: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                request.config.threads = (t > 0).then_some(t);
            }
            "--no-instrument" => request.config.instrument = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    request.problem = problem.ok_or("--problem is required")?;
    Ok(request)
}

/// `ri witness replay <file>`: the determinism gate as a command. The
/// log may mix one-shot solve records and stream-batch records. Solves
/// re-execute one by one; stream batches are grouped by session (order
/// preserved) and each session is re-fed batch by batch, asserting every
/// per-batch delta — answer, trace, problem-specific delta — comes back
/// bit-identical. Relaxed-mode records gate on answer equality only (their
/// traces follow the relaxed schedule). Any divergence is reported per
/// record — tagged with the record's execution mode — and fails the run.
fn witness_command(reg: &Registry, args: &[String]) {
    match args {
        [subcommand, path] if subcommand == "replay" => {
            let entries = witness::read_any_log(path).unwrap_or_else(|e| fail(e));
            let mut divergent = 0usize;
            let mut solves = 0usize;
            let mut stream_batches = 0usize;
            let mut sessions: Vec<(String, Vec<witness::StreamBatchRecord>)> = Vec::new();
            for (i, entry) in entries.iter().enumerate() {
                match entry {
                    witness::LogEntry::Solve(record) => {
                        solves += 1;
                        if let Err(e) = witness::replay(reg, record) {
                            divergent += 1;
                            eprintln!(
                                "ri: record {} ({} mode {} seed {} via shard {}): {e}",
                                i + 1,
                                record.request.problem,
                                record.request.config.mode.as_str(),
                                record.request.config.seed,
                                record.shard
                            );
                        }
                    }
                    witness::LogEntry::Stream(record) => {
                        stream_batches += 1;
                        match sessions.iter_mut().find(|(id, _)| *id == record.session) {
                            Some((_, records)) => records.push(record.clone()),
                            None => sessions.push((record.session.clone(), vec![record.clone()])),
                        }
                    }
                }
            }
            for (id, records) in &sessions {
                if let Err(e) = witness::replay_stream(reg, records) {
                    divergent += 1;
                    eprintln!(
                        "ri: session {id} ({} mode {} x{} batches): {e}",
                        records[0].spec.problem,
                        records[0].spec.config.mode.as_str(),
                        records.len()
                    );
                }
            }
            println!(
                "{}",
                Value::Obj(vec![
                    ("log".into(), Value::Str(path.clone())),
                    ("records".into(), Value::Num(entries.len() as f64)),
                    ("solves".into(), Value::Num(solves as f64)),
                    ("stream_batches".into(), Value::Num(stream_batches as f64)),
                    ("sessions".into(), Value::Num(sessions.len() as f64)),
                    ("divergent".into(), Value::Num(divergent as f64)),
                    ("ok".into(), Value::Bool(divergent == 0)),
                ])
                .write()
            );
            if divergent > 0 {
                std::process::exit(1);
            }
        }
        _ => fail("usage: ri witness replay <file>"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage_text());
        return;
    }
    if args.is_empty() {
        usage();
    }

    let reg = registry();
    if args[0] == "--list" {
        for (name, description) in reg.descriptions() {
            println!("{name:<14} {description}");
        }
        return;
    }
    if args[0] == "witness" {
        witness_command(&reg, &args[1..]);
        return;
    }

    let request = if args[0] == "--request-file" {
        if args.len() > 2 {
            fail(format!(
                "unexpected arguments after --request-file: {}",
                args[2..].join(" ")
            ));
        }
        let path = args.get(1).unwrap_or_else(|| usage());
        let text = if path == "-" {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(format!("reading stdin: {e}")));
            buf
        } else {
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("reading {path}: {e}")))
        };
        ServeRequest::from_json(&text).map_err(|e| e.to_string())
    } else if args[0].trim_start().starts_with('{') {
        if args.len() > 1 {
            fail(format!(
                "unexpected arguments after the JSON request: {}",
                args[1..].join(" ")
            ));
        }
        ServeRequest::from_json(&args[0]).map_err(|e| e.to_string())
    } else {
        parse_flags(&args)
    }
    .unwrap_or_else(|e| fail(e));

    let (summary, report) = reg
        .solve(&request.problem, &request.workload, &request.config)
        .unwrap_or_else(|e| fail(e));

    // Response: echo the resolved problem/workload/config — together they
    // replay exactly this run — then summary + report. The shape is the
    // shared envelope's, byte-identical to an ri-serve /solve response.
    let response = ServeResponse {
        problem: request.problem,
        workload: request.workload,
        config: request.config,
        summary,
        report,
    };
    println!("{}", response.to_json());
}
