//! E9: Corollary 2.4 — a randomized incremental algorithm with separating
//! dependences has `≤ 2 n ln n` expected dependences. Dependences are
//! *comparisons* for BST sorting and *visits* for LE-lists; we measure
//! both against the bound across sizes.
//!
//! `cargo run -p ri-bench --release --bin dependence_counts [seeds]`

use ri_bench::{mean, sizes};
use ri_core::engine::{Problem, RunConfig};
use ri_pram::random_permutation;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("Corollary 2.4: dependence counts vs 2 n ln n ({trials} seeds)\n");
    let header = format!(
        "{:>9} {:>14} {:>9} {:>14} {:>9} {:>14}",
        "n", "sort comps", "/2nlnn", "le visits", "/2nlnn", "2nlnn"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let seq_cfg = RunConfig::new().sequential().instrument(false);
    for n in sizes(10, 16) {
        let bound = 2.0 * n as f64 * (n as f64).ln();
        let mut comps = Vec::new();
        let mut visits = Vec::new();
        for seed in 0..trials {
            let keys = random_permutation(n, seed);
            let (sorted, _) = ri_sort::SortProblem::new(&keys).solve(&seq_cfg);
            comps.push(sorted.comparisons as f64);

            if n <= 1 << 14 {
                let g = ri_graph::generators::gnm_weighted(n, 8 * n, seed, true);
                let order = random_permutation(n, seed ^ 3);
                let (lists, _) = ri_le_lists::LeListsProblem::new(&g)
                    .with_order(order)
                    .solve(&seq_cfg);
                visits.push(lists.visits as f64);
            }
        }
        println!(
            "{:>9} {:>14.0} {:>9.3} {:>14.0} {:>9.3} {:>14.0}",
            n,
            mean(&comps),
            mean(&comps) / bound,
            mean(&visits),
            if visits.is_empty() {
                f64::NAN
            } else {
                mean(&visits) / bound
            },
            bound,
        );
    }

    println!(
        "\nShape checks: both ratios stay below 1 and converge (sort comparisons\n\
         approach the bound from below — the expectation is 2(n+1)H_n − 4n ≈\n\
         2 n ln n; LE-list visits equal total list entries ≈ n·H_n = n ln n,\n\
         half the bound, since each visit is one dependence endpoint)."
    );
}
