//! E7: LE-list lengths and Type 3 work — Cohen's `O(log n)` whp list
//! length (avg exactly `H_n` on strongly-reachable weighted graphs) and
//! Theorem 6.2's `O(W_SP log n)` work with constant-factor parallel
//! overhead.
//!
//! `cargo run -p ri-bench --release --bin lelist_lengths [seeds]`

use ri_bench::{mean, sizes};
use ri_core::engine::{Problem, RunConfig};
use ri_core::harmonic;
use ri_le_lists::LeListsProblem;
use ri_pram::random_permutation;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("LE-list lengths and work ({trials} seeds per config)\n");
    let header = format!(
        "{:<14} {:>9} {:>9} {:>7} {:>7} {:>12} {:>10} {:>8}",
        "graph", "n", "avg len", "H_n", "max", "par visits", "seq visits", "ratio"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let seq_cfg = RunConfig::new().sequential().instrument(false);
    let par_cfg = RunConfig::new().parallel().instrument(false);
    for n in sizes(11, 14) {
        let hn = harmonic(n);
        for (name, degree) in [("gnm-w deg4", 4usize), ("gnm-w deg16", 16)] {
            let mut avg_len = Vec::new();
            let mut max_len = Vec::new();
            let mut pv = Vec::new();
            let mut sv = Vec::new();
            for seed in 0..trials {
                let g = ri_graph::generators::gnm_weighted(n, degree * n, seed, true);
                let order = random_permutation(n, seed ^ 0x1e);
                let problem = LeListsProblem::new(&g).with_order(order);
                let (seq, _) = problem.solve(&seq_cfg);
                let (par, _) = problem.solve(&par_cfg);
                assert_eq!(seq.lists, par.lists, "parallel must equal sequential");
                avg_len.push(par.total_entries() as f64 / n as f64);
                max_len.push(par.max_list_len() as f64);
                pv.push(par.visits as f64);
                sv.push(seq.visits as f64);
            }
            println!(
                "{:<14} {:>9} {:>9.2} {:>7.2} {:>7.0} {:>12.0} {:>10.0} {:>8.2}",
                name,
                n,
                mean(&avg_len),
                hn,
                ri_bench::fmax(&max_len),
                mean(&pv),
                mean(&sv),
                mean(&pv) / mean(&sv),
            );
        }
        // High-diameter grid (unweighted): lists truncate at diameter.
        {
            let side = (n as f64).sqrt() as usize;
            let g = ri_graph::generators::grid2d(side);
            let nn = g.num_vertices();
            let order = random_permutation(nn, 5);
            let problem = LeListsProblem::new(&g).with_order(order);
            let (seq, _) = problem.solve(&seq_cfg);
            let (par, _) = problem.solve(&par_cfg);
            assert_eq!(seq.lists, par.lists);
            println!(
                "{:<14} {:>9} {:>9.2} {:>7.2} {:>7} {:>12} {:>10} {:>8.2}",
                "grid (unw.)",
                nn,
                par.total_entries() as f64 / nn as f64,
                harmonic(nn),
                par.max_list_len(),
                par.visits,
                seq.visits,
                par.visits as f64 / seq.visits.max(1) as f64,
            );
        }
    }

    println!(
        "\nShape checks: weighted graphs track H_n exactly (avg) with an O(log n)\n\
         max; the parallel/sequential visit ratio is a small constant — the\n\
         Type 3 'extra work' of Theorem 2.6. Unweighted grids truncate lists\n\
         by integer distance ties (the paper assumes distinct distances)."
    );
}
