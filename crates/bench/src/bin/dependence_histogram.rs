//! E10: Lemma 2.5 — in a Type 3 round execution, the probability that `l`
//! iterations of one round have a left dependence to a given later
//! iteration is at most `2^{-l}`. The batched BST sort instruments exactly
//! this histogram; we print measured frequencies against the geometric
//! bound.
//!
//! `cargo run -p ri-bench --release --bin dependence_histogram [log2_n]`

use ri_core::engine::{Problem, RunConfig};
use ri_pram::random_permutation;
use ri_sort::BatchSortProblem;

fn main() {
    let log2n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let n = 1usize << log2n;
    let seeds = 5u64;

    let par = RunConfig::new().parallel().instrument(false);
    let mut hist: Vec<u64> = Vec::new();
    for seed in 0..seeds {
        let keys = random_permutation(n, seed);
        let (out, _) = BatchSortProblem::new(&keys).solve(&par);
        for (l, &c) in out.left_dep_histogram.iter().enumerate() {
            if hist.len() <= l {
                hist.resize(l + 1, 0);
            }
            hist[l] += c;
        }
    }
    let total: u64 = hist.iter().sum();

    println!(
        "Lemma 2.5: left dependences from one round to one iteration\n\
         (batched BST sort, n = 2^{log2n}, {seeds} seeds, {total} samples)\n"
    );
    let header = format!(
        "{:>4} {:>14} {:>12} {:>12} {:>10}",
        "l", "count", "P[≥ l]", "2^-l bound", "ratio"
    );
    println!("{header}");
    ri_bench::rule(&header);

    // The lemma bounds the tail P[l deps] ≤ 2^{-l}; report survival
    // probabilities, which make the geometric decay obvious.
    let mut tail = total;
    for (l, &c) in hist.iter().enumerate() {
        let p_ge = tail as f64 / total as f64;
        let bound = 2f64.powi(-(l as i32));
        println!(
            "{:>4} {:>14} {:>12.3e} {:>12.3e} {:>10.3}",
            l,
            c,
            p_ge,
            bound,
            p_ge / bound
        );
        tail -= c;
        if tail == 0 {
            break;
        }
    }

    println!(
        "\nShape check: the measured survival probability P[≥ l] stays below\n\
         the 2^{{-l}} bound for every l ≥ 1 (ratio < 1), with at least\n\
         geometric decay — Lemma 2.5's claim. (l = 0 rows dominate: most\n\
         (iteration, round) pairs contribute no dependence at all.)"
    );
}
