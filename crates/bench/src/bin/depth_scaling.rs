//! E1/E2/E14: dependence-depth growth across n — the empirical content of
//! Lemma 3.1 (BST sort), Theorem 4.3 (Delaunay), and the §3 remark that
//! parallel-sort rounds equal the final tree height.
//!
//! The theorems predict depth Θ(log n): the `depth / log₂ n` column should
//! approach a constant.
//!
//! `cargo run -p ri-bench --release --bin depth_scaling [seeds]`

use ri_bench::{mean, sizes};
use ri_core::engine::{Problem, RunConfig};
use ri_geometry::{point_workload, PointDistribution};
use ri_pram::random_permutation;

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("Dependence depth scaling ({trials} seeds per size)\n");
    let header = format!(
        "{:>9} {:>12} {:>10} {:>14} {:>10} {:>13} {:>11}",
        "n", "sort depth", "/log2 n", "sort==rounds", "dt rounds", "dt /log2 n", "batch rnds"
    );
    println!("{header}");
    ri_bench::rule(&header);

    let par = RunConfig::new().parallel().instrument(false);
    for n in sizes(10, 16) {
        let log2n = (n as f64).log2();
        let mut sort_depths = Vec::new();
        let mut dt_rounds = Vec::new();
        let mut batch_rounds = Vec::new();
        let mut rounds_equal_height = true;
        for seed in 0..trials {
            let keys = random_permutation(n, seed);
            let (out, report) = ri_sort::SortProblem::new(&keys).solve(&par);
            rounds_equal_height &= report.depth == out.tree.dependence_depth();
            sort_depths.push(report.depth as f64);
            let (_, batch_report) = ri_sort::BatchSortProblem::new(&keys).solve(&par);
            batch_rounds.push(batch_report.depth as f64);

            // Delaunay is costlier: sample fewer sizes at the top end.
            if n <= 1 << 14 {
                let pts = point_workload(n, seed, PointDistribution::UniformSquare);
                let (_, dt_report) = ri_delaunay::DelaunayProblem::new(&pts).solve(&par);
                dt_rounds.push(dt_report.depth as f64);
            }
        }
        let sd = mean(&sort_depths);
        let dr = mean(&dt_rounds);
        println!(
            "{:>9} {:>12.1} {:>10.2} {:>14} {:>10.1} {:>13.2} {:>11.1}",
            n,
            sd,
            sd / log2n,
            if rounds_equal_height { "yes" } else { "NO" },
            dr,
            if dt_rounds.is_empty() {
                f64::NAN
            } else {
                dr / log2n
            },
            mean(&batch_rounds),
        );
    }

    println!(
        "\nExpected shapes: sort depth/log₂n → c*·ln2 ≈ 2.99 (random-BST height\n\
         constant c* ≈ 4.311 per ln n, approached slowly from below; Lemma 3.1\n\
         bounds it by σ·H_n); Delaunay rounds/log₂n → constant (Theorem 4.3);\n\
         batch (Type 3) rounds = ⌈log₂ n⌉ + 1 exactly."
    );
}
