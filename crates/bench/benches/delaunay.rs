//! Table 1 row 2 — Delaunay triangulation: Algorithm 4 (sequential
//! conflict sets) vs Algorithm 5 (parallel active faces), across two
//! distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

use ri_geometry::point_workload;
use ri_geometry::PointDistribution;

fn bench_delaunay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delaunay");
    group.sample_size(10);
    for &n in &[1usize << 12, 1 << 14] {
        for dist in [
            PointDistribution::UniformSquare,
            PointDistribution::Clusters(8),
        ] {
            let pts = point_workload(n, 3, dist);
            let tag = format!("{}/{}", dist.name(), n);
            group.bench_with_input(BenchmarkId::new("sequential", &tag), &pts, |b, p| {
                b.iter(|| ri_delaunay::DelaunayProblem::new(p).solve(&seq_cfg()))
            });
            group.bench_with_input(BenchmarkId::new("parallel", &tag), &pts, |b, p| {
                b.iter(|| ri_delaunay::DelaunayProblem::new(p).solve(&par_cfg()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delaunay);
criterion_main!(benches);
