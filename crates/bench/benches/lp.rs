//! Table 1 row 3 — 2-D linear programming: Seidel sequential vs the Type 2
//! prefix-doubling parallel executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(20);
    for &n in &[1usize << 14, 1 << 18] {
        let inst = ri_lp::workloads::tangent_instance(n, 2);
        group.bench_with_input(BenchmarkId::new("sequential", n), &inst, |b, i| {
            b.iter(|| ri_lp::LpProblem::new(i).solve(&seq_cfg()))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &inst, |b, i| {
            b.iter(|| ri_lp::LpProblem::new(i).solve(&par_cfg()))
        });
        // Harder instance: the optimum moves many times early on.
        let shrink = ri_lp::workloads::shrinking_instance(n, 2);
        group.bench_with_input(
            BenchmarkId::new("parallel_shrinking", n),
            &shrink,
            |b, i| b.iter(|| ri_lp::LpProblem::new(i).solve(&par_cfg())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
