//! Table 1 row 1 — comparison sorting: sequential vs priority-write
//! parallel vs Type 3 batch BST insertion, with `std` sorts as the
//! conventional baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

use ri_pram::{
    knuth_shuffle_parallel, knuth_shuffle_sequential, knuth_targets, random_permutation,
};

/// The random-permutation substrate itself ([66]'s parallel Knuth
/// shuffle) — the ancestor of the paper's framework.
fn bench_knuth(c: &mut Criterion) {
    let mut group = c.benchmark_group("knuth_shuffle");
    group.sample_size(10);
    for &n in &[1usize << 16, 1 << 19] {
        let h = knuth_targets(n, 1);
        group.bench_with_input(BenchmarkId::new("sequential", n), &h, |b, h| {
            b.iter(|| knuth_shuffle_sequential(h))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &h, |b, h| {
            b.iter(|| knuth_shuffle_parallel(h))
        });
    }
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    for &n in &[1usize << 14, 1 << 17] {
        let keys = random_permutation(n, 1);
        group.bench_with_input(BenchmarkId::new("sequential_bst", n), &keys, |b, k| {
            b.iter(|| ri_sort::SortProblem::new(k).solve(&seq_cfg()))
        });
        group.bench_with_input(BenchmarkId::new("parallel_bst", n), &keys, |b, k| {
            b.iter(|| ri_sort::SortProblem::new(k).solve(&par_cfg()))
        });
        group.bench_with_input(BenchmarkId::new("batch_bst", n), &keys, |b, k| {
            b.iter(|| ri_sort::BatchSortProblem::new(k).solve(&par_cfg()))
        });
        group.bench_with_input(BenchmarkId::new("std_sort_baseline", n), &keys, |b, k| {
            b.iter(|| {
                let mut v = k.clone();
                v.sort_unstable();
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort, bench_knuth);
criterion_main!(benches);
