//! Table 1 row 7 — SCC: Tarjan baseline vs Algorithm 7 (sequential
//! incremental) vs the Type 3 parallel rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

use ri_pram::random_permutation;

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc");
    group.sample_size(10);
    for &n in &[1usize << 13, 1 << 15] {
        for (name, g) in [
            ("gnm", ri_graph::generators::gnm(n, 4 * n, 1, false)),
            ("dag", ri_graph::generators::random_dag(n, 4 * n, 1)),
        ] {
            let order = random_permutation(n, 2);
            let tag = format!("{name}/{n}");
            group.bench_with_input(BenchmarkId::new("tarjan", &tag), &g, |b, g| {
                b.iter(|| ri_scc::tarjan_scc(g))
            });
            group.bench_with_input(
                BenchmarkId::new("incremental_seq", &tag),
                &(&g, &order),
                |b, (g, o)| {
                    let problem = ri_scc::SccProblem::new(g).with_order(o.to_vec());
                    b.iter(|| problem.solve(&seq_cfg()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new("parallel", &tag),
                &(&g, &order),
                |b, (g, o)| {
                    let problem = ri_scc::SccProblem::new(g).with_order(o.to_vec());
                    b.iter(|| problem.solve(&par_cfg()))
                },
            );
            // Ablation: eager partition refinement (default) vs the
            // deterministic sequential-faithful combine of §6.2.
            group.bench_with_input(
                BenchmarkId::new("parallel_deterministic", &tag),
                &(&g, &order),
                |b, (g, o)| b.iter(|| ri_scc::scc_parallel_deterministic(g, o)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scc);
criterion_main!(benches);
