//! Table 1 row 4 — closest pair: sequential grid sieve vs Type 2 parallel,
//! uniform and clustered inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

use ri_geometry::point_workload;
use ri_geometry::PointDistribution;

fn bench_closest_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("closest_pair");
    group.sample_size(10);
    for &n in &[1usize << 14, 1 << 17] {
        for dist in [
            PointDistribution::UniformSquare,
            PointDistribution::Clusters(8),
        ] {
            let pts = point_workload(n, 5, dist);
            let tag = format!("{}/{}", dist.name(), n);
            group.bench_with_input(BenchmarkId::new("sequential", &tag), &pts, |b, p| {
                b.iter(|| ri_closest_pair::ClosestPairProblem::new(p).solve(&seq_cfg()))
            });
            group.bench_with_input(BenchmarkId::new("parallel", &tag), &pts, |b, p| {
                b.iter(|| ri_closest_pair::ClosestPairProblem::new(p).solve(&par_cfg()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_closest_pair);
criterion_main!(benches);
