//! Table 1 row 6 — LE-lists: Algorithm 6 vs the Type 3 parallel rounds,
//! weighted uniform graphs and high-diameter grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

use ri_pram::random_permutation;

fn bench_le_lists(c: &mut Criterion) {
    let mut group = c.benchmark_group("le_lists");
    group.sample_size(10);
    for &n in &[1usize << 11, 1 << 13] {
        let g = ri_graph::generators::gnm_weighted(n, 8 * n, 1, true);
        let order = random_permutation(n, 2);
        group.bench_with_input(
            BenchmarkId::new("sequential", n),
            &(&g, &order),
            |b, (g, o)| {
                let problem = ri_le_lists::LeListsProblem::new(g).with_order(o.to_vec());
                b.iter(|| problem.solve(&seq_cfg()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", n),
            &(&g, &order),
            |b, (g, o)| {
                let problem = ri_le_lists::LeListsProblem::new(g).with_order(o.to_vec());
                b.iter(|| problem.solve(&par_cfg()))
            },
        );
    }
    // High-diameter stress: grid graph.
    let g = ri_graph::generators::grid2d(64);
    let order = random_permutation(g.num_vertices(), 3);
    group.bench_with_input(
        BenchmarkId::new("parallel_grid", g.num_vertices()),
        &(&g, &order),
        |b, (g, o)| {
            let problem = ri_le_lists::LeListsProblem::new(g).with_order(o.to_vec());
            b.iter(|| problem.solve(&par_cfg()))
        },
    );
    group.finish();
}

criterion_group!(benches, bench_le_lists);
criterion_main!(benches);
