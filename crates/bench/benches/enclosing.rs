//! Table 1 row 5 — smallest enclosing disk: Welzl sequential vs Type 2
//! parallel; the near-circle distribution is the adversarial case (many
//! boundary updates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ri_core::engine::{Problem, RunConfig};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

use ri_geometry::point_workload;
use ri_geometry::PointDistribution;

fn bench_enclosing(c: &mut Criterion) {
    let mut group = c.benchmark_group("enclosing");
    group.sample_size(10);
    for &n in &[1usize << 14, 1 << 17] {
        for dist in [
            PointDistribution::UniformDisk,
            PointDistribution::NearCircle,
        ] {
            let pts = point_workload(n, 4, dist);
            let tag = format!("{}/{}", dist.name(), n);
            group.bench_with_input(BenchmarkId::new("sequential", &tag), &pts, |b, p| {
                b.iter(|| ri_enclosing::EnclosingProblem::new(p).solve(&seq_cfg()))
            });
            group.bench_with_input(BenchmarkId::new("parallel", &tag), &pts, |b, p| {
                b.iter(|| ri_enclosing::EnclosingProblem::new(p).solve(&par_cfg()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_enclosing);
criterion_main!(benches);
