//! Streaming through the router, end to end: sticky routing by session
//! id, close-and-replay migration when a shard dies or drains with
//! sessions open, per-batch witnessing with bit-identical replay, and
//! retryable failure when no shard can take a session.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use parallel_ri::registry;
use ri_core::engine::json::{self, Value};
use ri_core::engine::session::BatchDelta;
use ri_core::engine::witness::{read_any_log, replay_stream, LogEntry, StreamBatchRecord};
use ri_router::{BackendSpec, BackendTarget, Router, RouterConfig};
use ri_serve::http::ClientConn;
use ri_serve::{ServeConfig, Server};

const POOL_WIDTH: usize = 2;

fn start_backend() -> Server {
    let cfg = ServeConfig {
        threads: POOL_WIDTH,
        executors: 2,
        ..ServeConfig::default()
    };
    Server::start(registry(), cfg).expect("backend starts")
}

fn attach_spec(shard_id: &str, addr: SocketAddr) -> BackendSpec {
    BackendSpec {
        shard_id: shard_id.into(),
        target: BackendTarget::Attach(addr),
    }
}

fn temp_witness(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("ri-stream-e2e-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn open_body(n: usize, wseed: u64, session_id: &str) -> String {
    format!(
        "{{\"problem\":\"sort\",\"workload\":{{\"n\":{n},\"seed\":{wseed}}},\
         \"config\":{{\"seed\":5,\"mode\":\"parallel\"}},\"session_id\":\"{session_id}\"}}"
    )
}

fn parse(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("unparseable body `{body}`: {e}"))
}

/// Streams survive a shard kill: every session keeps answering (the ones
/// pinned to the dead shard migrate via close-and-replay), the delta
/// sequence matches a single-shard reference bit for bit, and the
/// witness log replays every batch — including the ones served across
/// the migration — in a fresh process.
#[test]
fn sticky_streams_survive_a_shard_kill_and_replay() {
    let b0 = start_backend();
    let b1 = start_backend();
    let witness = temp_witness("kill");
    let router = Router::start(
        RouterConfig {
            witness_path: Some(witness.clone()),
            health_interval_ms: 100,
            max_attempts: 2,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", b0.local_addr()),
            attach_spec("s1", b1.local_addr()),
        ],
    )
    .expect("router starts");

    const SESSIONS: usize = 8;
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));
    let mut homes = Vec::new();
    for i in 0..SESSIONS {
        let body = open_body(24, i as u64, &format!("sess-{i}"));
        let resp = conn
            .request("POST", "/stream", Some(&body))
            .expect("open transports");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let shard = resp.header("x-ri-shard").expect("shard header").to_string();
        homes.push(shard);
    }
    assert!(
        homes.iter().any(|s| s == "s0") && homes.iter().any(|s| s == "s1"),
        "the ring should spread {SESSIONS} sessions over both shards: {homes:?}"
    );

    // Batch 0 everywhere: sticky — each batch lands on its open shard.
    let mut deltas: Vec<Vec<BatchDelta>> = vec![Vec::new(); SESSIONS];
    for (i, home) in homes.iter().enumerate() {
        let resp = conn
            .request(
                "POST",
                &format!("/stream/sess-{i}/batch"),
                Some("{\"count\":8}"),
            )
            .expect("batch transports");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.header("x-ri-shard"), Some(home.as_str()), "sticky");
        deltas[i].push(BatchDelta::from_value(&parse(&resp.body)).unwrap());
    }

    // Kill s1 with its sessions open, then keep feeding every session.
    b1.shutdown();
    for round in 1..3 {
        for (i, delta_log) in deltas.iter_mut().enumerate() {
            let resp = conn
                .request(
                    "POST",
                    &format!("/stream/sess-{i}/batch"),
                    Some("{\"count\":8}"),
                )
                .expect("batch transports");
            assert_eq!(resp.status, 200, "session {i} round {round}: {}", resp.body);
            assert_eq!(
                resp.header("x-ri-shard"),
                Some("s0"),
                "everything lands on the survivor"
            );
            let delta = BatchDelta::from_value(&parse(&resp.body)).unwrap();
            assert_eq!(delta.batch, round, "the sequence continues unbroken");
            delta_log.push(delta);
        }
    }
    assert!(deltas.iter().all(|d| d.last().unwrap().complete));

    let health = parse(&conn.request("GET", "/healthz", None).expect("healthz").body);
    let sessions = health.get("sessions").expect("sessions in healthz");
    assert_eq!(
        sessions.get("open").and_then(Value::as_f64),
        Some(SESSIONS as f64)
    );
    let migrated = sessions.get("migrated").and_then(Value::as_f64).unwrap();
    let on_s1 = homes.iter().filter(|s| *s == "s1").count();
    assert_eq!(
        migrated, on_s1 as f64,
        "every s1 session migrated exactly once"
    );
    assert_eq!(
        sessions.get("stream_batches").and_then(Value::as_f64),
        Some((SESSIONS * 3) as f64),
        "migration re-feeds are not client-served batches"
    );

    // The migrated delta sequences equal a single-shard reference run.
    let reference = start_backend();
    let mut ref_conn = ClientConn::new(reference.local_addr(), Duration::from_secs(120));
    for (i, session_deltas) in deltas.iter().enumerate() {
        let body = open_body(24, i as u64, &format!("sess-{i}"));
        assert_eq!(
            ref_conn
                .request("POST", "/stream", Some(&body))
                .unwrap()
                .status,
            200
        );
        for want in session_deltas {
            let resp = ref_conn
                .request(
                    "POST",
                    &format!("/stream/sess-{i}/batch"),
                    Some("{\"count\":8}"),
                )
                .unwrap();
            let got = BatchDelta::from_value(&parse(&resp.body)).unwrap();
            assert_eq!(&got, want, "session {i} batch {} diverged", want.batch);
        }
    }
    reference.shutdown();

    // Close everything; the router drops its pins.
    for i in 0..SESSIONS {
        let resp = conn
            .request("DELETE", &format!("/stream/sess-{i}"), None)
            .expect("close transports");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let health = parse(&conn.request("GET", "/healthz", None).unwrap().body);
    assert_eq!(
        health
            .get("sessions")
            .and_then(|s| s.get("open"))
            .and_then(Value::as_f64),
        Some(0.0)
    );

    router.shutdown();
    b0.shutdown();

    // The witness gate: 3 records per session, contiguous, and the whole
    // streamed log replays bit-identically in this fresh process.
    let entries = read_any_log(&witness).expect("witness log loads");
    let mut by_session: Vec<(String, Vec<StreamBatchRecord>)> = Vec::new();
    for entry in entries {
        let LogEntry::Stream(record) = entry else {
            panic!("no /solve ran; the log should be all stream batches");
        };
        match by_session.iter_mut().find(|(id, _)| *id == record.session) {
            Some((_, records)) => records.push(record),
            None => by_session.push((record.session.clone(), vec![record])),
        }
    }
    assert_eq!(by_session.len(), SESSIONS);
    let reg = registry();
    for (id, records) in &by_session {
        assert_eq!(records.len(), 3, "{id}");
        replay_stream(&reg, records)
            .unwrap_or_else(|e| panic!("stream replay diverged for {id}: {e}"));
    }
    let _ = std::fs::remove_file(&witness);
}

/// Draining a shard migrates its open sessions before the shard
/// detaches: the next batch is served by a survivor with the sequence
/// intact, no client action needed.
#[test]
fn drain_migrates_open_sessions_before_detach() {
    let b0 = start_backend();
    let b1 = start_backend();
    let router = Router::start(
        RouterConfig {
            health_interval_ms: 100,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", b0.local_addr()),
            attach_spec("s1", b1.local_addr()),
        ],
    )
    .expect("router starts");

    // Probe ids until one session pins to s1 (the ring is deterministic,
    // so this is a fixed, small number of probes).
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));
    let mut on_s1 = None;
    for i in 0..32 {
        let id = format!("drain-{i}");
        let resp = conn
            .request("POST", "/stream", Some(&open_body(18, i, &id)))
            .expect("open transports");
        assert_eq!(resp.status, 200, "{}", resp.body);
        if resp.header("x-ri-shard") == Some("s1") {
            on_s1 = Some(id);
            break;
        }
        assert_eq!(
            conn.request("DELETE", &format!("/stream/{id}"), None)
                .unwrap()
                .status,
            200
        );
    }
    let id = on_s1.expect("some session id hashes to s1");
    let resp = conn
        .request(
            "POST",
            &format!("/stream/{id}/batch"),
            Some("{\"count\":6}"),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let resp = conn
        .request("POST", "/admin/drain", Some("{\"shard_id\":\"s1\"}"))
        .expect("drain request");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let t0 = Instant::now();
    loop {
        let health = parse(&conn.request("GET", "/healthz", None).unwrap().body);
        let state = health
            .get("shards")
            .and_then(Value::as_arr)
            .and_then(|shards| {
                shards
                    .iter()
                    .find(|s| s.get("shard_id").and_then(Value::as_str) == Some("s1"))
            })
            .and_then(|s| s.get("state"))
            .and_then(Value::as_str)
            .map(str::to_string);
        if state.as_deref() == Some("detached") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "s1 stuck: {state:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The session moved with the drain: batch 1 answers from s0.
    let resp = conn
        .request(
            "POST",
            &format!("/stream/{id}/batch"),
            Some("{\"count\":6}"),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-ri-shard"), Some("s0"));
    let delta = BatchDelta::from_value(&parse(&resp.body)).unwrap();
    assert_eq!(delta.batch, 1);

    let health = parse(&conn.request("GET", "/healthz", None).unwrap().body);
    assert!(
        health
            .get("sessions")
            .and_then(|s| s.get("migrated"))
            .and_then(Value::as_f64)
            .unwrap()
            >= 1.0
    );
    router.shutdown();
    b0.shutdown();
    b1.shutdown();
}

/// With a single shard there is nowhere to migrate: losing it turns
/// batches into retryable 503s (the client's recorded batches are safe
/// to re-drive elsewhere), while unknown sessions and bad methods keep
/// their structured 404/405 shapes.
#[test]
fn single_shard_loss_is_retryable_and_errors_are_structured() {
    let b0 = start_backend();
    let router = Router::start(
        RouterConfig {
            health_interval_ms: 100,
            ..RouterConfig::default()
        },
        vec![attach_spec("s0", b0.local_addr())],
    )
    .expect("router starts");

    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));
    // No client id: the router assigns `rs-<seq>`.
    let resp = conn
        .request(
            "POST",
            "/stream",
            Some("{\"problem\":\"sort\",\"workload\":{\"n\":12,\"seed\":3}}"),
        )
        .expect("open transports");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let opened = parse(&resp.body);
    let id = opened.get("session").unwrap().as_str().unwrap().to_string();
    assert!(id.starts_with("rs-"), "router-assigned id, got `{id}`");

    // Structured edges while the shard is still alive.
    let info = conn.request("GET", &format!("/stream/{id}"), None).unwrap();
    assert_eq!(info.status, 200, "{}", info.body);
    assert_eq!(
        conn.request("GET", "/stream/absent", None).unwrap().status,
        404
    );
    assert_eq!(
        conn.request("PUT", &format!("/stream/{id}"), None)
            .unwrap()
            .status,
        405
    );
    let resp = conn
        .request(
            "POST",
            &format!("/stream/{id}/batch"),
            Some("{\"count\":4}"),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    b0.shutdown();
    let resp = conn
        .request(
            "POST",
            &format!("/stream/{id}/batch"),
            Some("{\"count\":4}"),
        )
        .expect("batch transports to the router");
    assert_eq!(resp.status, 503, "{}", resp.body);
    let err = parse(&resp.body);
    assert_eq!(
        err.get("error").unwrap().get("retryable"),
        Some(&Value::Bool(true)),
        "{}",
        resp.body
    );
    router.shutdown();
}
