//! Chaos soak: the serving tier under deterministic fault injection.
//!
//! Every fault class from [`ri_core::engine::faults`] is driven through
//! a routed fleet — injected latency, stalled reads, connections dropped
//! mid-response, spurious retryable 503s, a shard crash — asserting the
//! robustness contract end to end: zero lost requests, zero broken
//! streaming sessions, every error envelope structured and correctly
//! marked retryable, the witness log replaying bit-identically, circuit
//! breakers shedding a failing shard and re-admitting it via a half-open
//! probe, and deadline budgets answering a structured 504 instead of
//! burning a full timeout per attempt.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use parallel_ri::registry;
use ri_core::engine::faults::DEADLINE_HEADER;
use ri_core::engine::json::{self, Value};
use ri_core::engine::session::BatchDelta;
use ri_core::engine::witness::{read_any_log, replay, replay_stream, LogEntry, StreamBatchRecord};
use ri_core::engine::{RunConfig, ServeRequest, ServeResponse, WorkloadSpec};
use ri_router::{BackendSpec, BackendTarget, Router, RouterConfig};
use ri_serve::http::ClientConn;
use ri_serve::{ServeConfig, Server};

fn start_backend() -> Server {
    let cfg = ServeConfig {
        threads: 2,
        executors: 2,
        ..ServeConfig::default()
    };
    Server::start(registry(), cfg).expect("backend starts")
}

fn attach_spec(shard_id: &str, addr: SocketAddr) -> BackendSpec {
    BackendSpec {
        shard_id: shard_id.into(),
        target: BackendTarget::Attach(addr),
    }
}

fn temp_witness(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("ri-chaos-soak-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn solve_body(problem: &str, n: usize, wseed: u64) -> String {
    let mut request = ServeRequest::new(problem);
    request.workload = WorkloadSpec::new(n, wseed);
    request.config = RunConfig::new().seed(7).parallel();
    request.to_json()
}

fn parse(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("unparseable body `{body}`: {e}"))
}

/// Install (or clear, with `"off"`) a chaos plan over HTTP — the same
/// path an operator or `loadgen --chaos` uses.
fn post_chaos(addr: SocketAddr, spec: &str) {
    let body = Value::Obj(vec![("spec".into(), Value::Str(spec.into()))]).write();
    let resp = ri_serve::http::request(
        addr,
        "POST",
        "/admin/chaos",
        Some(&body),
        Duration::from_secs(10),
    )
    .expect("chaos install transports");
    assert_eq!(resp.status, 200, "installing `{spec}`: {}", resp.body);
}

/// Every non-200 along the way must be a structured envelope that is
/// honest about retryability: 503/504 carry `retryable: true`.
fn assert_structured_retryable(resp_status: u16, body: &str, context: &str) {
    let err = parse(body);
    let envelope = err
        .get("error")
        .unwrap_or_else(|| panic!("{context}: status {resp_status} without envelope: {body}"));
    assert!(
        envelope.get("kind").and_then(Value::as_str).is_some(),
        "{context}: envelope lacks a kind: {body}"
    );
    if resp_status == 503 || resp_status == 504 {
        assert_eq!(
            envelope.get("retryable"),
            Some(&Value::Bool(true)),
            "{context}: {resp_status} must be marked retryable: {body}"
        );
    }
}

/// Send until a 200 lands, allowing retryable-envelope re-sends (what a
/// well-behaved client does) — a request is *lost* only if it exhausts
/// this loop or hits a non-retryable error.
fn solve_until_ok(conn: &mut ClientConn, body: &str, context: &str) -> (String, f64) {
    let t0 = Instant::now();
    for _ in 0..12 {
        match conn.request("POST", "/solve", Some(body)) {
            Ok(resp) if resp.status == 200 => {
                return (resp.body, t0.elapsed().as_secs_f64() * 1000.0)
            }
            Ok(resp) => {
                assert_structured_retryable(resp.status, &resp.body, context);
                std::thread::sleep(Duration::from_millis(10));
            }
            // The router itself never drops a client connection; treat a
            // transport blip as retryable too (solves are idempotent).
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("{context}: request lost — no 200 within the retry budget");
}

/// Feed one batch until it lands, retrying only on retryable envelopes
/// (batches are not idempotent; the router owns transport recovery via
/// close-and-replay migration).
fn batch_until_ok(conn: &mut ClientConn, session: &str, count: usize, context: &str) -> BatchDelta {
    let path = format!("/stream/{session}/batch");
    let body = format!("{{\"count\":{count}}}");
    for _ in 0..12 {
        let resp = conn
            .request("POST", &path, Some(&body))
            .unwrap_or_else(|e| panic!("{context}: batch transport through the router: {e}"));
        if resp.status == 200 {
            return BatchDelta::from_value(&parse(&resp.body))
                .unwrap_or_else(|e| panic!("{context}: bad delta: {e}"));
        }
        assert_structured_retryable(resp.status, &resp.body, context);
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("{context}: batch lost — no 200 within the retry budget");
}

fn healthz(router: &Router) -> Value {
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));
    let resp = conn.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    parse(&resp.body)
}

fn shard_member<'h>(health: &'h Value, shard_id: &str) -> &'h Value {
    health
        .get("shards")
        .and_then(Value::as_arr)
        .and_then(|shards| {
            shards
                .iter()
                .find(|s| s.get("shard_id").and_then(Value::as_str) == Some(shard_id))
        })
        .unwrap_or_else(|| panic!("shard {shard_id} missing: {}", health.write()))
}

fn breaker_field(health: &Value, shard_id: &str, field: &str) -> Value {
    shard_member(health, shard_id)
        .get("breaker")
        .and_then(|b| b.get(field))
        .cloned()
        .unwrap_or_else(|| {
            panic!(
                "shard {shard_id} breaker.{field} missing: {}",
                health.write()
            )
        })
}

/// (a) Serve-tier determinism gate: the same chaos spec against the same
/// request sequence injects the identical fault schedule — same
/// per-request statuses, same injection counters — and an injected 503
/// is a structured, retryable envelope.
#[test]
fn same_seed_yields_the_same_fault_schedule_end_to_end() {
    let server = start_backend();
    let addr = server.local_addr();
    const SPEC: &str = "seed=11,latency=0.35:10,error=0.35";
    const REQUESTS: usize = 24;

    let run = || -> (Vec<u16>, String) {
        post_chaos(addr, SPEC); // installing resets the schedule index
        let mut conn = ClientConn::new(addr, Duration::from_secs(120));
        let statuses: Vec<u16> = (0..REQUESTS)
            .map(|i| {
                let body = solve_body("sort", 32, i as u64);
                let resp = conn
                    .request("POST", "/solve", Some(&body))
                    .expect("solve transports (no drop faults in this spec)");
                if resp.status != 200 {
                    assert_eq!(resp.status, 503, "{}", resp.body);
                    assert_structured_retryable(resp.status, &resp.body, "injected 503");
                }
                resp.status
            })
            .collect();
        let counters = conn
            .request("GET", "/admin/chaos", None)
            .expect("chaos counters")
            .body;
        (statuses, counters)
    };

    let (statuses_a, counters_a) = run();
    let (statuses_b, counters_b) = run();
    assert_eq!(statuses_a, statuses_b, "same seed, same fault schedule");
    assert_eq!(counters_a, counters_b, "same injection counters");
    assert!(
        statuses_a.contains(&503) && statuses_a.contains(&200),
        "the schedule should mix faults and successes: {statuses_a:?}"
    );
    let counters = parse(&counters_a);
    assert_eq!(
        counters.get("index").and_then(Value::as_f64),
        Some(REQUESTS as f64)
    );
    assert!(counters.get("injected_error").and_then(Value::as_f64) > Some(0.0));

    // Clearing the plan restores a fault-free shard.
    post_chaos(addr, "off");
    let mut conn = ClientConn::new(addr, Duration::from_secs(120));
    let resp = conn
        .request("POST", "/solve", Some(&solve_body("sort", 32, 999)))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
}

/// (b) The soak itself: a 3-shard routed fleet driven through every
/// fault class — mixed solves and streaming sessions per phase — with
/// zero lost requests, unbroken session sequences (migration under
/// partial failure), and a witness log that replays bit-identically in
/// this fresh process afterwards.
#[test]
fn soak_every_fault_class_loses_nothing_and_replays() {
    let backends = [start_backend(), start_backend(), start_backend()];
    let witness = temp_witness("soak");
    let router = Router::start(
        RouterConfig {
            witness_path: Some(witness.clone()),
            health_interval_ms: 100,
            cache_capacity: 0, // every request really routes
            request_timeout_ms: 10_000,
            breaker_window: 8,
            breaker_min_failures: 4,
            breaker_open_ms: 200,
            backoff_base_ms: 5,
            backoff_cap_ms: 40,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", backends[0].local_addr()),
            attach_spec("s1", backends[1].local_addr()),
            attach_spec("s2", backends[2].local_addr()),
        ],
    )
    .expect("router starts");
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));

    // (phase name, spec, which shards it lands on: None = all).
    let phases: [(&str, &str, Option<usize>); 5] = [
        ("latency", "seed=1,latency=0.5:20", None),
        ("stall", "seed=2,stall=0.3:60", None),
        ("drop", "seed=3,drop=0.25", None),
        ("error", "seed=4,error=0.4", None),
        // One shard crashes mid-phase; the fleet absorbs it.
        ("crash", "seed=5,crash-after=4", Some(0)),
    ];
    const SOLVES_PER_PHASE: usize = 12;
    const SESSIONS_PER_PHASE: usize = 2;
    const BATCHES: usize = 3;
    let mut expected_solves = 0usize;
    let mut expected_batches: Vec<(String, usize)> = Vec::new();

    for (p, (name, spec, target)) in phases.iter().enumerate() {
        match target {
            Some(i) => post_chaos(backends[*i].local_addr(), spec),
            None => {
                for b in &backends {
                    post_chaos(b.local_addr(), spec);
                }
            }
        }

        // Streaming sessions opened under chaos, fed under chaos.
        let mut session_ids = Vec::new();
        for s in 0..SESSIONS_PER_PHASE {
            let id = format!("{name}-{s}");
            let capacity = BATCHES * 6;
            let body = format!(
                "{{\"problem\":\"sort\",\"workload\":{{\"n\":{capacity},\"seed\":{}}},\
                 \"config\":{{\"seed\":5,\"mode\":\"parallel\"}},\"session_id\":\"{id}\"}}",
                1000 + p * 10 + s
            );
            for attempt in 0..12 {
                match conn.request("POST", "/stream", Some(&body)) {
                    Ok(resp) if resp.status == 200 => break,
                    Ok(resp) => {
                        assert_structured_retryable(resp.status, &resp.body, &id);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
                assert!(attempt < 11, "{id}: open lost");
            }
            session_ids.push(id);
        }

        // Mixed burst: solves interleaved with session batches.
        for i in 0..SOLVES_PER_PHASE {
            let wseed = (p * 1000 + i) as u64;
            let body = solve_body("sort", 40, wseed);
            let context = format!("phase {name} solve {i}");
            let (resp_body, _) = solve_until_ok(&mut conn, &body, &context);
            let response = ServeResponse::from_json(&resp_body)
                .unwrap_or_else(|e| panic!("{context}: unparseable response: {e}"));
            assert_eq!(response.problem, "sort", "{context}");
            expected_solves += 1;
            if i % (SOLVES_PER_PHASE / BATCHES) == 1 {
                let round = i / (SOLVES_PER_PHASE / BATCHES);
                for id in &session_ids {
                    let delta =
                        batch_until_ok(&mut conn, id, 6, &format!("phase {name} session {id}"));
                    assert_eq!(
                        delta.batch, round,
                        "phase {name} session {id}: sequence must stay unbroken"
                    );
                }
            }
        }
        for id in session_ids {
            // Close with envelope retries; a close landing after a crash
            // still routes to the migrated home.
            for attempt in 0..12 {
                match conn.request("DELETE", &format!("/stream/{id}"), None) {
                    Ok(resp) if resp.status == 200 => break,
                    Ok(resp) => {
                        assert_structured_retryable(resp.status, &resp.body, &id);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
                assert!(attempt < 11, "{id}: close lost");
            }
            expected_batches.push((id, BATCHES));
        }

        // End the phase: clear chaos (a crashed shard only recovers
        // in-process — exactly a process restart's semantics) and wait
        // for the fleet to settle before the next fault class.
        for b in &backends {
            b.set_chaos("off").expect("chaos clears");
        }
        let t0 = Instant::now();
        loop {
            let health = healthz(&router);
            let all_healthy = ["s0", "s1", "s2"].iter().all(|s| {
                shard_member(&health, s)
                    .get("state")
                    .and_then(Value::as_str)
                    == Some("healthy")
            });
            if all_healthy {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "fleet stuck unhealthy after phase {name}: {}",
                health.write()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // The soak left a live, coherent cluster view behind.
    let health = healthz(&router);
    assert_eq!(
        health
            .get("sessions")
            .and_then(|s| s.get("open"))
            .and_then(Value::as_f64),
        Some(0.0),
        "every session closed"
    );
    assert!(
        health.get("robustness").is_some(),
        "robustness counters fold into healthz: {}",
        health.write()
    );

    router.shutdown();
    for b in backends {
        b.shutdown();
    }

    // The determinism gate: every witnessed solve and every witnessed
    // stream batch replays bit-identically in this fresh process.
    let entries = read_any_log(&witness).expect("witness log loads");
    let reg = registry();
    let mut solve_records = 0usize;
    let mut by_session: Vec<(String, Vec<StreamBatchRecord>)> = Vec::new();
    for entry in entries {
        match entry {
            LogEntry::Solve(record) => {
                solve_records += 1;
                replay(&reg, &record)
                    .unwrap_or_else(|e| panic!("solve replay diverged ({}): {e}", record.shard));
            }
            LogEntry::Stream(record) => {
                match by_session.iter_mut().find(|(id, _)| *id == record.session) {
                    Some((_, records)) => records.push(record),
                    None => by_session.push((record.session.clone(), vec![record])),
                }
            }
        }
    }
    assert_eq!(
        solve_records, expected_solves,
        "exactly one witness record per recovered solve"
    );
    assert_eq!(by_session.len(), expected_batches.len());
    for (id, want) in &expected_batches {
        let records = &by_session
            .iter()
            .find(|(s, _)| s == id)
            .unwrap_or_else(|| panic!("session {id} missing from the witness log"))
            .1;
        assert_eq!(records.len(), *want, "session {id}");
        replay_stream(&reg, records)
            .unwrap_or_else(|e| panic!("stream replay diverged for {id}: {e}"));
    }
    let _ = std::fs::remove_file(&witness);
}

/// (c) The breaker sheds a failing shard instead of paying its failure
/// on every request — routed p99 with one all-failing shard stays within
/// 2× the healthy baseline — and a half-open probe re-admits the shard
/// once it recovers.
#[test]
fn breaker_sheds_a_failing_shard_and_readmits_it() {
    let backends = [start_backend(), start_backend(), start_backend()];
    let router = Router::start(
        RouterConfig {
            health_interval_ms: 100,
            cache_capacity: 0,
            breaker_window: 8,
            breaker_min_failures: 4,
            breaker_open_ms: 250,
            backoff_base_ms: 2,
            backoff_cap_ms: 10,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", backends[0].local_addr()),
            attach_spec("s1", backends[1].local_addr()),
            attach_spec("s2", backends[2].local_addr()),
        ],
    )
    .expect("router starts");
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));

    let burst = |conn: &mut ClientConn, base: u64, count: usize, context: &str| -> Vec<f64> {
        (0..count)
            .map(|i| solve_until_ok(conn, &solve_body("sort", 40, base + i as u64), context).1)
            .collect()
    };
    let p99 = |mut ms: Vec<f64>| -> f64 {
        ms.sort_by(|a, b| a.total_cmp(b));
        let rank = ((0.99 * ms.len() as f64).ceil() as usize).clamp(1, ms.len());
        ms[rank - 1]
    };

    // Healthy baseline.
    let baseline = p99(burst(&mut conn, 0, 30, "baseline"));

    // s0 now fails every request with a retryable 503. The first few
    // requests pay a failed attempt + backoff; once the breaker opens,
    // s0 is shed up front and latency returns to baseline.
    post_chaos(backends[0].local_addr(), "seed=9,error=1.0");
    let shed = burst(&mut conn, 10_000, 40, "shedding");
    let settled = p99(shed[shed.len() / 2..].to_vec());
    // The 2× bound is the contract; the floor absorbs scheduler noise on
    // loaded CI machines where the baseline itself is a few ms.
    let bound = (2.0 * baseline).max(80.0);
    assert!(
        settled <= bound,
        "p99 with one failing shard: {settled:.1}ms, bound {bound:.1}ms (baseline {baseline:.1}ms)"
    );
    let health = healthz(&router);
    assert_eq!(
        breaker_field(&health, "s0", "state").as_str(),
        Some("open"),
        "{}",
        health.write()
    );
    assert!(breaker_field(&health, "s0", "opened").as_f64() >= Some(1.0));
    assert!(
        breaker_field(&health, "s0", "rejected").as_f64() > Some(0.0),
        "the open breaker shed load up front: {}",
        health.write()
    );
    assert!(
        health
            .get("robustness")
            .and_then(|r| r.get("backoff_sleeps"))
            .and_then(Value::as_f64)
            > Some(0.0),
        "retries were spaced by backoff: {}",
        health.write()
    );
    let served_while_open = shard_member(&health, "s0")
        .get("served")
        .and_then(Value::as_f64)
        .unwrap();

    // Recovery: clear the fault, wait out the cooldown, and keep
    // routing — the first request whose ring order reaches s0 becomes
    // the half-open probe, succeeds, and recloses the breaker.
    post_chaos(backends[0].local_addr(), "off");
    std::thread::sleep(Duration::from_millis(300));
    let t0 = Instant::now();
    let mut wseed = 20_000u64;
    loop {
        let _ = solve_until_ok(&mut conn, &solve_body("sort", 40, wseed), "recovery");
        wseed += 1;
        let health = healthz(&router);
        if breaker_field(&health, "s0", "state").as_str() == Some("closed")
            && breaker_field(&health, "s0", "reclosed").as_f64() >= Some(1.0)
        {
            let served_after = shard_member(&health, "s0")
                .get("served")
                .and_then(Value::as_f64)
                .unwrap();
            assert!(
                served_after > served_while_open,
                "the re-admitted shard serves again: {}",
                health.write()
            );
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(15),
            "s0 never re-admitted: {}",
            health.write()
        );
    }

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// (d) Deadline propagation: a request whose `X-RI-Deadline-Ms` budget
/// cannot be met answers a structured, retryable 504 within roughly the
/// budget — not after `request_timeout_ms` per attempt — and the expiry
/// is counted in the cluster view.
#[test]
fn exhausted_deadline_budget_answers_a_structured_504() {
    let backends = [start_backend(), start_backend()];
    let router = Router::start(
        RouterConfig {
            health_interval_ms: 100,
            cache_capacity: 0,
            request_timeout_ms: 30_000, // what each attempt would burn without a budget
            backoff_base_ms: 5,
            backoff_cap_ms: 40,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", backends[0].local_addr()),
            attach_spec("s1", backends[1].local_addr()),
        ],
    )
    .expect("router starts");

    // Every shard stalls far past the budget.
    for b in &backends {
        post_chaos(b.local_addr(), "seed=6,stall=1.0:2000");
    }
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));
    let t0 = Instant::now();
    let resp = conn
        .request_with(
            "POST",
            "/solve",
            Some(&solve_body("sort", 40, 1)),
            &[(DEADLINE_HEADER, "150")],
            true,
        )
        .expect("the 504 is a structured answer, not a hang");
    let elapsed = t0.elapsed();
    assert_eq!(resp.status, 504, "{}", resp.body);
    let err = parse(&resp.body);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("deadline-exceeded"),
        "{}",
        resp.body
    );
    assert_eq!(
        err.get("error").and_then(|e| e.get("retryable")),
        Some(&Value::Bool(true))
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "a 150ms budget must not burn timeouts per attempt (took {elapsed:?})"
    );
    let health = healthz(&router);
    assert!(
        health
            .get("robustness")
            .and_then(|r| r.get("deadline_expired"))
            .and_then(Value::as_f64)
            >= Some(1.0),
        "{}",
        health.write()
    );

    for b in &backends {
        b.set_chaos("off").expect("chaos clears");
    }
    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// (e) Regression: a batch whose *response* is lost may still have
/// executed on the shard. The router must treat that session as dirty and
/// rebuild it (close-and-replay) before any client retry runs — blindly
/// re-proxying would double-execute the batch and skew the delta
/// sequence. With a single shard the rebuild has nowhere else to go, so
/// this also pins the old shard as a legitimate last-resort target: every
/// delta index must arrive exactly once, in order, and the witness log
/// must replay bit-identically.
#[test]
fn lost_batch_responses_never_double_execute_even_in_place() {
    let backend = start_backend();
    let witness = temp_witness("dirty");
    let router = Router::start(
        RouterConfig {
            witness_path: Some(witness.clone()),
            health_interval_ms: 100,
            cache_capacity: 0,
            request_timeout_ms: 10_000,
            backoff_base_ms: 5,
            backoff_cap_ms: 40,
            // One shard serving alone: keep the breaker from opening on
            // the injected drops so every retry really reaches it.
            breaker_min_failures: 1_000,
            ..RouterConfig::default()
        },
        vec![attach_spec("s0", backend.local_addr())],
    )
    .expect("router starts");
    let mut conn = ClientConn::new(router.local_addr(), Duration::from_secs(120));

    const BATCHES: usize = 6;
    const COUNT: usize = 8;
    let body = format!(
        "{{\"problem\":\"sort\",\"workload\":{{\"n\":{},\"seed\":42}},\
         \"config\":{{\"seed\":5,\"mode\":\"parallel\"}},\"session_id\":\"dirty-0\"}}",
        BATCHES * COUNT
    );
    let resp = conn
        .request("POST", "/stream", Some(&body))
        .expect("open transport");
    assert_eq!(resp.status, 200, "open: {}", resp.body);

    // Now every faultable shard request has a 25% chance of executing
    // and then losing its response mid-frame. Rebuild re-feeds are
    // faultable too, so late-session recovery compounds: a rebuild at
    // batch i must survive i+2 chaotic requests in a row. Give the
    // client a deep retry budget instead of softening the chaos.
    post_chaos(backend.local_addr(), "seed=8,drop=0.25");

    let mut cumulative = 0;
    let path = "/stream/dirty-0/batch";
    let batch_body = format!("{{\"count\":{COUNT}}}");
    for i in 0..BATCHES {
        let mut delta = None;
        for _ in 0..100 {
            let resp = conn
                .request("POST", path, Some(&batch_body))
                .unwrap_or_else(|e| panic!("dirty batch {i}: transport through the router: {e}"));
            if resp.status == 200 {
                delta = Some(
                    BatchDelta::from_value(&parse(&resp.body))
                        .unwrap_or_else(|e| panic!("dirty batch {i}: bad delta: {e}")),
                );
                break;
            }
            assert_structured_retryable(resp.status, &resp.body, &format!("dirty batch {i}"));
            std::thread::sleep(Duration::from_millis(5));
        }
        let delta = delta.unwrap_or_else(|| panic!("dirty batch {i}: lost within retry budget"));
        cumulative += COUNT;
        assert_eq!(delta.batch, i, "delta sequence must stay unbroken");
        assert_eq!(delta.cumulative, cumulative, "no batch ran twice");
    }

    // The drops must actually have forced rebuilds — otherwise this test
    // proved nothing about the dirty path.
    let health = healthz(&router);
    let migrated = health
        .get("sessions")
        .and_then(|s| s.get("migrated"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(
        migrated >= 1.0,
        "expected at least one in-place rebuild: {}",
        health.write()
    );

    post_chaos(backend.local_addr(), "off");
    router.shutdown();
    backend.shutdown();

    // The rebuilds re-fed history internally; the client-visible log is
    // exactly BATCHES records and replays bit-identically.
    let entries = read_any_log(&witness).expect("witness readable");
    let records: Vec<StreamBatchRecord> = entries
        .into_iter()
        .filter_map(|e| match e {
            LogEntry::Stream(r) => Some(r),
            LogEntry::Solve(_) => None,
        })
        .collect();
    assert_eq!(records.len(), BATCHES, "one witness record per client 200");
    let reg = registry();
    replay_stream(&reg, &records).expect("bit-identical replay after rebuilds");
}
