//! Router end-to-end tests: real TCP, in-process `ri-serve` backends
//! attached as shards, and the full determinism gate — every routed
//! answer must replay bit-identically from its witness record in a
//! fresh single process.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parallel_ri::registry;
use ri_core::engine::json::{self, Value};
use ri_core::engine::witness::{read_log, replay};
use ri_core::engine::{RunConfig, ServeRequest, WorkloadSpec};
use ri_router::{BackendSpec, BackendTarget, Router, RouterConfig};
use ri_serve::http::ClientConn;
use ri_serve::{ServeConfig, Server};

const POOL_WIDTH: usize = 2;

fn start_backend() -> Server {
    let cfg = ServeConfig {
        threads: POOL_WIDTH,
        executors: 2,
        ..ServeConfig::default()
    };
    Server::start(registry(), cfg).expect("backend starts")
}

fn attach_spec(shard_id: &str, addr: SocketAddr) -> BackendSpec {
    BackendSpec {
        shard_id: shard_id.into(),
        target: BackendTarget::Attach(addr),
    }
}

fn temp_witness(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("ri-router-e2e-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn solve_body(problem: &str, n: usize, wseed: u64, cseed: u64) -> String {
    let mut request = ServeRequest::new(problem);
    request.workload = WorkloadSpec::new(n, wseed);
    request.config = RunConfig::new().seed(cseed).parallel();
    request.to_json()
}

fn router_conn(router: &Router) -> ClientConn {
    ClientConn::new(router.local_addr(), Duration::from_secs(120))
}

fn healthz(router: &Router) -> Value {
    let mut conn = router_conn(router);
    let resp = conn.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    json::parse(&resp.body).expect("healthz parses")
}

fn shard_field(health: &Value, shard_id: &str, field: &str) -> Value {
    health
        .get("shards")
        .and_then(Value::as_arr)
        .and_then(|shards| {
            shards
                .iter()
                .find(|s| s.get("shard_id").and_then(Value::as_str) == Some(shard_id))
        })
        .and_then(|s| s.get(field))
        .cloned()
        .unwrap_or_else(|| panic!("shard {shard_id} field {field} missing: {}", health.write()))
}

/// (a) Routing, shard attribution, caching and witnessing all work over
/// one keep-alive client connection, and every witness record replays.
#[test]
fn routes_caches_witnesses_and_replays() {
    let b0 = start_backend();
    let b1 = start_backend();
    let witness = temp_witness("routes");
    let router = Router::start(
        RouterConfig {
            witness_path: Some(witness.clone()),
            health_interval_ms: 100,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", b0.local_addr()),
            attach_spec("s1", b1.local_addr()),
        ],
    )
    .expect("router starts");

    let mut conn = router_conn(&router);
    let problems = ["sort", "closest-pair", "lp"];
    let mut first_bodies = Vec::new();
    for (i, problem) in problems.iter().enumerate() {
        let body = solve_body(problem, 64, i as u64, 7 + i as u64);
        let resp = conn
            .request("POST", "/solve", Some(&body))
            .expect("routed solve");
        assert_eq!(resp.status, 200, "{problem}: {}", resp.body);
        let shard = resp.header("x-ri-shard").expect("shard header").to_string();
        assert!(shard == "s0" || shard == "s1", "unexpected shard {shard}");
        assert_eq!(resp.header("x-ri-cache"), Some("miss"));
        assert!(resp.keep_alive(), "router honors keep-alive");
        first_bodies.push((body, resp.body));
    }

    // Same keys again: cache hits, byte-identical bodies, no new
    // backend work.
    let served_before: f64 = ["s0", "s1"]
        .iter()
        .map(|s| {
            shard_field(&healthz(&router), s, "served")
                .as_f64()
                .unwrap()
        })
        .sum();
    for (body, first) in &first_bodies {
        let resp = conn
            .request("POST", "/solve", Some(body))
            .expect("cached solve");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-ri-cache"), Some("hit"));
        assert_eq!(&resp.body, first, "cache returns the stored bytes");
    }
    let health = healthz(&router);
    let served_after: f64 = ["s0", "s1"]
        .iter()
        .map(|s| shard_field(&health, s, "served").as_f64().unwrap())
        .sum();
    assert_eq!(served_before, served_after, "cache hits reach no backend");
    assert_eq!(
        health
            .get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Value::as_f64),
        Some(first_bodies.len() as f64)
    );
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));

    // The proxied /problems listing matches a shard-direct call shape.
    let listing = conn.request("GET", "/problems", None).expect("problems");
    assert_eq!(listing.status, 200);
    assert!(listing.body.contains("\"problems\""));

    router.shutdown();
    b0.shutdown();
    b1.shutdown();

    // The witness gate: one record per non-cached 200, each replaying
    // bit-identically (answer AND round trace) in this fresh process.
    let records = read_log(&witness).expect("witness log loads");
    assert_eq!(records.len(), first_bodies.len());
    let reg = registry();
    for record in &records {
        replay(&reg, record).unwrap_or_else(|e| {
            panic!(
                "witness replay diverged for {}: {e}",
                record.request.problem
            )
        });
    }
    let _ = std::fs::remove_file(&witness);
}

/// (b) The availability + determinism gate from the issue: two shards,
/// one killed mid-burst — zero failed client requests, and afterwards a
/// fresh single process replays every witnessed answer bit-identically.
#[test]
fn kill_shard_mid_burst_loses_nothing() {
    let b0 = start_backend();
    let b1 = start_backend();
    let witness = temp_witness("kill");
    let router = Router::start(
        RouterConfig {
            witness_path: Some(witness.clone()),
            health_interval_ms: 100,
            max_attempts: 2,
            cache_capacity: 0, // every request must really route
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", b0.local_addr()),
            attach_spec("s1", b1.local_addr()),
        ],
    )
    .expect("router starts");

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 10;
    let ok = Arc::new(AtomicUsize::new(0));
    let addr = router.local_addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ok = Arc::clone(&ok);
            std::thread::spawn(move || {
                let mut conn = ClientConn::new(addr, Duration::from_secs(120));
                for i in 0..PER_CLIENT {
                    // Distinct seeds: no two requests share a witness key.
                    let body = solve_body("sort", 48, (c * PER_CLIENT + i) as u64, 1000 + c as u64);
                    let resp = conn
                        .request("POST", "/solve", Some(&body))
                        .expect("client request transports");
                    assert_eq!(resp.status, 200, "client {c} req {i}: {}", resp.body);
                    ok.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();

    // Kill one shard while the burst is in flight.
    std::thread::sleep(Duration::from_millis(30));
    b1.shutdown();

    for w in workers {
        w.join().expect("client thread");
    }
    assert_eq!(
        ok.load(Ordering::SeqCst),
        CLIENTS * PER_CLIENT,
        "zero failed client requests across the shard kill"
    );
    // The failover is visible: some requests were retried away from s1.
    let health = healthz(&router);
    let s0_served = shard_field(&health, "s0", "served").as_f64().unwrap();
    let s1_served = shard_field(&health, "s1", "served").as_f64().unwrap();
    assert_eq!(s0_served + s1_served, (CLIENTS * PER_CLIENT) as f64);
    assert!(s0_served > 0.0, "the surviving shard picked up the load");
    router.shutdown();
    b0.shutdown();

    // Replay the whole log in this (single, fresh) process: every answer
    // and trace must reproduce no matter which shard originally solved it.
    let records = read_log(&witness).expect("witness log loads");
    assert_eq!(records.len(), CLIENTS * PER_CLIENT);
    let reg = registry();
    for record in &records {
        replay(&reg, record)
            .unwrap_or_else(|e| panic!("replay diverged (shard {}): {e}", record.shard));
    }
    let _ = std::fs::remove_file(&witness);
}

/// (c) Drain: the shard stops receiving work, finishes what it has,
/// detaches (terminal), and the cluster keeps answering from the rest.
#[test]
fn drain_redirects_load_and_detaches_the_shard() {
    let b0 = start_backend();
    let b1 = start_backend();
    let router = Router::start(
        RouterConfig {
            health_interval_ms: 100,
            cache_capacity: 0,
            ..RouterConfig::default()
        },
        vec![
            attach_spec("s0", b0.local_addr()),
            attach_spec("s1", b1.local_addr()),
        ],
    )
    .expect("router starts");

    let mut conn = router_conn(&router);
    let resp = conn
        .request("POST", "/admin/drain", Some("{\"shard_id\":\"s1\"}"))
        .expect("drain request");
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The drain completes (no inflight work): s1 reaches `detached`.
    let t0 = Instant::now();
    loop {
        let state = shard_field(&healthz(&router), "s1", "state");
        if state.as_str() == Some("detached") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "s1 stuck in {}",
            state.write()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Everything now lands on s0, with zero failures.
    for i in 0..6 {
        let body = solve_body("scc", 40, i, 77);
        let resp = conn.request("POST", "/solve", Some(&body)).expect("solve");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.header("x-ri-shard"), Some("s0"));
    }
    // Draining an unknown shard is a structured 404; re-draining s1 is
    // reported, not re-run.
    let resp = conn
        .request("POST", "/admin/drain", Some("{\"shard_id\":\"nope\"}"))
        .expect("bad drain");
    assert_eq!(resp.status, 404);
    let resp = conn
        .request("POST", "/admin/drain", Some("{\"shard_id\":\"s1\"}"))
        .expect("re-drain");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"already_draining\":true"));

    router.shutdown();
    b0.shutdown();
    b1.shutdown();
}

/// (d) The router validates requests itself: malformed bodies are
/// rejected with the shared envelope shape without burning a backend
/// attempt, and unknown paths 404.
#[test]
fn router_rejects_malformed_requests_itself() {
    let b0 = start_backend();
    let router = Router::start(
        RouterConfig {
            health_interval_ms: 100,
            ..RouterConfig::default()
        },
        vec![attach_spec("s0", b0.local_addr())],
    )
    .expect("router starts");

    let mut conn = router_conn(&router);
    let resp = conn
        .request("POST", "/solve", Some("{not json"))
        .expect("bad body transports");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"error\""));
    assert!(resp.body.contains("\"retryable\":false"));

    let resp = conn.request("GET", "/nope", None).expect("404 path");
    assert_eq!(resp.status, 404);

    let health = healthz(&router);
    assert_eq!(shard_field(&health, "s0", "served").as_f64(), Some(0.0));
    assert_eq!(health.get("errored").and_then(Value::as_f64), Some(2.0));

    router.shutdown();
    b0.shutdown();
}
