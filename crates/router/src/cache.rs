//! The deterministic result cache.
//!
//! Sound only because of the paper's determinism property: a witness key
//! (problem, workload, seed, mode, instrument — see
//! `ri_core::engine::witness::witness_key`) fully determines the
//! response body any backend would produce, so serving a cached body is
//! indistinguishable from re-solving, minus the compute. The cache
//! stores the raw backend response body (byte-identical replay to the
//! client) under FIFO eviction — entry cost is uniform enough here that
//! recency tracking isn't worth its locking.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded `witness_key -> response body` map with FIFO eviction and
/// hit/miss counters. Capacity 0 disables caching entirely.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, String>,
    fifo: VecDeque<String>,
}

impl ResultCache {
    /// A cache holding at most `capacity` response bodies.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, counting the outcome.
    pub fn get(&self, key: &str) -> Option<String> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.map.get(key) {
            Some(body) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `key -> body`, evicting the oldest entry when full. A key
    /// already present keeps its original body — determinism says the
    /// two must be equal anyway.
    pub fn insert(&self, key: &str, body: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.contains_key(key) {
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.fifo.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.map.insert(key.to_string(), body.to_string());
        inner.fifo.push_back(key.to_string());
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_fifo_eviction() {
        let cache = ResultCache::new(2);
        assert_eq!(cache.get("a"), None);
        cache.insert("a", "1");
        cache.insert("b", "2");
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.get("b").as_deref(), Some("2"));
        // Third insert evicts the oldest ("a").
        cache.insert("c", "3");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.get("c").as_deref(), Some("3"));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_the_first_body() {
        let cache = ResultCache::new(4);
        cache.insert("k", "first");
        cache.insert("k", "second");
        assert_eq!(cache.get("k").as_deref(), Some("first"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("k", "v");
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
    }
}
