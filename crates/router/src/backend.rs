//! One routed-to backend shard: its address, health state, counters,
//! keep-alive connection pool, and (when the router spawned it) the
//! child process handle.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ri_serve::http::ClientConn;

use crate::breaker::{BreakerConfig, CircuitBreaker};

/// How the router reaches a shard: attach to an already-running
/// `ri-serve` (in-process servers in tests, externally managed fleets),
/// or spawn one as a child process.
#[derive(Debug, Clone)]
pub enum BackendTarget {
    /// Route to a server someone else runs at this address.
    Attach(SocketAddr),
    /// Spawn `serve_bin` on an ephemeral port and route to it.
    Spawn {
        /// Path to the `ri-serve` binary.
        serve_bin: PathBuf,
        /// `--threads` for the shard's solve pool (0 = machine default).
        threads: usize,
        /// `--executors` for the shard.
        executors: usize,
    },
}

/// A shard the router should route to.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// The shard's identity on the ring (and in `/healthz`).
    pub shard_id: String,
    /// How to reach it.
    pub target: BackendTarget,
}

/// Backend health/routing state. Transitions: health polls move between
/// `Unknown`/`Healthy`/`Unhealthy` (so do request outcomes); an admin
/// drain moves to `Draining` and, once the last in-flight request
/// finishes (and any child is stopped), `Detached` — both are terminal
/// for routing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendState {
    /// Not yet health-checked.
    Unknown,
    /// Last health check (or request) succeeded.
    Healthy,
    /// Last health check (or request) failed; still polled, still
    /// eligible as a last-resort candidate.
    Unhealthy,
    /// Draining: no new requests; in-flight ones finish.
    Draining,
    /// Drained and (if spawned) stopped. Never routed to again.
    Detached,
}

impl BackendState {
    fn from_u8(v: u8) -> BackendState {
        match v {
            1 => BackendState::Healthy,
            2 => BackendState::Unhealthy,
            3 => BackendState::Draining,
            4 => BackendState::Detached,
            _ => BackendState::Unknown,
        }
    }

    /// The state's `/healthz` name.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendState::Unknown => "unknown",
            BackendState::Healthy => "healthy",
            BackendState::Unhealthy => "unhealthy",
            BackendState::Draining => "draining",
            BackendState::Detached => "detached",
        }
    }
}

/// Cap on pooled idle connections per backend; beyond it, finished
/// connections are simply closed.
const MAX_POOLED_CONNS: usize = 8;

/// A live backend: everything the router tracks about one shard.
#[derive(Debug)]
pub struct Backend {
    shard_id: String,
    addr: SocketAddr,
    state: AtomicU8,
    /// Requests currently proxied to this shard.
    inflight: AtomicUsize,
    /// Requests this shard answered 200 through the router.
    served: AtomicU64,
    /// Attempts against this shard that failed over to another.
    failed: AtomicU64,
    /// Streaming sessions the shard reported open on its last health
    /// poll (the shard owns the truth; this is the router's view).
    sessions_open: AtomicU64,
    /// Stream batches the shard reported served on its last health poll.
    batches_served: AtomicU64,
    /// Idle keep-alive connections, reused across proxied requests.
    conns: Mutex<Vec<ClientConn>>,
    /// The child process when the router spawned this shard.
    child: Mutex<Option<Child>>,
    /// Circuit breaker gating the ring walk's admissions to this shard.
    breaker: CircuitBreaker,
}

impl Backend {
    /// Attach to an already-running server.
    pub fn attach(shard_id: impl Into<String>, addr: SocketAddr) -> Backend {
        Backend {
            shard_id: shard_id.into(),
            addr,
            state: AtomicU8::new(0),
            inflight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            sessions_open: AtomicU64::new(0),
            batches_served: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            child: Mutex::new(None),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
        }
    }

    /// Spawn `serve_bin` as a child on an ephemeral port (the child
    /// prints `listening on ADDR`; this blocks until that line arrives)
    /// and attach to it. The child carries this backend's shard id so
    /// health checks can verify they reached the right process.
    pub fn spawn(
        shard_id: impl Into<String>,
        serve_bin: &std::path::Path,
        threads: usize,
        executors: usize,
    ) -> io::Result<Backend> {
        let shard_id = shard_id.into();
        let mut child = Command::new(serve_bin)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--threads",
                &threads.to_string(),
                "--executors",
                &executors.max(1).to_string(),
                "--shard-id",
                &shard_id,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .stdin(Stdio::null())
            .spawn()?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("child stdout was not captured"))?;
        let addr = read_listening_line(stdout).inspect_err(|_| {
            let _ = child.kill();
            let _ = child.wait();
        })?;
        let backend = Backend::attach(shard_id, addr);
        *lock(&backend.child) = Some(child);
        Ok(backend)
    }

    /// The shard's identity.
    pub fn shard_id(&self) -> &str {
        &self.shard_id
    }

    /// The shard's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current routing state.
    pub fn state(&self) -> BackendState {
        BackendState::from_u8(self.state.load(Ordering::SeqCst))
    }

    /// Record a health observation. Ignored once draining/detached —
    /// the drain decision outranks the poller.
    pub fn observe(&self, healthy: bool) {
        let new = if healthy { 1 } else { 2 };
        for current in [0u8, 1, 2] {
            if self
                .state
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Begin draining: no new requests. Returns false if already
    /// draining or detached.
    pub fn begin_drain(&self) -> bool {
        for current in [0u8, 1, 2] {
            if self
                .state
                .compare_exchange(current, 3, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// Whether new requests may be routed here.
    pub fn routable(&self) -> bool {
        matches!(
            self.state(),
            BackendState::Unknown | BackendState::Healthy | BackendState::Unhealthy
        )
    }

    /// Requests currently in flight against this shard.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// 200s this shard answered through the router.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }

    /// Attempts against this shard that failed over elsewhere.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::SeqCst)
    }

    /// Streaming sessions the shard reported open on its last health poll.
    pub fn sessions_open(&self) -> u64 {
        self.sessions_open.load(Ordering::SeqCst)
    }

    /// Stream batches the shard reported served on its last health poll.
    pub fn batches_served(&self) -> u64 {
        self.batches_served.load(Ordering::SeqCst)
    }

    /// This shard's circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Refresh the shard's self-reported session stats from a health poll.
    pub(crate) fn record_session_stats(&self, open: u64, batches: u64) {
        self.sessions_open.store(open, Ordering::SeqCst);
        self.batches_served.store(batches, Ordering::SeqCst);
    }

    pub(crate) fn begin_request(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn end_request(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn count_served(&self) {
        self.served.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_failed(&self) {
        self.failed.fetch_add(1, Ordering::SeqCst);
    }

    /// Check out a keep-alive connection (pooled or fresh). The caller's
    /// timeout is applied either way, so a pooled connection honors the
    /// current request's deadline budget rather than the budget it was
    /// created under.
    pub(crate) fn checkout(&self, timeout: Duration) -> ClientConn {
        match lock(&self.conns).pop() {
            Some(mut conn) => {
                conn.set_timeout(timeout);
                conn
            }
            None => ClientConn::new(self.addr, timeout),
        }
    }

    /// Return a connection to the pool (dropped when the pool is full —
    /// callers should only return connections that are still healthy).
    pub(crate) fn checkin(&self, conn: ClientConn) {
        let mut conns = lock(&self.conns);
        if conns.len() < MAX_POOLED_CONNS {
            conns.push(conn);
        }
    }

    /// Finish a drain: mark detached and stop the child (if spawned).
    /// Idempotent.
    pub fn detach(&self) {
        self.state.store(4, Ordering::SeqCst);
        lock(&self.conns).clear();
        if let Some(mut child) = lock(&self.child).take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        // Never leak a spawned shard past the router's lifetime.
        if let Some(mut child) = lock(&self.child).take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read the child's stdout until its `listening on ADDR` line.
fn read_listening_line(stdout: impl io::Read) -> io::Result<SocketAddr> {
    use std::io::BufRead as _;
    let reader = io::BufReader::new(stdout);
    for line in reader.lines() {
        let line = line?;
        if let Some(addr) = line.strip_prefix("listening on ") {
            return addr.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparseable listen address `{addr}`: {e}"),
                )
            });
        }
    }
    Err(io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "child exited before printing its listen address",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_drain_outranks_health() {
        let b = Backend::attach("s0", "127.0.0.1:9".parse().unwrap());
        assert_eq!(b.state(), BackendState::Unknown);
        assert!(b.routable());
        b.observe(true);
        assert_eq!(b.state(), BackendState::Healthy);
        b.observe(false);
        assert_eq!(b.state(), BackendState::Unhealthy);
        assert!(b.begin_drain());
        assert!(!b.begin_drain(), "drain is not re-enterable");
        assert!(!b.routable());
        // Health observations no longer move the state.
        b.observe(true);
        assert_eq!(b.state(), BackendState::Draining);
        b.detach();
        assert_eq!(b.state(), BackendState::Detached);
        b.observe(true);
        assert_eq!(b.state(), BackendState::Detached);
    }

    #[test]
    fn listening_line_parses_and_rejects() {
        let ok = b"ri-serve noise\nlistening on 127.0.0.1:4567\n" as &[u8];
        assert_eq!(
            read_listening_line(ok).unwrap(),
            "127.0.0.1:4567".parse::<SocketAddr>().unwrap()
        );
        let eof = b"no address here\n" as &[u8];
        assert!(read_listening_line(eof).is_err());
        let garbage = b"listening on not-an-addr\n" as &[u8];
        assert!(read_listening_line(garbage).is_err());
    }

    #[test]
    fn connection_pool_is_bounded() {
        let b = Backend::attach("s0", "127.0.0.1:9".parse().unwrap());
        for _ in 0..(MAX_POOLED_CONNS + 4) {
            b.checkin(ClientConn::new(b.addr(), Duration::from_secs(1)));
        }
        assert_eq!(lock(&b.conns).len(), MAX_POOLED_CONNS);
    }
}
