//! The consistent-hash ring that assigns requests to shards.
//!
//! Each shard contributes `replicas` virtual points, placed by hashing
//! `"{shard_id}#{k}"` with FNV-1a 64; a request key (the witness key:
//! problem, workload, seed, mode) hashes onto the ring and walks
//! clockwise. [`HashRing::order`] returns **all** shards in that walk
//! order, first-distinct wins — the head is the home shard, the tail is
//! the deterministic failover sequence the router retries along. Two
//! routers over the same shard set compute identical assignments, and
//! removing one shard reassigns only that shard's keys (the classic
//! consistent-hashing property the virtual points are there to smooth).

/// FNV-1a 64-bit: tiny, dependency-free byte hashing (this is a load
/// balancer, not a cryptosystem).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Avalanche finalizer (splitmix64's): raw FNV-1a of short, similar
/// strings (`"s0#1"`, `"s0#2"`, ...) differs only in the low bits, which
/// clumps each shard's virtual points into one tight arc and defeats the
/// ring's smoothing. Mixing restores full-width dispersion.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Where a label lands on the ring.
fn place(label: &str) -> u64 {
    mix(fnv1a(label.as_bytes()))
}

/// A consistent-hash ring over shard indices `0..shard_count`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard_index)` sorted by point.
    points: Vec<(u64, usize)>,
    shard_count: usize,
}

impl HashRing {
    /// Build a ring with `replicas` virtual points per shard (clamped to
    /// at least 1). Shard identity — not list position — places the
    /// points, so the assignment survives reordering the shard list.
    pub fn new(shard_ids: &[String], replicas: usize) -> Self {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(shard_ids.len() * replicas);
        for (index, id) in shard_ids.iter().enumerate() {
            for k in 0..replicas {
                points.push((place(&format!("{id}#{k}")), index));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shard_count: shard_ids.len(),
        }
    }

    /// Number of distinct shards on the ring.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Every shard index in ring order starting from `key`'s position:
    /// `order(key)[0]` is the home shard, the rest are the failover
    /// sequence. Deterministic for a fixed ring and key.
    pub fn order(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = place(key);
        let start = self.points.partition_point(|&(p, _)| p < h) % self.points.len();
        let mut seen = vec![false; self.shard_count];
        let mut order = Vec::with_capacity(self.shard_count);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shard_count {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn order_is_deterministic_and_covers_every_shard() {
        let ring = HashRing::new(&ids(4), 32);
        for key in ["a", "b", "sort|{}|1", "scc|{}|2"] {
            let order = ring.order(key);
            assert_eq!(order.len(), 4);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "a permutation of all shards");
            assert_eq!(order, ring.order(key), "stable across calls");
        }
    }

    #[test]
    fn assignment_is_identity_based_not_position_based() {
        let forward = HashRing::new(&["a".into(), "b".into(), "c".into()], 16);
        let reversed = HashRing::new(&["c".into(), "b".into(), "a".into()], 16);
        // Map indices back to ids: the chosen *identity* must agree.
        let fwd_ids = ["a", "b", "c"];
        let rev_ids = ["c", "b", "a"];
        for key in ["x", "y", "z", "w", "sort|64|7"] {
            assert_eq!(
                fwd_ids[forward.order(key)[0]],
                rev_ids[reversed.order(key)[0]]
            );
        }
    }

    #[test]
    fn keys_spread_over_shards() {
        let ring = HashRing::new(&ids(3), 64);
        let mut counts = [0usize; 3];
        for i in 0..300 {
            counts[ring.order(&format!("key-{i}"))[0]] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(c > 30, "shard {shard} got only {c}/300 keys");
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        assert!(HashRing::new(&[], 8).order("k").is_empty());
    }
}
