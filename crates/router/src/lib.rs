//! # `ri-router` — the sharded front tier over `ri-serve` backends
//!
//! A std-only, `#![forbid(unsafe_code)]` HTTP router that turns N
//! `ri-serve` processes into one deterministic serving surface:
//!
//! * **Consistent-hash routing** — `POST /solve` hashes the request's
//!   determinism key (problem, workload, seed, mode — the witness key)
//!   onto a virtual-node ring ([`ring::HashRing`]); the walk order from
//!   that point is both the home-shard assignment and the failover
//!   sequence.
//! * **Health-checked backends** — a poller aggregates per-shard
//!   `GET /healthz` (verifying each shard answers with the expected
//!   `shard_id`) into the cluster view the router's own `/healthz`
//!   serves.
//! * **Retry** — a shard that answers a *retryable* error (`503`/`504`:
//!   the solve never ran) or fails at the transport level is failed over
//!   to the next distinct shard on the ring. Safe by construction:
//!   every solve is deterministic and side-effect-free, so a retry can
//!   never double-apply anything.
//! * **Sticky streaming sessions** — `POST /stream` assigns the session
//!   an id (`rs-<seq>` unless the client names one), consistent-hashes
//!   *the id* onto the ring, and pins every later `/stream/<id>/...`
//!   request to that shard. Because sessions are deterministic replayable
//!   state (a fixed [`StreamSpec`] plus the batch counts served so far),
//!   a dead or draining shard is survivable: the router *migrates* the
//!   session — close on the old shard (best-effort), reopen under the
//!   same id on the next routable shard, re-feed the recorded batch
//!   counts — and the rebuilt session is bit-identical to the lost one.
//!   Re-fed batches are never re-witnessed; only client-served batches
//!   land in the log.
//! * **Drain** — `POST /admin/drain {"shard_id": ...}` stops routing to
//!   a shard, waits out its in-flight requests, migrates its streaming
//!   sessions to surviving shards, then stops it (killing the child when
//!   the router spawned it).
//! * **The witness log + result cache** — every 200 routed is persisted
//!   as a [`WitnessRecord`] (`{request, seed, shard, answer, trace}`)
//!   and its body cached under the witness key. `ri witness replay`
//!   re-executes the log anywhere and asserts bit-identical answers and
//!   round traces — the cross-shard determinism gate; the cache serves
//!   repeat keys without compute (`X-RI-Cache: hit`), sound for exactly
//!   the same reason replay is.
//!
//! The router itself is thread-per-connection with keep-alive, no solve
//! queue of its own — admission control lives in the backends, whose
//! `503 overloaded` the router converts into failover rather than
//! client-visible failure (until every shard has shed it).

#![forbid(unsafe_code)]

pub mod backend;
pub mod cache;
pub mod ring;

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ri_core::engine::envelope::{ServeError, ServeErrorKind, ServeRequest, ServeResponse};
use ri_core::engine::json::{self, Value};
use ri_core::engine::session::{BatchDelta, BatchRequest, StreamSpec};
use ri_core::engine::witness::{witness_key, StreamBatchRecord, WitnessLog, WitnessRecord};
use ri_serve::http::{
    read_request_buffered, write_response_opts, ClientConn, HttpResponse, ReadError,
};

pub use backend::{Backend, BackendSpec, BackendState, BackendTarget};
pub use cache::ResultCache;
pub use ring::HashRing;

/// Router tuning knobs; every field defaults to something sensible for
/// a small local fleet.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address, `host:port` (`port` 0 = ephemeral).
    pub addr: String,
    /// Virtual points per shard on the hash ring.
    pub replicas: usize,
    /// Maximum *distinct shards* tried per `/solve` before answering
    /// `503` (clamped to the shard count).
    pub max_attempts: usize,
    /// Health-poll period.
    pub health_interval_ms: u64,
    /// Timeout for connect + each read/write on a proxied request. This
    /// bounds a whole backend solve, so it is generous by default.
    pub request_timeout_ms: u64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Append witness records here (`None` disables witnessing).
    pub witness_path: Option<PathBuf>,
    /// Maximum accepted request body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum simultaneous connection-handler threads.
    pub max_connections: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 32,
            max_attempts: 3,
            health_interval_ms: 500,
            request_timeout_ms: 120_000,
            cache_capacity: 256,
            witness_path: None,
            max_body_bytes: 1 << 20,
            max_connections: 256,
        }
    }
}

/// The router's record of one pinned streaming session: which shard owns
/// it, the exact open body to replay it from, and the batch counts served
/// so far. Together these rebuild the session bit-identically anywhere —
/// the whole basis of close-and-replay migration.
struct StickySession {
    /// Index into `Shared::backends` of the shard holding the session.
    shard: usize,
    /// The forwarded open body (client's spec + the assigned
    /// `session_id`), replayed verbatim on migration.
    open_body: String,
    /// Counts of the batches served to the client, in order.
    batches: Vec<usize>,
}

struct Shared {
    cfg: RouterConfig,
    backends: Vec<Backend>,
    ring: HashRing,
    cache: ResultCache,
    witness: Option<WitnessLog>,
    /// Open streaming sessions pinned to shards. The per-session mutex
    /// serializes batches (and migration) within a session; distinct
    /// sessions never contend past the brief map lookup.
    sticky: Mutex<HashMap<String, Arc<Mutex<StickySession>>>>,
    /// Sequence for router-assigned session ids (`rs-<seq>`).
    session_seq: AtomicU64,
    /// Sessions rebuilt on another shard via close-and-replay.
    sessions_migrated: AtomicU64,
    /// Stream batches answered 200 to clients (migration re-feeds are
    /// internal and not counted).
    stream_batches: AtomicU64,
    /// `/solve` requests answered 200 (cache hits included).
    routed: AtomicU64,
    /// Failover attempts: a shard was tried and the request moved on.
    retries: AtomicU64,
    /// `/solve` requests answered with an error envelope.
    errored: AtomicU64,
    draining: AtomicBool,
    connections: AtomicUsize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running router: owns the acceptor and health-poller threads plus
/// every backend handle (spawned children die with it).
pub struct Router {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Resolve every backend spec (spawning children where asked), build
    /// the ring, bind, and start the acceptor + health poller.
    pub fn start(cfg: RouterConfig, specs: Vec<BackendSpec>) -> io::Result<Router> {
        if specs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let mut ids: Vec<&str> = specs.iter().map(|s| s.shard_id.as_str()).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "backend shard ids must be unique",
            ));
        }

        let mut backends = Vec::with_capacity(specs.len());
        for spec in &specs {
            let backend = match &spec.target {
                BackendTarget::Attach(addr) => Backend::attach(&spec.shard_id, *addr),
                BackendTarget::Spawn {
                    serve_bin,
                    threads,
                    executors,
                } => Backend::spawn(&spec.shard_id, serve_bin, *threads, *executors)?,
            };
            backends.push(backend);
        }

        let shard_ids: Vec<String> = backends.iter().map(|b| b.shard_id().to_string()).collect();
        let ring = HashRing::new(&shard_ids, cfg.replicas);
        let witness = match &cfg.witness_path {
            Some(path) => Some(WitnessLog::open(path)?),
            None => None,
        };

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ResultCache::new(cfg.cache_capacity),
            witness,
            ring,
            backends,
            sticky: Mutex::new(HashMap::new()),
            session_seq: AtomicU64::new(0),
            sessions_migrated: AtomicU64::new(0),
            stream_batches: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            cfg,
        });

        // Prime the health view synchronously once, so requests arriving
        // right after start() don't race an all-Unknown fleet.
        poll_health_once(&shared);

        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ri-router-health".into())
                .spawn(move || health_loop(&shared))
                .expect("spawning the health thread")
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ri-router-accept".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawning the acceptor thread")
        };

        Ok(Router {
            shared,
            addr,
            acceptor: Some(acceptor),
            health: Some(health),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live backend handles, in spec order.
    pub fn backends(&self) -> &[Backend] {
        &self.shared.backends
    }

    /// Failover attempts so far.
    pub fn retries(&self) -> u64 {
        self.shared.retries.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, join the poller, detach every
    /// backend (killing spawned children).
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let woken =
            (0..3).any(|_| TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)).is_ok());
        if let Some(acceptor) = self.acceptor.take() {
            if woken {
                let _ = acceptor.join();
            }
        }
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
        let t0 = Instant::now();
        while self.shared.connections.load(Ordering::SeqCst) > 0
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        for backend in &self.shared.backends {
            backend.detach();
        }
    }
}

fn health_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.cfg.health_interval_ms.max(10));
    while !shared.draining.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        poll_health_once(shared);
    }
}

/// One health sweep: `GET /healthz` against every still-routable shard.
/// A response only counts as healthy if it parses and, when the shard
/// advertises an id, that id matches what the router expects — catching
/// port reuse and misconfigured fleets, not just dead sockets.
fn poll_health_once(shared: &Shared) {
    // Health checks use a short timeout: /healthz is served off the
    // connection thread and never waits behind solves.
    let timeout = Duration::from_millis(shared.cfg.health_interval_ms.clamp(10, 2_000));
    for backend in &shared.backends {
        if matches!(
            backend.state(),
            BackendState::Draining | BackendState::Detached
        ) {
            continue;
        }
        let mut conn = ClientConn::new(backend.addr(), timeout);
        let healthy = match conn.request("GET", "/healthz", None) {
            Ok(resp) if resp.status == 200 => match json::parse(&resp.body) {
                Ok(v) => {
                    // Fold the shard's self-reported session stats into
                    // the router's cluster view while we're here.
                    let stat = |key: &str| {
                        v.get(key).and_then(Value::as_f64).unwrap_or(0.0).max(0.0) as u64
                    };
                    backend.record_session_stats(stat("sessions_open"), stat("batches_served"));
                    match v.get("shard_id").and_then(Value::as_str) {
                        Some(id) if !id.is_empty() => id == backend.shard_id(),
                        _ => true, // a shard that doesn't name itself is trusted
                    }
                }
                Err(_) => false,
            },
            _ => false,
        };
        backend.observe(healthy);
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            reject_connection(shared, stream, "router is draining");
            break;
        }
        if shared.connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            reject_connection(shared, stream, "connection limit reached; retry later");
            continue;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ri-router-conn".into())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn reject_connection(shared: &Shared, mut stream: TcpStream, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    respond_error(
        shared,
        &mut stream,
        &ServeError::new(ServeErrorKind::Overloaded, why),
        false,
        &[],
    );
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);

    let mut carry = Vec::new();
    loop {
        let request =
            match read_request_buffered(&mut stream, &mut carry, shared.cfg.max_body_bytes) {
                Ok(r) => r,
                Err(e) => {
                    let err = match e {
                        ReadError::Closed | ReadError::Io(_) => return,
                        ReadError::BodyTooLarge {
                            declared, limit, ..
                        } => ServeError::new(
                            ServeErrorKind::BodyTooLarge,
                            format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                        ),
                        ReadError::BadRequest(msg) => ServeError::bad_request(msg),
                    };
                    respond_error(shared, &mut stream, &err, false, &[]);
                    return;
                }
            };

        let keep_alive = request.keep_alive() && !shared.draining.load(Ordering::SeqCst);
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/solve") => handle_solve(shared, &mut stream, &request.body, keep_alive),
            ("POST", "/stream") => {
                handle_stream_open(shared, &mut stream, &request.body, keep_alive)
            }
            (method, path) if path.strip_prefix("/stream/").is_some_and(|r| !r.is_empty()) => {
                handle_stream_session(shared, &mut stream, method, path, &request.body, keep_alive)
            }
            ("GET", "/healthz") => {
                let body = health_value(shared).write();
                let _ = write_response_opts(&mut stream, 200, keep_alive, &[], &body);
            }
            ("GET", "/problems") => handle_problems(shared, &mut stream, keep_alive),
            ("POST", "/admin/drain") => {
                handle_drain(shared, &mut stream, &request.body, keep_alive)
            }
            (_, "/solve")
            | (_, "/stream")
            | (_, "/healthz")
            | (_, "/problems")
            | (_, "/admin/drain") => {
                let err = ServeError::new(
                    ServeErrorKind::MethodNotAllowed,
                    format!("{} is not supported on {}", request.method, request.path),
                );
                respond_error(shared, &mut stream, &err, keep_alive, &[]);
            }
            (_, path) => {
                let err = ServeError::new(
                    ServeErrorKind::NotFound,
                    format!(
                        "no such path `{path}`; try POST /solve, POST /stream, GET /problems, \
                         GET /healthz, POST /admin/drain"
                    ),
                );
                respond_error(shared, &mut stream, &err, keep_alive, &[]);
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// `POST /solve`: validate, check the cache, then walk the ring.
fn handle_solve(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8], keep_alive: bool) {
    // Parse with the same envelope code the backends use, so the router
    // rejects malformed requests itself instead of burning a backend
    // attempt on them (and so error shapes match shard-direct calls).
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let err = ServeError::bad_request("request body is not UTF-8");
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let request = match ServeRequest::from_json(text) {
        Ok(r) => r,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let key = witness_key(&request.problem, &request.workload, &request.config);

    if let Some(cached) = shared.cache.get(&key) {
        shared.routed.fetch_add(1, Ordering::SeqCst);
        let _ = write_response_opts(stream, 200, keep_alive, &[("X-RI-Cache", "hit")], &cached);
        return;
    }

    // The ring walk from the key's home shard, restricted to routable
    // backends; `max_attempts` caps how many we burn per request.
    let order = shared.ring.order(&key);
    let candidates: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| shared.backends[i].routable())
        .take(shared.cfg.max_attempts.max(1))
        .collect();
    if candidates.is_empty() {
        let err = ServeError::new(
            ServeErrorKind::Overloaded,
            "no routable shard (all draining or detached); retry later",
        );
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    }

    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(100));
    let last = candidates.len() - 1;
    for (attempt, &index) in candidates.iter().enumerate() {
        let backend = &shared.backends[index];
        backend.begin_request();
        let outcome = proxy_solve(backend, text, timeout);
        backend.end_request();
        match outcome {
            Ok(resp) if resp.status == 200 => {
                record_witness(shared, backend.shard_id(), &key, &resp.body);
                backend.count_served();
                shared.routed.fetch_add(1, Ordering::SeqCst);
                let shard = backend.shard_id().to_string();
                let _ = write_response_opts(
                    stream,
                    200,
                    keep_alive,
                    &[("X-RI-Shard", &shard), ("X-RI-Cache", "miss")],
                    &resp.body,
                );
                return;
            }
            Ok(resp) if attempt < last && retryable_response(&resp) => {
                // The backend shed the request without running it:
                // fail over to the next shard on the ring.
                backend.count_failed();
                shared.retries.fetch_add(1, Ordering::SeqCst);
            }
            Ok(resp) => {
                // A non-retryable error (or a retryable one with no
                // shards left): forward the backend's own envelope.
                shared.errored.fetch_add(1, Ordering::SeqCst);
                let shard = backend.shard_id().to_string();
                let mut extra: Vec<(&str, &str)> = vec![("X-RI-Shard", &shard)];
                if resp.status == 503 {
                    extra.push(("Retry-After", "1"));
                }
                let _ = write_response_opts(stream, resp.status, keep_alive, &extra, &resp.body);
                return;
            }
            Err(_) => {
                // Transport failure: the shard is gone or wedged. Mark it
                // so routing avoids it until a health poll clears it.
                backend.observe(false);
                backend.count_failed();
                if attempt < last {
                    shared.retries.fetch_add(1, Ordering::SeqCst);
                } else {
                    let err = ServeError::new(
                        ServeErrorKind::Overloaded,
                        format!(
                            "every candidate shard failed (tried {}); retry later",
                            candidates.len()
                        ),
                    );
                    respond_error(shared, stream, &err, keep_alive, &[]);
                    return;
                }
            }
        }
    }
    // All candidates answered retryable errors.
    let err = ServeError::new(
        ServeErrorKind::Overloaded,
        format!(
            "every candidate shard shed the request (tried {}); retry later",
            candidates.len()
        ),
    );
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// Proxy one `/solve` to a backend over its pooled keep-alive connection.
fn proxy_solve(backend: &Backend, body: &str, timeout: Duration) -> io::Result<HttpResponse> {
    proxy_request(backend, "POST", "/solve", Some(body), timeout)
}

/// Proxy one request to a backend over its pooled keep-alive connection.
fn proxy_request(
    backend: &Backend,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut conn = backend.checkout(timeout);
    let result = conn.request(method, path, body);
    if result.is_ok() {
        backend.checkin(conn);
    }
    result
}

/// `POST /stream`: assign the session id, pick its home shard by
/// consistent-hashing *the id*, and open it there (failing over along
/// the ring like `/solve` — an open has no state to lose yet).
fn handle_stream_open(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8], keep_alive: bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let err = ServeError::bad_request("request body is not UTF-8");
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    // Validate with the same envelope code the backends use, and take
    // over id assignment: the router must know the id *before* the
    // session exists anywhere, because the id is the routing key.
    let mut spec = match StreamSpec::from_json(text) {
        Ok(s) => s,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let id = spec.session_id.clone().unwrap_or_else(|| {
        format!(
            "rs-{}",
            shared.session_seq.fetch_add(1, Ordering::SeqCst) + 1
        )
    });
    if lock(&shared.sticky).contains_key(&id) {
        let err = ServeError::bad_request(format!("session `{id}` is already open"));
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    }
    spec.session_id = Some(id.clone());
    let open_body = spec.to_json();

    let order = shared.ring.order(&id);
    let candidates: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| shared.backends[i].routable())
        .take(shared.cfg.max_attempts.max(1))
        .collect();
    if candidates.is_empty() {
        let err = ServeError::new(
            ServeErrorKind::Overloaded,
            "no routable shard (all draining or detached); retry later",
        );
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    }

    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(100));
    let last = candidates.len() - 1;
    for (attempt, &index) in candidates.iter().enumerate() {
        let backend = &shared.backends[index];
        backend.begin_request();
        let outcome = proxy_request(backend, "POST", "/stream", Some(&open_body), timeout);
        backend.end_request();
        match outcome {
            Ok(resp) if resp.status == 200 => {
                lock(&shared.sticky).insert(
                    id.clone(),
                    Arc::new(Mutex::new(StickySession {
                        shard: index,
                        open_body,
                        batches: Vec::new(),
                    })),
                );
                let shard = backend.shard_id().to_string();
                let _ = write_response_opts(
                    stream,
                    200,
                    keep_alive,
                    &[("X-RI-Shard", &shard)],
                    &resp.body,
                );
                return;
            }
            Ok(resp) if attempt < last && retryable_response(&resp) => {
                backend.count_failed();
                shared.retries.fetch_add(1, Ordering::SeqCst);
            }
            Ok(resp) => {
                let shard = backend.shard_id().to_string();
                let mut extra: Vec<(&str, &str)> = vec![("X-RI-Shard", &shard)];
                if resp.status == 503 {
                    extra.push(("Retry-After", "1"));
                }
                shared.errored.fetch_add(1, Ordering::SeqCst);
                let _ = write_response_opts(stream, resp.status, keep_alive, &extra, &resp.body);
                return;
            }
            Err(_) => {
                backend.observe(false);
                backend.count_failed();
                if attempt < last {
                    shared.retries.fetch_add(1, Ordering::SeqCst);
                } else {
                    let err = ServeError::new(
                        ServeErrorKind::Overloaded,
                        format!(
                            "every candidate shard failed to open the session (tried {}); \
                             retry later",
                            candidates.len()
                        ),
                    );
                    respond_error(shared, stream, &err, keep_alive, &[]);
                    return;
                }
            }
        }
    }
    let err = ServeError::new(
        ServeErrorKind::Overloaded,
        format!(
            "every candidate shard shed the open (tried {}); retry later",
            candidates.len()
        ),
    );
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// `/stream/<id>[/batch]`: sticky-route to the session's pinned shard,
/// migrating the session first when that shard is gone.
fn handle_stream_session(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) {
    let rest = path.strip_prefix("/stream/").unwrap_or_default();
    let (id, action) = match rest.strip_suffix("/batch") {
        Some(id) => (id, "batch"),
        None => (rest, ""),
    };
    if id.is_empty() || id.contains('/') {
        let err = ServeError::new(
            ServeErrorKind::NotFound,
            format!("no such path `{path}`; stream paths are /stream/<id> and /stream/<id>/batch"),
        );
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    }
    match (method, action) {
        ("POST", "batch") => handle_stream_batch(shared, stream, id, body, keep_alive),
        ("GET", "") => handle_stream_info(shared, stream, id, keep_alive),
        ("DELETE", "") => handle_stream_close(shared, stream, id, keep_alive),
        _ => {
            let err = ServeError::new(
                ServeErrorKind::MethodNotAllowed,
                format!("{method} is not supported on {path}"),
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
        }
    }
}

/// Look up a session's sticky entry (shared so the per-session mutex
/// outlives the map lock).
fn sticky_entry(shared: &Shared, id: &str) -> Option<Arc<Mutex<StickySession>>> {
    lock(&shared.sticky).get(id).cloned()
}

fn respond_no_session(shared: &Shared, stream: &mut TcpStream, id: &str, keep_alive: bool) {
    let err = ServeError::new(
        ServeErrorKind::NotFound,
        format!("no open session `{id}` (closed, evicted, or never opened here)"),
    );
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// `POST /stream/<id>/batch`: serve the batch from the pinned shard. The
/// per-session lock is held across the proxy, so batches within a session
/// are strictly ordered and migration never races a batch. On transport
/// failure (or an unroutable pin) the session is migrated via
/// close-and-replay and the batch retried once on its new home.
fn handle_stream_batch(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    id: &str,
    body: &[u8],
    keep_alive: bool,
) {
    let request = match std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("request body is not UTF-8"))
        .and_then(BatchRequest::from_json)
    {
        Ok(r) => r,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let Some(entry) = sticky_entry(shared, id) else {
        respond_no_session(shared, stream, id, keep_alive);
        return;
    };
    let mut sess = lock(&entry);
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(100));
    let batch_path = format!("/stream/{id}/batch");
    let batch_body = request.to_json();

    // Two tries: the pinned shard, then (after one migration) the new
    // home. A second failure answers 503 — the batch is retryable from
    // the client's side because a failed attempt never advanced state.
    for attempt in 0..2 {
        if !shared.backends[sess.shard].routable() && !migrate_session(shared, id, &mut sess) {
            let err = ServeError::new(
                ServeErrorKind::Overloaded,
                format!("session `{id}` has no routable shard; retry later"),
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
        let backend = &shared.backends[sess.shard];
        backend.begin_request();
        let outcome = proxy_request(backend, "POST", &batch_path, Some(&batch_body), timeout);
        backend.end_request();
        match outcome {
            Ok(resp) if resp.status == 200 => {
                sess.batches.push(request.count);
                backend.count_served();
                shared.stream_batches.fetch_add(1, Ordering::SeqCst);
                record_stream_witness(shared, &sess, id, backend.shard_id(), &resp.body);
                let shard = backend.shard_id().to_string();
                let _ = write_response_opts(
                    stream,
                    200,
                    keep_alive,
                    &[("X-RI-Shard", &shard)],
                    &resp.body,
                );
                return;
            }
            Ok(resp) if attempt == 0 && retryable_response(&resp) => {
                // The shard shed the batch without running it (draining
                // or overloaded): session state did not advance, so
                // close-and-replay on another shard is safe.
                backend.count_failed();
                shared.retries.fetch_add(1, Ordering::SeqCst);
                if migrate_session(shared, id, &mut sess) {
                    continue;
                }
                let err = ServeError::new(
                    ServeErrorKind::Overloaded,
                    format!("session `{id}` has no routable shard; retry later"),
                );
                respond_error(shared, stream, &err, keep_alive, &[]);
                return;
            }
            Ok(resp) => {
                // The shard answered: a structured error the client must
                // see (bad count, overfeed, ...). Never migrate on these —
                // the session is alive and its state did not advance.
                let shard = backend.shard_id().to_string();
                let mut extra: Vec<(&str, &str)> = vec![("X-RI-Shard", &shard)];
                if resp.status == 503 {
                    extra.push(("Retry-After", "1"));
                }
                shared.errored.fetch_add(1, Ordering::SeqCst);
                let _ = write_response_opts(stream, resp.status, keep_alive, &extra, &resp.body);
                return;
            }
            Err(_) => {
                backend.observe(false);
                backend.count_failed();
                if attempt == 0 {
                    shared.retries.fetch_add(1, Ordering::SeqCst);
                    if migrate_session(shared, id, &mut sess) {
                        continue;
                    }
                }
                let err = ServeError::new(
                    ServeErrorKind::Overloaded,
                    format!("session `{id}` lost its shard and could not migrate; retry later"),
                );
                respond_error(shared, stream, &err, keep_alive, &[]);
                return;
            }
        }
    }
}

/// `GET /stream/<id>`: proxy the info read to the pinned shard.
fn handle_stream_info(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str, keep_alive: bool) {
    let Some(entry) = sticky_entry(shared, id) else {
        respond_no_session(shared, stream, id, keep_alive);
        return;
    };
    let sess = lock(&entry);
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.clamp(100, 10_000));
    let backend = &shared.backends[sess.shard];
    match proxy_request(backend, "GET", &format!("/stream/{id}"), None, timeout) {
        Ok(resp) => {
            let shard = backend.shard_id().to_string();
            let _ = write_response_opts(
                stream,
                resp.status,
                keep_alive,
                &[("X-RI-Shard", &shard)],
                &resp.body,
            );
        }
        Err(_) => {
            backend.observe(false);
            let err = ServeError::new(
                ServeErrorKind::Overloaded,
                format!("session `{id}`'s shard did not answer; retry later"),
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
        }
    }
}

/// `DELETE /stream/<id>`: drop the sticky pin and close on the shard.
/// The pin is dropped even when the shard is unreachable — the client
/// wants the session gone, and the shard's own idle TTL will reap the
/// orphan if the shard is merely slow rather than dead.
fn handle_stream_close(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str, keep_alive: bool) {
    let Some(entry) = lock(&shared.sticky).remove(id) else {
        respond_no_session(shared, stream, id, keep_alive);
        return;
    };
    let sess = lock(&entry);
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.clamp(100, 10_000));
    let backend = &shared.backends[sess.shard];
    let shard = backend.shard_id().to_string();
    match proxy_request(backend, "DELETE", &format!("/stream/{id}"), None, timeout) {
        Ok(resp) => {
            let _ = write_response_opts(
                stream,
                resp.status,
                keep_alive,
                &[("X-RI-Shard", &shard)],
                &resp.body,
            );
        }
        Err(_) => {
            backend.observe(false);
            let body = Value::Obj(vec![
                ("session".into(), Value::Str(id.into())),
                ("closed".into(), Value::Bool(true)),
                ("shard_lost".into(), Value::Bool(true)),
            ])
            .write();
            let _ = write_response_opts(stream, 200, keep_alive, &[("X-RI-Shard", &shard)], &body);
        }
    }
}

/// Close-and-replay migration: best-effort close on the old shard, reopen
/// under the same id on the next routable shard along the session's ring
/// walk, and re-feed the recorded batch counts. Determinism makes the
/// rebuilt session bit-identical to the lost one, so re-feeds are
/// internal bookkeeping: they are neither witnessed nor counted as
/// client-served batches. Returns false when no shard could take it
/// (stickiness is kept, so a later batch retries migration).
fn migrate_session(shared: &Shared, id: &str, sess: &mut StickySession) -> bool {
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(100));
    let old = sess.shard;
    let path = format!("/stream/{id}");
    // The old shard may be draining rather than dead: free its slot.
    let _ = proxy_request(&shared.backends[old], "DELETE", &path, None, timeout);
    for &index in &shared.ring.order(id) {
        if index == old || !shared.backends[index].routable() {
            continue;
        }
        let backend = &shared.backends[index];
        match proxy_request(backend, "POST", "/stream", Some(&sess.open_body), timeout) {
            Ok(resp) if resp.status == 200 => {}
            Ok(_) => continue, // admission-full or draining mid-open: next shard
            Err(_) => {
                backend.observe(false);
                continue;
            }
        }
        let refed = sess.batches.iter().all(|&count| {
            let body = format!("{{\"count\":{count}}}");
            matches!(
                proxy_request(backend, "POST", &format!("{path}/batch"), Some(&body), timeout),
                Ok(r) if r.status == 200
            )
        });
        if !refed {
            // Leave the half-rebuilt session to the shard's TTL sweep.
            let _ = proxy_request(backend, "DELETE", &path, None, timeout);
            backend.observe(false);
            continue;
        }
        sess.shard = index;
        shared.sessions_migrated.fetch_add(1, Ordering::SeqCst);
        return true;
    }
    false
}

/// Migrate every session pinned to `index` (drain integration): called
/// after the shard's in-flight requests settle, before it is detached.
fn migrate_shard_sessions(shared: &Shared, index: usize) {
    let pinned: Vec<(String, Arc<Mutex<StickySession>>)> = lock(&shared.sticky)
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect();
    for (id, entry) in pinned {
        let mut sess = lock(&entry);
        if sess.shard == index {
            let _ = migrate_session(shared, &id, &mut sess);
        }
    }
}

/// Persist one client-served stream batch to the witness log: session id,
/// the opening spec (parsed back from the replay body, so it carries the
/// client's own config), the serving shard, and the full delta. `ri
/// witness replay` re-feeds these per session and compares with `==`.
fn record_stream_witness(
    shared: &Shared,
    sess: &StickySession,
    id: &str,
    shard_id: &str,
    body: &str,
) {
    let Some(log) = &shared.witness else { return };
    let (Ok(spec), Ok(delta)) = (
        StreamSpec::from_json(&sess.open_body),
        json::parse(body)
            .map_err(|e| e.to_string())
            .and_then(|v| BatchDelta::from_value(&v).map_err(|e| e.to_string())),
    ) else {
        return; // an unparseable 200 is a backend bug; never witnessed
    };
    let _ = log.append_stream(&StreamBatchRecord {
        session: id.to_string(),
        spec,
        shard: shard_id.to_string(),
        delta,
    });
}

/// Whether a backend's non-200 answer means "never ran, try elsewhere".
/// Trust the envelope's `retryable` field when the body parses; fall
/// back to the status code (503/504) when it does not.
fn retryable_response(resp: &HttpResponse) -> bool {
    match ServeError::from_json(&resp.body) {
        Ok(err) => err.retryable,
        Err(_) => matches!(resp.status, 503 | 504),
    }
}

/// Persist a routed 200 to the witness log (when enabled) and the cache.
/// A body the router cannot parse is a backend bug; it is still returned
/// to the client verbatim but never witnessed or cached.
fn record_witness(shared: &Shared, shard_id: &str, key: &str, body: &str) {
    if let Ok(resp) = ServeResponse::from_json(body) {
        if let Some(log) = &shared.witness {
            let _ = log.append(&WitnessRecord::from_response(&resp, shard_id));
        }
        shared.cache.insert(key, body);
    }
}

/// `GET /problems`: proxied from the first shard that answers — the
/// registry is identical across the fleet by construction.
fn handle_problems(shared: &Shared, stream: &mut TcpStream, keep_alive: bool) {
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.clamp(100, 10_000));
    for backend in &shared.backends {
        if !backend.routable() {
            continue;
        }
        let mut conn = backend.checkout(timeout);
        if let Ok(resp) = conn.request("GET", "/problems", None) {
            backend.checkin(conn);
            let _ = write_response_opts(stream, resp.status, keep_alive, &[], &resp.body);
            return;
        }
        backend.observe(false);
    }
    let err = ServeError::new(ServeErrorKind::Overloaded, "no shard answered /problems");
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// `POST /admin/drain {"shard_id": "..."}`: stop routing to the shard,
/// then (off-thread) wait out its in-flight requests and stop it.
fn handle_drain(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8], keep_alive: bool) {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|t| json::parse(t).ok());
    let shard_id = match parsed
        .as_ref()
        .and_then(|v| v.get("shard_id"))
        .and_then(Value::as_str)
    {
        Some(id) => id.to_string(),
        None => {
            let err = ServeError::bad_request("drain body must be {\"shard_id\": \"...\"}");
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let Some(index) = shared
        .backends
        .iter()
        .position(|b| b.shard_id() == shard_id)
    else {
        let err = ServeError::new(
            ServeErrorKind::NotFound,
            format!("no shard named `{shard_id}`"),
        );
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    };

    let already = !shared.backends[index].begin_drain();
    if !already {
        // Finish the drain off-thread: new requests already avoid the
        // shard; once its in-flight count hits zero it is detached (and
        // a spawned child killed).
        let drain_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name(format!("ri-router-drain-{shard_id}"))
            .spawn(move || {
                let backend = &drain_shared.backends[index];
                let t0 = Instant::now();
                while backend.inflight() > 0 && t0.elapsed() < Duration::from_secs(300) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                // The shard is quiet and unroutable but still up: move
                // its streaming sessions somewhere routable while the
                // old copies can still be closed gracefully.
                migrate_shard_sessions(&drain_shared, index);
                backend.detach();
            });
    }
    let body = Value::Obj(vec![
        ("status".into(), Value::Str("draining".into())),
        ("shard_id".into(), Value::Str(shard_id)),
        ("already_draining".into(), Value::Bool(already)),
    ])
    .write();
    let _ = write_response_opts(stream, 200, keep_alive, &[], &body);
}

fn respond_error(
    shared: &Shared,
    stream: &mut impl io::Write,
    err: &ServeError,
    keep_alive: bool,
    extra: &[(&str, &str)],
) {
    shared.errored.fetch_add(1, Ordering::SeqCst);
    let status = err.http_status();
    let mut headers: Vec<(&str, &str)> = extra.to_vec();
    if status == 503 {
        headers.push(("Retry-After", "1"));
    }
    let _ = write_response_opts(stream, status, keep_alive, &headers, &err.to_json());
}

/// The router's `/healthz`: the cluster view. `status` is `ok` when every
/// routable shard is healthy, `degraded` when at least one healthy shard
/// remains, `down` when none does (draining reports `draining`).
fn health_value(shared: &Shared) -> Value {
    let mut shards = Vec::with_capacity(shared.backends.len());
    let mut healthy = 0usize;
    let mut routable = 0usize;
    for backend in &shared.backends {
        let state = backend.state();
        if backend.routable() {
            routable += 1;
        }
        if state == BackendState::Healthy {
            healthy += 1;
        }
        shards.push(Value::Obj(vec![
            ("shard_id".into(), Value::Str(backend.shard_id().into())),
            ("addr".into(), Value::Str(backend.addr().to_string())),
            ("state".into(), Value::Str(state.as_str().into())),
            ("inflight".into(), Value::Num(backend.inflight() as f64)),
            ("served".into(), Value::Num(backend.served() as f64)),
            ("failed".into(), Value::Num(backend.failed() as f64)),
            (
                "sessions_open".into(),
                Value::Num(backend.sessions_open() as f64),
            ),
            (
                "batches_served".into(),
                Value::Num(backend.batches_served() as f64),
            ),
        ]));
    }
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else if healthy == routable && routable > 0 {
        "ok"
    } else if healthy > 0 {
        "degraded"
    } else {
        "down"
    };
    let witness = match &shared.witness {
        Some(log) => Value::Obj(vec![
            ("path".into(), Value::Str(log.path().display().to_string())),
            ("appended".into(), Value::Num(log.appended() as f64)),
        ]),
        None => Value::Null,
    };
    Value::Obj(vec![
        ("status".into(), Value::Str(status.into())),
        (
            "version".into(),
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("shards".into(), Value::Arr(shards)),
        (
            "routed".into(),
            Value::Num(shared.routed.load(Ordering::SeqCst) as f64),
        ),
        (
            "retries".into(),
            Value::Num(shared.retries.load(Ordering::SeqCst) as f64),
        ),
        (
            "errored".into(),
            Value::Num(shared.errored.load(Ordering::SeqCst) as f64),
        ),
        (
            "sessions".into(),
            Value::Obj(vec![
                ("open".into(), Value::Num(lock(&shared.sticky).len() as f64)),
                (
                    "migrated".into(),
                    Value::Num(shared.sessions_migrated.load(Ordering::SeqCst) as f64),
                ),
                (
                    "stream_batches".into(),
                    Value::Num(shared.stream_batches.load(Ordering::SeqCst) as f64),
                ),
            ]),
        ),
        (
            "cache".into(),
            Value::Obj(vec![
                ("hits".into(), Value::Num(shared.cache.hits() as f64)),
                ("misses".into(), Value::Num(shared.cache.misses() as f64)),
                ("size".into(), Value::Num(shared.cache.len() as f64)),
            ]),
        ),
        ("witness".into(), witness),
    ])
}
