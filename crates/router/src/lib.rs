//! # `ri-router` — the sharded front tier over `ri-serve` backends
//!
//! A std-only, `#![forbid(unsafe_code)]` HTTP router that turns N
//! `ri-serve` processes into one deterministic serving surface:
//!
//! * **Consistent-hash routing** — `POST /solve` hashes the request's
//!   determinism key (problem, workload, seed, mode — the witness key)
//!   onto a virtual-node ring ([`ring::HashRing`]); the walk order from
//!   that point is both the home-shard assignment and the failover
//!   sequence.
//! * **Health-checked backends** — a poller aggregates per-shard
//!   `GET /healthz` (verifying each shard answers with the expected
//!   `shard_id`) into the cluster view the router's own `/healthz`
//!   serves.
//! * **Retry with breakers, backoff, and deadlines** — a shard that
//!   answers a *retryable* error (`503`/`504`: the solve never ran) or
//!   fails at the transport level is failed over to the next distinct
//!   shard on the ring. Safe by construction: every solve is
//!   deterministic and side-effect-free, so a retry can never
//!   double-apply anything. Each shard sits behind a per-shard
//!   [`breaker::CircuitBreaker`] (closed → open on a failure-rate
//!   window → half-open probe), so a misbehaving shard is shed from the
//!   walk instead of burning a timeout per request; retry attempts are
//!   spaced by exponential backoff with deterministic jitter (floored
//!   by the shard's own `Retry-After` hint); and every request carries
//!   a deadline budget — `X-RI-Deadline-Ms` at ingress (defaulting to
//!   `request_timeout_ms`), decremented per hop and per retry and
//!   forwarded to the shards, answering a structured `504` when
//!   exhausted instead of burning a full timeout per attempt.
//! * **Sticky streaming sessions** — `POST /stream` assigns the session
//!   an id (`rs-<seq>` unless the client names one), consistent-hashes
//!   *the id* onto the ring, and pins every later `/stream/<id>/...`
//!   request to that shard. Because sessions are deterministic replayable
//!   state (a fixed [`StreamSpec`] plus the batch counts served so far),
//!   a dead or draining shard is survivable: the router *migrates* the
//!   session — close on the old shard (best-effort), reopen under the
//!   same id on the next routable shard, re-feed the recorded batch
//!   counts — and the rebuilt session is bit-identical to the lost one.
//!   Re-fed batches are never re-witnessed; only client-served batches
//!   land in the log.
//! * **Drain** — `POST /admin/drain {"shard_id": ...}` stops routing to
//!   a shard, waits out its in-flight requests, migrates its streaming
//!   sessions to surviving shards, then stops it (killing the child when
//!   the router spawned it).
//! * **The witness log + result cache** — every 200 routed is persisted
//!   as a [`WitnessRecord`] (`{request, seed, shard, answer, trace}`)
//!   and its body cached under the witness key. `ri witness replay`
//!   re-executes the log anywhere and asserts bit-identical answers and
//!   round traces — the cross-shard determinism gate; the cache serves
//!   repeat keys without compute (`X-RI-Cache: hit`), sound for exactly
//!   the same reason replay is.
//!
//! The router itself is thread-per-connection with keep-alive, no solve
//! queue of its own — admission control lives in the backends, whose
//! `503 overloaded` the router converts into failover rather than
//! client-visible failure (until every shard has shed it).

#![forbid(unsafe_code)]

pub mod backend;
pub mod breaker;
pub mod cache;
pub mod ring;

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ri_core::engine::envelope::{ServeError, ServeErrorKind, ServeRequest, ServeResponse};
use ri_core::engine::faults::{backoff_jitter_ms, DEADLINE_HEADER, RETRY_AFTER_MS_HEADER};
use ri_core::engine::json::{self, Value};
use ri_core::engine::session::{BatchDelta, BatchRequest, StreamSpec};
use ri_core::engine::witness::{witness_key, StreamBatchRecord, WitnessLog, WitnessRecord};
use ri_serve::http::{
    read_request_buffered, write_response_opts, ClientConn, HttpResponse, ReadError,
};

pub use backend::{Backend, BackendSpec, BackendState, BackendTarget};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::ResultCache;
pub use ring::HashRing;

/// Router tuning knobs; every field defaults to something sensible for
/// a small local fleet.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address, `host:port` (`port` 0 = ephemeral).
    pub addr: String,
    /// Virtual points per shard on the hash ring.
    pub replicas: usize,
    /// Maximum *distinct shards* tried per `/solve` before answering
    /// `503` (clamped to the shard count).
    pub max_attempts: usize,
    /// Health-poll period.
    pub health_interval_ms: u64,
    /// Timeout for connect + each read/write on a proxied request. This
    /// bounds a whole backend solve, so it is generous by default.
    pub request_timeout_ms: u64,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Append witness records here (`None` disables witnessing).
    pub witness_path: Option<PathBuf>,
    /// Maximum accepted request body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum simultaneous connection-handler threads.
    pub max_connections: usize,
    /// Per-shard circuit breaker: sliding-window size in outcomes.
    pub breaker_window: usize,
    /// Per-shard circuit breaker: minimum failures in the window before
    /// it may open (failures must also be ≥ half the window).
    pub breaker_min_failures: usize,
    /// Per-shard circuit breaker: cooldown (ms) an open breaker sheds
    /// traffic before allowing a half-open probe.
    pub breaker_open_ms: u64,
    /// Backoff before retry attempt k: `base · 2^(k-1)` plus
    /// deterministic jitter in `[0, base)`, capped at `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    /// Upper bound (ms) on any single inter-retry backoff sleep.
    pub backoff_cap_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 32,
            max_attempts: 3,
            health_interval_ms: 500,
            request_timeout_ms: 120_000,
            cache_capacity: 256,
            witness_path: None,
            max_body_bytes: 1 << 20,
            max_connections: 256,
            breaker_window: 16,
            breaker_min_failures: 5,
            breaker_open_ms: 500,
            backoff_base_ms: 25,
            backoff_cap_ms: 1_000,
        }
    }
}

/// The router's record of one pinned streaming session: which shard owns
/// it, the exact open body to replay it from, and the batch counts served
/// so far. Together these rebuild the session bit-identically anywhere —
/// the whole basis of close-and-replay migration.
struct StickySession {
    /// Index into `Shared::backends` of the shard holding the session.
    shard: usize,
    /// The forwarded open body (client's spec + the assigned
    /// `session_id`), replayed verbatim on migration.
    open_body: String,
    /// Counts of the batches served to the client, in order.
    batches: Vec<usize>,
    /// Shard-side state is unknown: a batch's response was lost in
    /// transit, so the batch may or may not have executed on the shard.
    /// The session must be rebuilt (close-and-replay, restoring exactly
    /// `batches`) before another batch may run — proxying to a dirty
    /// session could double-execute the lost batch and skew the delta
    /// sequence the client observes.
    dirty: bool,
}

struct Shared {
    cfg: RouterConfig,
    backends: Vec<Backend>,
    ring: HashRing,
    cache: ResultCache,
    witness: Option<WitnessLog>,
    /// Open streaming sessions pinned to shards. The per-session mutex
    /// serializes batches (and migration) within a session; distinct
    /// sessions never contend past the brief map lookup.
    sticky: Mutex<HashMap<String, Arc<Mutex<StickySession>>>>,
    /// Sequence for router-assigned session ids (`rs-<seq>`).
    session_seq: AtomicU64,
    /// Sessions rebuilt on another shard via close-and-replay.
    sessions_migrated: AtomicU64,
    /// Stream batches answered 200 to clients (migration re-feeds are
    /// internal and not counted).
    stream_batches: AtomicU64,
    /// `/solve` requests answered 200 (cache hits included).
    routed: AtomicU64,
    /// Failover attempts: a shard was tried and the request moved on.
    retries: AtomicU64,
    /// `/solve` requests answered with an error envelope.
    errored: AtomicU64,
    /// Requests answered `504` because their deadline budget ran out.
    deadline_expired: AtomicU64,
    /// Inter-retry backoff sleeps taken.
    backoff_sleeps: AtomicU64,
    /// Total milliseconds spent in inter-retry backoff sleeps.
    backoff_total_ms: AtomicU64,
    draining: AtomicBool,
    connections: AtomicUsize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running router: owns the acceptor and health-poller threads plus
/// every backend handle (spawned children die with it).
pub struct Router {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Resolve every backend spec (spawning children where asked), build
    /// the ring, bind, and start the acceptor + health poller.
    pub fn start(cfg: RouterConfig, specs: Vec<BackendSpec>) -> io::Result<Router> {
        if specs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let mut ids: Vec<&str> = specs.iter().map(|s| s.shard_id.as_str()).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "backend shard ids must be unique",
            ));
        }

        let mut backends = Vec::with_capacity(specs.len());
        for spec in &specs {
            let backend = match &spec.target {
                BackendTarget::Attach(addr) => Backend::attach(&spec.shard_id, *addr),
                BackendTarget::Spawn {
                    serve_bin,
                    threads,
                    executors,
                } => Backend::spawn(&spec.shard_id, serve_bin, *threads, *executors)?,
            };
            backends.push(backend);
        }

        let shard_ids: Vec<String> = backends.iter().map(|b| b.shard_id().to_string()).collect();
        let ring = HashRing::new(&shard_ids, cfg.replicas);
        let witness = match &cfg.witness_path {
            Some(path) => Some(WitnessLog::open(path)?),
            None => None,
        };

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ResultCache::new(cfg.cache_capacity),
            witness,
            ring,
            backends,
            sticky: Mutex::new(HashMap::new()),
            session_seq: AtomicU64::new(0),
            sessions_migrated: AtomicU64::new(0),
            stream_batches: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            errored: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            backoff_sleeps: AtomicU64::new(0),
            backoff_total_ms: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            cfg,
        });

        // Backends are built with default breaker tunables; apply the
        // router's configured ones now that cfg is settled.
        let breaker_cfg = BreakerConfig {
            window: shared.cfg.breaker_window.max(1),
            min_failures: shared.cfg.breaker_min_failures.max(1),
            open_ms: shared.cfg.breaker_open_ms,
        };
        for backend in &shared.backends {
            backend.breaker().reconfigure(breaker_cfg.clone());
        }

        // Prime the health view synchronously once, so requests arriving
        // right after start() don't race an all-Unknown fleet.
        poll_health_once(&shared);

        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ri-router-health".into())
                .spawn(move || health_loop(&shared))
                .expect("spawning the health thread")
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ri-router-accept".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawning the acceptor thread")
        };

        Ok(Router {
            shared,
            addr,
            acceptor: Some(acceptor),
            health: Some(health),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live backend handles, in spec order.
    pub fn backends(&self) -> &[Backend] {
        &self.shared.backends
    }

    /// Failover attempts so far.
    pub fn retries(&self) -> u64 {
        self.shared.retries.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, join the poller, detach every
    /// backend (killing spawned children).
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let woken =
            (0..3).any(|_| TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)).is_ok());
        if let Some(acceptor) = self.acceptor.take() {
            if woken {
                let _ = acceptor.join();
            }
        }
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
        let t0 = Instant::now();
        while self.shared.connections.load(Ordering::SeqCst) > 0
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        for backend in &self.shared.backends {
            backend.detach();
        }
    }
}

fn health_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.cfg.health_interval_ms.max(10));
    while !shared.draining.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        poll_health_once(shared);
    }
}

/// One health sweep: `GET /healthz` against every still-routable shard.
/// A response only counts as healthy if it parses and, when the shard
/// advertises an id, that id matches what the router expects — catching
/// port reuse and misconfigured fleets, not just dead sockets.
fn poll_health_once(shared: &Shared) {
    // Health checks use a short timeout: /healthz is served off the
    // connection thread and never waits behind solves.
    let timeout = Duration::from_millis(shared.cfg.health_interval_ms.clamp(10, 2_000));
    for backend in &shared.backends {
        if matches!(
            backend.state(),
            BackendState::Draining | BackendState::Detached
        ) {
            continue;
        }
        let mut conn = ClientConn::new(backend.addr(), timeout);
        let healthy = match conn.request("GET", "/healthz", None) {
            Ok(resp) if resp.status == 200 => match json::parse(&resp.body) {
                Ok(v) => {
                    // Fold the shard's self-reported session stats into
                    // the router's cluster view while we're here.
                    let stat = |key: &str| {
                        v.get(key).and_then(Value::as_f64).unwrap_or(0.0).max(0.0) as u64
                    };
                    backend.record_session_stats(stat("sessions_open"), stat("batches_served"));
                    match v.get("shard_id").and_then(Value::as_str) {
                        Some(id) if !id.is_empty() => id == backend.shard_id(),
                        _ => true, // a shard that doesn't name itself is trusted
                    }
                }
                Err(_) => false,
            },
            _ => false,
        };
        backend.observe(healthy);
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            reject_connection(shared, stream, "router is draining");
            break;
        }
        if shared.connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            reject_connection(shared, stream, "connection limit reached; retry later");
            continue;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ri-router-conn".into())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn reject_connection(shared: &Shared, mut stream: TcpStream, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    respond_error(
        shared,
        &mut stream,
        &ServeError::new(ServeErrorKind::Overloaded, why),
        false,
        &[],
    );
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Socket timeouts are derived from the configured request budget
    // (floored at 10 s for idle keep-alive reads) — a fleet tuned for
    // long solves must not have the router's own sockets cut them short.
    let io_timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(10_000));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);

    let mut carry = Vec::new();
    loop {
        let request =
            match read_request_buffered(&mut stream, &mut carry, shared.cfg.max_body_bytes) {
                Ok(r) => r,
                Err(e) => {
                    let err = match e {
                        ReadError::Closed | ReadError::Io(_) => return,
                        ReadError::BodyTooLarge {
                            declared, limit, ..
                        } => ServeError::new(
                            ServeErrorKind::BodyTooLarge,
                            format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                        ),
                        ReadError::BadRequest(msg) => ServeError::bad_request(msg),
                    };
                    respond_error(shared, &mut stream, &err, false, &[]);
                    return;
                }
            };

        let keep_alive = request.keep_alive() && !shared.draining.load(Ordering::SeqCst);
        // The end-to-end deadline budget for this request: the client's
        // `X-RI-Deadline-Ms` when present (clamped to the router's own
        // ceiling), else the configured request timeout. Decremented
        // across retries and forwarded to the shards.
        let budget_ms = request
            .header(DEADLINE_HEADER)
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map_or(shared.cfg.request_timeout_ms, |b| {
                b.min(shared.cfg.request_timeout_ms)
            });
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/solve") => {
                handle_solve(shared, &mut stream, &request.body, keep_alive, budget_ms)
            }
            ("POST", "/stream") => {
                handle_stream_open(shared, &mut stream, &request.body, keep_alive, budget_ms)
            }
            (method, path) if path.strip_prefix("/stream/").is_some_and(|r| !r.is_empty()) => {
                handle_stream_session(
                    shared,
                    &mut stream,
                    method,
                    path,
                    &request.body,
                    keep_alive,
                    budget_ms,
                )
            }
            ("GET", "/healthz") => {
                let body = health_value(shared).write();
                let _ = write_response_opts(&mut stream, 200, keep_alive, &[], &body);
            }
            ("GET", "/problems") => handle_problems(shared, &mut stream, keep_alive),
            ("POST", "/admin/drain") => {
                handle_drain(shared, &mut stream, &request.body, keep_alive)
            }
            (_, "/solve")
            | (_, "/stream")
            | (_, "/healthz")
            | (_, "/problems")
            | (_, "/admin/drain") => {
                let err = ServeError::new(
                    ServeErrorKind::MethodNotAllowed,
                    format!("{} is not supported on {}", request.method, request.path),
                );
                respond_error(shared, &mut stream, &err, keep_alive, &[]);
            }
            (_, path) => {
                let err = ServeError::new(
                    ServeErrorKind::NotFound,
                    format!(
                        "no such path `{path}`; try POST /solve, POST /stream, GET /problems, \
                         GET /healthz, POST /admin/drain"
                    ),
                );
                respond_error(shared, &mut stream, &err, keep_alive, &[]);
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// `POST /solve`: validate, check the cache, then walk the ring under
/// breaker gating, backoff, and the request's deadline budget.
fn handle_solve(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    body: &[u8],
    keep_alive: bool,
    budget_ms: u64,
) {
    // Parse with the same envelope code the backends use, so the router
    // rejects malformed requests itself instead of burning a backend
    // attempt on them (and so error shapes match shard-direct calls).
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let err = ServeError::bad_request("request body is not UTF-8");
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let request = match ServeRequest::from_json(text) {
        Ok(r) => r,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let key = witness_key(&request.problem, &request.workload, &request.config);

    if let Some(cached) = shared.cache.get(&key) {
        shared.routed.fetch_add(1, Ordering::SeqCst);
        let _ = write_response_opts(stream, 200, keep_alive, &[("X-RI-Cache", "hit")], &cached);
        return;
    }

    match walk_ring(shared, &key, "POST", "/solve", Some(text), budget_ms) {
        WalkOutcome::Served { index, resp } => {
            let backend = &shared.backends[index];
            record_witness(shared, backend.shard_id(), &key, &resp.body);
            backend.count_served();
            shared.routed.fetch_add(1, Ordering::SeqCst);
            let shard = backend.shard_id().to_string();
            let _ = write_response_opts(
                stream,
                200,
                keep_alive,
                &[("X-RI-Shard", &shard), ("X-RI-Cache", "miss")],
                &resp.body,
            );
        }
        WalkOutcome::Forward { index, resp } => {
            forward_response(shared, stream, index, &resp, keep_alive);
        }
        WalkOutcome::Exhausted { sent, hint_ms } => {
            respond_exhausted(shared, stream, sent, hint_ms, keep_alive, "the request");
        }
        WalkOutcome::DeadlineExpired => {
            respond_deadline_expired(shared, stream, budget_ms, keep_alive);
        }
        WalkOutcome::NoCandidates => {
            let err = ServeError::new(
                ServeErrorKind::Overloaded,
                "no routable shard (all draining or detached); retry later",
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
        }
    }
}

/// Outcome of one breaker-gated, deadline-bounded ring walk.
enum WalkOutcome {
    /// A shard answered 200.
    Served {
        /// Index into `Shared::backends` of the serving shard.
        index: usize,
        /// The shard's response.
        resp: HttpResponse,
    },
    /// A shard answered a structured error the client must see: either
    /// non-retryable, or retryable but the walk ran out of attempts —
    /// forward the shard's own envelope rather than synthesizing one.
    Forward { index: usize, resp: HttpResponse },
    /// Every admitted attempt failed at the transport level (or every
    /// routable shard's breaker shed the request: `sent == 0`).
    Exhausted {
        /// Attempts actually proxied.
        sent: usize,
        /// The freshest shard `Retry-After` hint (ms), when one arrived.
        hint_ms: Option<u64>,
    },
    /// The deadline budget ran out before any shard answered.
    DeadlineExpired,
    /// No routable backend exists at all.
    NoCandidates,
}

/// Walk the ring from `ring_key`'s home shard: skip unroutable shards
/// and open breakers, space retry attempts by deterministic backoff
/// (floored by shard `Retry-After` hints), bound everything by the
/// deadline budget, and forward the *remaining* budget to each shard so
/// the whole chain shares one clock. Records every admitted attempt's
/// outcome into the shard's breaker.
fn walk_ring(
    shared: &Shared,
    ring_key: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    budget_ms: u64,
) -> WalkOutcome {
    let t0 = Instant::now();
    let budget = Duration::from_millis(budget_ms);
    let jitter_key = ring::fnv1a(ring_key.as_bytes());
    let max_attempts = shared.cfg.max_attempts.max(1);
    let mut sent = 0usize;
    let mut hint_ms: Option<u64> = None;
    let mut saw_routable = false;
    let mut last_retryable: Option<(usize, HttpResponse)> = None;

    for &index in &shared.ring.order(ring_key) {
        if sent >= max_attempts {
            break;
        }
        let backend = &shared.backends[index];
        if !backend.routable() {
            continue;
        }
        saw_routable = true;
        if sent > 0 {
            // Space this retry out instead of hammering the next shard
            // the instant the previous one failed; the sleep never
            // overruns the remaining budget.
            let delay = backoff_delay_ms(&shared.cfg, jitter_key, sent as u32, hint_ms);
            let remaining = budget.saturating_sub(t0.elapsed());
            if remaining.is_zero() {
                return WalkOutcome::DeadlineExpired;
            }
            let sleep = Duration::from_millis(delay).min(remaining);
            if !sleep.is_zero() {
                shared.backoff_sleeps.fetch_add(1, Ordering::SeqCst);
                shared
                    .backoff_total_ms
                    .fetch_add(sleep.as_millis() as u64, Ordering::SeqCst);
                std::thread::sleep(sleep);
            }
        }
        let remaining = budget.saturating_sub(t0.elapsed());
        if remaining < Duration::from_millis(1) {
            return WalkOutcome::DeadlineExpired;
        }
        // Admission is checked *after* the deadline so a half-open
        // probe slot is never claimed and then abandoned unsent.
        if backend.breaker().admit() == Admission::Shed {
            continue;
        }
        if sent > 0 {
            shared.retries.fetch_add(1, Ordering::SeqCst);
        }
        let attempt_timeout = remaining.min(Duration::from_millis(
            shared.cfg.request_timeout_ms.max(100),
        ));
        let forwarded = remaining.as_millis().min(u64::MAX as u128) as u64;
        let deadline_hdr = forwarded.to_string();
        backend.begin_request();
        let outcome = proxy_request_opts(
            backend,
            method,
            path,
            body,
            attempt_timeout,
            &[(DEADLINE_HEADER, &deadline_hdr)],
            true,
        );
        backend.end_request();
        sent += 1;
        match outcome {
            Ok(resp) if resp.status == 200 => {
                backend.breaker().record(true);
                return WalkOutcome::Served { index, resp };
            }
            Ok(resp) if retryable_response(&resp) => {
                // The shard shed the request without running it: note
                // its retry hint and fail over along the ring.
                backend.breaker().record(false);
                backend.count_failed();
                hint_ms = retry_hint_ms(&resp).or(hint_ms);
                last_retryable = Some((index, resp));
            }
            Ok(resp) => {
                // A non-retryable error: the shard is responsive (the
                // breaker sees success) and the client must see it.
                backend.breaker().record(true);
                return WalkOutcome::Forward { index, resp };
            }
            Err(_) => {
                // Transport failure: the shard is gone or wedged. Mark
                // it so routing avoids it until a health poll clears it.
                backend.breaker().record(false);
                backend.observe(false);
                backend.count_failed();
            }
        }
    }
    if let Some((index, resp)) = last_retryable {
        // Out of attempts with a structured retryable envelope in hand:
        // forward the shard's own answer (it carries the best hint).
        return WalkOutcome::Forward { index, resp };
    }
    if !saw_routable {
        return WalkOutcome::NoCandidates;
    }
    WalkOutcome::Exhausted { sent, hint_ms }
}

/// The deterministic inter-retry backoff: `base · 2^(k-1)` plus seeded
/// jitter in `[0, base)`, capped at `backoff_cap_ms`, then floored by
/// the shard's own `Retry-After` hint (itself capped, so a pathological
/// hint cannot eat the whole budget sleeping).
fn backoff_delay_ms(
    cfg: &RouterConfig,
    jitter_key: u64,
    attempt: u32,
    hint_ms: Option<u64>,
) -> u64 {
    let base = cfg.backoff_base_ms;
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
    let jitter = backoff_jitter_ms(jitter_key, attempt, base);
    let hint = hint_ms.unwrap_or(0).min(cfg.backoff_cap_ms);
    exp.saturating_add(jitter).min(cfg.backoff_cap_ms).max(hint)
}

/// A shard's retry hint in milliseconds: the ms-precision
/// `X-RI-Retry-After-Ms` when present, else `Retry-After` seconds.
fn retry_hint_ms(resp: &HttpResponse) -> Option<u64> {
    if let Some(ms) = resp
        .header(RETRY_AFTER_MS_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        return Some(ms);
    }
    resp.header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|secs| secs.saturating_mul(1000))
}

/// Forward a shard's own error envelope to the client, preserving its
/// retry hints (or supplying the legacy `Retry-After: 1` when the shard
/// sent none) and naming the shard.
fn forward_response(
    shared: &Shared,
    stream: &mut TcpStream,
    index: usize,
    resp: &HttpResponse,
    keep_alive: bool,
) {
    shared.errored.fetch_add(1, Ordering::SeqCst);
    if resp.status == 504 {
        shared.deadline_expired.fetch_add(1, Ordering::SeqCst);
    }
    let shard = shared.backends[index].shard_id().to_string();
    let mut extra: Vec<(&str, &str)> = vec![("X-RI-Shard", &shard)];
    if resp.status == 503 {
        extra.push(("Retry-After", resp.header("retry-after").unwrap_or("1")));
        if let Some(ms) = resp.header(RETRY_AFTER_MS_HEADER) {
            extra.push((RETRY_AFTER_MS_HEADER, ms));
        }
    }
    let _ = write_response_opts(stream, resp.status, keep_alive, &extra, &resp.body);
}

/// Answer the synthesized 503 for a walk that ran dry: either every
/// admitted attempt failed at the transport level, or (with `sent == 0`)
/// every routable shard's breaker was open.
fn respond_exhausted(
    shared: &Shared,
    stream: &mut TcpStream,
    sent: usize,
    hint_ms: Option<u64>,
    keep_alive: bool,
    what: &str,
) {
    let err = if sent == 0 {
        ServeError::new(
            ServeErrorKind::Overloaded,
            format!("every routable shard's circuit breaker is open for {what}; retry later"),
        )
    } else {
        ServeError::new(
            ServeErrorKind::Overloaded,
            format!("every candidate shard failed {what} (tried {sent}); retry later"),
        )
    };
    let hint = hint_ms.unwrap_or(1_000);
    let secs = hint.div_ceil(1000).max(1).to_string();
    let ms = hint.to_string();
    respond_error(
        shared,
        stream,
        &err,
        keep_alive,
        &[("Retry-After", &secs), (RETRY_AFTER_MS_HEADER, &ms)],
    );
}

/// Answer the structured 504 for an exhausted deadline budget.
fn respond_deadline_expired(
    shared: &Shared,
    stream: &mut TcpStream,
    budget_ms: u64,
    keep_alive: bool,
) {
    let err = ServeError::new(
        ServeErrorKind::DeadlineExceeded,
        format!("deadline budget of {budget_ms} ms exhausted before any shard answered"),
    );
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// Proxy one idempotent request to a backend over its pooled keep-alive
/// connection (stale-connection retry enabled).
fn proxy_request(
    backend: &Backend,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    proxy_request_opts(backend, method, path, body, timeout, &[], true)
}

/// Proxy one request to a backend over its pooled keep-alive connection,
/// with extra headers (the forwarded deadline budget) and explicit
/// stale-retry control — `retry_stale: false` for non-idempotent
/// requests (stream batches), where a blind re-send on a half-written
/// pooled connection could execute the batch twice.
fn proxy_request_opts(
    backend: &Backend,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    extra: &[(&str, &str)],
    retry_stale: bool,
) -> io::Result<HttpResponse> {
    let mut conn = backend.checkout(timeout);
    let result = conn.request_with(method, path, body, extra, retry_stale);
    if result.is_ok() {
        backend.checkin(conn);
    }
    result
}

/// `POST /stream`: assign the session id, pick its home shard by
/// consistent-hashing *the id*, and open it there (failing over along
/// the ring like `/solve` — an open has no state to lose yet, so it
/// shares the breaker/backoff/deadline walk).
fn handle_stream_open(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    body: &[u8],
    keep_alive: bool,
    budget_ms: u64,
) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let err = ServeError::bad_request("request body is not UTF-8");
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    // Validate with the same envelope code the backends use, and take
    // over id assignment: the router must know the id *before* the
    // session exists anywhere, because the id is the routing key.
    let mut spec = match StreamSpec::from_json(text) {
        Ok(s) => s,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let id = spec.session_id.clone().unwrap_or_else(|| {
        format!(
            "rs-{}",
            shared.session_seq.fetch_add(1, Ordering::SeqCst) + 1
        )
    });
    if lock(&shared.sticky).contains_key(&id) {
        let err = ServeError::bad_request(format!("session `{id}` is already open"));
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    }
    spec.session_id = Some(id.clone());
    let open_body = spec.to_json();

    match walk_ring(shared, &id, "POST", "/stream", Some(&open_body), budget_ms) {
        WalkOutcome::Served { index, resp } => {
            lock(&shared.sticky).insert(
                id.clone(),
                Arc::new(Mutex::new(StickySession {
                    shard: index,
                    open_body,
                    batches: Vec::new(),
                    dirty: false,
                })),
            );
            let shard = shared.backends[index].shard_id().to_string();
            let _ = write_response_opts(
                stream,
                200,
                keep_alive,
                &[("X-RI-Shard", &shard)],
                &resp.body,
            );
        }
        WalkOutcome::Forward { index, resp } => {
            forward_response(shared, stream, index, &resp, keep_alive);
        }
        WalkOutcome::Exhausted { sent, hint_ms } => {
            respond_exhausted(
                shared,
                stream,
                sent,
                hint_ms,
                keep_alive,
                "the session open",
            );
        }
        WalkOutcome::DeadlineExpired => {
            respond_deadline_expired(shared, stream, budget_ms, keep_alive);
        }
        WalkOutcome::NoCandidates => {
            let err = ServeError::new(
                ServeErrorKind::Overloaded,
                "no routable shard (all draining or detached); retry later",
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
        }
    }
}

/// `/stream/<id>[/batch]`: sticky-route to the session's pinned shard,
/// migrating the session first when that shard is gone.
fn handle_stream_session(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
    budget_ms: u64,
) {
    let rest = path.strip_prefix("/stream/").unwrap_or_default();
    let (id, action) = match rest.strip_suffix("/batch") {
        Some(id) => (id, "batch"),
        None => (rest, ""),
    };
    if id.is_empty() || id.contains('/') {
        let err = ServeError::new(
            ServeErrorKind::NotFound,
            format!("no such path `{path}`; stream paths are /stream/<id> and /stream/<id>/batch"),
        );
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    }
    match (method, action) {
        ("POST", "batch") => handle_stream_batch(shared, stream, id, body, keep_alive, budget_ms),
        ("GET", "") => handle_stream_info(shared, stream, id, keep_alive),
        ("DELETE", "") => handle_stream_close(shared, stream, id, keep_alive),
        _ => {
            let err = ServeError::new(
                ServeErrorKind::MethodNotAllowed,
                format!("{method} is not supported on {path}"),
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
        }
    }
}

/// Look up a session's sticky entry (shared so the per-session mutex
/// outlives the map lock).
fn sticky_entry(shared: &Shared, id: &str) -> Option<Arc<Mutex<StickySession>>> {
    lock(&shared.sticky).get(id).cloned()
}

fn respond_no_session(shared: &Shared, stream: &mut TcpStream, id: &str, keep_alive: bool) {
    let err = ServeError::new(
        ServeErrorKind::NotFound,
        format!("no open session `{id}` (closed, evicted, or never opened here)"),
    );
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// `POST /stream/<id>/batch`: serve the batch from the pinned shard. The
/// per-session lock is held across the proxy, so batches within a session
/// are strictly ordered and migration never races a batch. On transport
/// failure (or an unroutable pin) the session is migrated via
/// close-and-replay and the batch retried once on its new home.
///
/// A batch is **non-idempotent** (it advances session state), so it is
/// proxied with the stale-connection retry disabled: a half-written
/// request on a stale pooled connection surfaces as a transport error
/// and recovery goes through close-and-replay migration — which rebuilds
/// the *pre-batch* state, making the router-level retry safe — never
/// through a blind re-send that could execute the batch twice.
fn handle_stream_batch(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    id: &str,
    body: &[u8],
    keep_alive: bool,
    budget_ms: u64,
) {
    let request = match std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("request body is not UTF-8"))
        .and_then(BatchRequest::from_json)
    {
        Ok(r) => r,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let Some(entry) = sticky_entry(shared, id) else {
        respond_no_session(shared, stream, id, keep_alive);
        return;
    };
    let mut sess = lock(&entry);
    let t0 = Instant::now();
    let budget = Duration::from_millis(budget_ms);
    let batch_path = format!("/stream/{id}/batch");
    let batch_body = request.to_json();

    // Two tries: the pinned shard, then (after one migration) the new
    // home. A second failure answers 503 — the batch is retryable from
    // the client's side because a failed attempt never advanced state.
    for attempt in 0..2 {
        let remaining = budget.saturating_sub(t0.elapsed());
        if remaining < Duration::from_millis(1) {
            respond_deadline_expired(shared, stream, budget_ms, keep_alive);
            return;
        }
        // A dirty session's shard-side state is unknown (a previous
        // batch's response was lost in transit and may have executed):
        // rebuilding from the recorded history is the only safe way to
        // serve another batch, so migration is mandatory — not optional —
        // before proxying anything.
        if (sess.dirty || !shared.backends[sess.shard].routable())
            && !migrate_session(shared, id, &mut sess)
        {
            let err = ServeError::new(
                ServeErrorKind::Overloaded,
                format!("session `{id}` has no routable shard; retry later"),
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
        let backend = &shared.backends[sess.shard];
        let attempt_timeout = remaining.min(Duration::from_millis(
            shared.cfg.request_timeout_ms.max(100),
        ));
        let deadline_hdr = (remaining.as_millis().min(u64::MAX as u128) as u64).to_string();
        backend.begin_request();
        let outcome = proxy_request_opts(
            backend,
            "POST",
            &batch_path,
            Some(&batch_body),
            attempt_timeout,
            &[(DEADLINE_HEADER, &deadline_hdr)],
            false, // non-idempotent: never blind-retry a stale connection
        );
        backend.end_request();
        match outcome {
            Ok(resp) if resp.status == 200 => {
                backend.breaker().record(true);
                sess.batches.push(request.count);
                backend.count_served();
                shared.stream_batches.fetch_add(1, Ordering::SeqCst);
                record_stream_witness(shared, &sess, id, backend.shard_id(), &resp.body);
                let shard = backend.shard_id().to_string();
                let _ = write_response_opts(
                    stream,
                    200,
                    keep_alive,
                    &[("X-RI-Shard", &shard)],
                    &resp.body,
                );
                return;
            }
            Ok(resp) if attempt == 0 && retryable_response(&resp) => {
                // The shard shed the batch without running it (draining
                // or overloaded): session state did not advance, so
                // close-and-replay on another shard is safe.
                backend.breaker().record(false);
                backend.count_failed();
                shared.retries.fetch_add(1, Ordering::SeqCst);
                if migrate_session(shared, id, &mut sess) {
                    continue;
                }
                let err = ServeError::new(
                    ServeErrorKind::Overloaded,
                    format!("session `{id}` has no routable shard; retry later"),
                );
                respond_error(shared, stream, &err, keep_alive, &[]);
                return;
            }
            Ok(resp) if resp.status == 404 => {
                // The shard is responsive but has no such session: it was
                // evicted there (TTL sweep, a restart, or a migration
                // whose close outlived its reopen). The router still holds
                // the full history, so rebuild instead of forwarding a
                // terminal 404 for a session that is recoverable.
                backend.breaker().record(true);
                if attempt == 0 {
                    shared.retries.fetch_add(1, Ordering::SeqCst);
                    if migrate_session(shared, id, &mut sess) {
                        continue;
                    }
                }
                let err = ServeError::new(
                    ServeErrorKind::Overloaded,
                    format!("session `{id}` was evicted and could not be rebuilt; retry later"),
                );
                respond_error(shared, stream, &err, keep_alive, &[]);
                return;
            }
            Ok(resp) => {
                // The shard answered: a structured error the client must
                // see (bad count, overfeed, ...). Never migrate on these —
                // the session is alive and its state did not advance.
                backend.breaker().record(true);
                forward_response(shared, stream, sess.shard, &resp, keep_alive);
                return;
            }
            Err(_) => {
                // The batch was sent but no response came back: it may or
                // may not have executed, so the shard-side state is now
                // unknown. Mark the session dirty — if migration fails
                // here, the flag forces a rebuild before any later client
                // retry can touch the (possibly advanced) old state.
                sess.dirty = true;
                backend.breaker().record(false);
                backend.observe(false);
                backend.count_failed();
                if attempt == 0 {
                    shared.retries.fetch_add(1, Ordering::SeqCst);
                    if migrate_session(shared, id, &mut sess) {
                        continue;
                    }
                }
                let err = ServeError::new(
                    ServeErrorKind::Overloaded,
                    format!("session `{id}` lost its shard and could not migrate; retry later"),
                );
                respond_error(shared, stream, &err, keep_alive, &[]);
                return;
            }
        }
    }
}

/// `GET /stream/<id>`: proxy the info read to the pinned shard.
fn handle_stream_info(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str, keep_alive: bool) {
    let Some(entry) = sticky_entry(shared, id) else {
        respond_no_session(shared, stream, id, keep_alive);
        return;
    };
    let sess = lock(&entry);
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.clamp(100, 10_000));
    let backend = &shared.backends[sess.shard];
    match proxy_request(backend, "GET", &format!("/stream/{id}"), None, timeout) {
        Ok(resp) => {
            let shard = backend.shard_id().to_string();
            let _ = write_response_opts(
                stream,
                resp.status,
                keep_alive,
                &[("X-RI-Shard", &shard)],
                &resp.body,
            );
        }
        Err(_) => {
            backend.observe(false);
            let err = ServeError::new(
                ServeErrorKind::Overloaded,
                format!("session `{id}`'s shard did not answer; retry later"),
            );
            respond_error(shared, stream, &err, keep_alive, &[]);
        }
    }
}

/// `DELETE /stream/<id>`: drop the sticky pin and close on the shard.
/// The pin is dropped even when the shard is unreachable — the client
/// wants the session gone, and the shard's own idle TTL will reap the
/// orphan if the shard is merely slow rather than dead.
fn handle_stream_close(shared: &Arc<Shared>, stream: &mut TcpStream, id: &str, keep_alive: bool) {
    let Some(entry) = lock(&shared.sticky).remove(id) else {
        respond_no_session(shared, stream, id, keep_alive);
        return;
    };
    let sess = lock(&entry);
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.clamp(100, 10_000));
    let backend = &shared.backends[sess.shard];
    let shard = backend.shard_id().to_string();
    match proxy_request(backend, "DELETE", &format!("/stream/{id}"), None, timeout) {
        Ok(resp) => {
            let _ = write_response_opts(
                stream,
                resp.status,
                keep_alive,
                &[("X-RI-Shard", &shard)],
                &resp.body,
            );
        }
        Err(_) => {
            backend.observe(false);
            let body = Value::Obj(vec![
                ("session".into(), Value::Str(id.into())),
                ("closed".into(), Value::Bool(true)),
                ("shard_lost".into(), Value::Bool(true)),
            ])
            .write();
            let _ = write_response_opts(stream, 200, keep_alive, &[("X-RI-Shard", &shard)], &body);
        }
    }
}

/// Close-and-replay migration: best-effort close on the old shard, reopen
/// under the same id on the next routable shard along the session's ring
/// walk, and re-feed the recorded batch counts. Determinism makes the
/// rebuilt session bit-identical to the lost one, so re-feeds are
/// internal bookkeeping: they are neither witnessed nor counted as
/// client-served batches. The old shard itself is the last-resort rebuild
/// target (its copy was just closed, so reopening there is clean) —
/// without it, a single-survivor fleet could strand a session forever.
/// Returns false when no shard could take it (stickiness is kept, so a
/// later batch retries migration); on success the rebuilt state is known
/// exactly, so the session's dirty flag is cleared.
fn migrate_session(shared: &Shared, id: &str, sess: &mut StickySession) -> bool {
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(100));
    let old = sess.shard;
    let path = format!("/stream/{id}");
    // The old shard may be draining rather than dead: free its slot.
    let _ = proxy_request(&shared.backends[old], "DELETE", &path, None, timeout);
    let mut candidates: Vec<usize> = shared
        .ring
        .order(id)
        .iter()
        .copied()
        .filter(|&index| index != old && shared.backends[index].routable())
        .collect();
    if shared.backends[old].routable() {
        candidates.push(old);
    }
    for index in candidates {
        let backend = &shared.backends[index];
        // A previous migration attempt may have left an orphan copy here
        // (its open succeeded but the response was lost): close it first
        // so the reopen never collides with a half-built ghost.
        let _ = proxy_request(backend, "DELETE", &path, None, timeout);
        match proxy_request(backend, "POST", "/stream", Some(&sess.open_body), timeout) {
            Ok(resp) if resp.status == 200 => {}
            Ok(_) => continue, // admission-full or draining mid-open: next shard
            Err(_) => {
                backend.observe(false);
                continue;
            }
        }
        // Re-feeds advance session state and are therefore proxied
        // without the stale-connection retry, like client batches.
        let refed = sess.batches.iter().all(|&count| {
            let body = format!("{{\"count\":{count}}}");
            matches!(
                proxy_request_opts(
                    backend,
                    "POST",
                    &format!("{path}/batch"),
                    Some(&body),
                    timeout,
                    &[],
                    false,
                ),
                Ok(r) if r.status == 200
            )
        });
        if !refed {
            // Leave the half-rebuilt session to the shard's TTL sweep.
            let _ = proxy_request(backend, "DELETE", &path, None, timeout);
            backend.observe(false);
            continue;
        }
        sess.shard = index;
        sess.dirty = false;
        shared.sessions_migrated.fetch_add(1, Ordering::SeqCst);
        return true;
    }
    false
}

/// Migrate every session pinned to `index` (drain integration): called
/// after the shard's in-flight requests settle, before it is detached.
fn migrate_shard_sessions(shared: &Shared, index: usize) {
    let pinned: Vec<(String, Arc<Mutex<StickySession>>)> = lock(&shared.sticky)
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect();
    for (id, entry) in pinned {
        let mut sess = lock(&entry);
        if sess.shard == index {
            let _ = migrate_session(shared, &id, &mut sess);
        }
    }
}

/// Persist one client-served stream batch to the witness log: session id,
/// the opening spec (parsed back from the replay body, so it carries the
/// client's own config), the serving shard, and the full delta. `ri
/// witness replay` re-feeds these per session and compares with `==`.
fn record_stream_witness(
    shared: &Shared,
    sess: &StickySession,
    id: &str,
    shard_id: &str,
    body: &str,
) {
    let Some(log) = &shared.witness else { return };
    let (Ok(spec), Ok(delta)) = (
        StreamSpec::from_json(&sess.open_body),
        json::parse(body)
            .map_err(|e| e.to_string())
            .and_then(|v| BatchDelta::from_value(&v).map_err(|e| e.to_string())),
    ) else {
        return; // an unparseable 200 is a backend bug; never witnessed
    };
    let _ = log.append_stream(&StreamBatchRecord {
        session: id.to_string(),
        spec,
        shard: shard_id.to_string(),
        delta,
    });
}

/// Whether a backend's non-200 answer means "never ran, try elsewhere".
/// Trust the envelope's `retryable` field when the body parses; fall
/// back to the status code (503/504) when it does not.
fn retryable_response(resp: &HttpResponse) -> bool {
    match ServeError::from_json(&resp.body) {
        Ok(err) => err.retryable,
        Err(_) => matches!(resp.status, 503 | 504),
    }
}

/// Persist a routed 200 to the witness log (when enabled) and the cache.
/// A body the router cannot parse is a backend bug; it is still returned
/// to the client verbatim but never witnessed or cached.
fn record_witness(shared: &Shared, shard_id: &str, key: &str, body: &str) {
    if let Ok(resp) = ServeResponse::from_json(body) {
        if let Some(log) = &shared.witness {
            let _ = log.append(&WitnessRecord::from_response(&resp, shard_id));
        }
        shared.cache.insert(key, body);
    }
}

/// `GET /problems`: proxied from the first shard that answers — the
/// registry is identical across the fleet by construction.
fn handle_problems(shared: &Shared, stream: &mut TcpStream, keep_alive: bool) {
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.clamp(100, 10_000));
    for backend in &shared.backends {
        if !backend.routable() {
            continue;
        }
        let mut conn = backend.checkout(timeout);
        if let Ok(resp) = conn.request("GET", "/problems", None) {
            backend.checkin(conn);
            let _ = write_response_opts(stream, resp.status, keep_alive, &[], &resp.body);
            return;
        }
        backend.observe(false);
    }
    let err = ServeError::new(ServeErrorKind::Overloaded, "no shard answered /problems");
    respond_error(shared, stream, &err, keep_alive, &[]);
}

/// `POST /admin/drain {"shard_id": "..."}`: stop routing to the shard,
/// then (off-thread) wait out its in-flight requests and stop it.
fn handle_drain(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8], keep_alive: bool) {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|t| json::parse(t).ok());
    let shard_id = match parsed
        .as_ref()
        .and_then(|v| v.get("shard_id"))
        .and_then(Value::as_str)
    {
        Some(id) => id.to_string(),
        None => {
            let err = ServeError::bad_request("drain body must be {\"shard_id\": \"...\"}");
            respond_error(shared, stream, &err, keep_alive, &[]);
            return;
        }
    };
    let Some(index) = shared
        .backends
        .iter()
        .position(|b| b.shard_id() == shard_id)
    else {
        let err = ServeError::new(
            ServeErrorKind::NotFound,
            format!("no shard named `{shard_id}`"),
        );
        respond_error(shared, stream, &err, keep_alive, &[]);
        return;
    };

    let already = !shared.backends[index].begin_drain();
    if !already {
        // Finish the drain off-thread: new requests already avoid the
        // shard; once its in-flight count hits zero it is detached (and
        // a spawned child killed).
        let drain_shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name(format!("ri-router-drain-{shard_id}"))
            .spawn(move || {
                let backend = &drain_shared.backends[index];
                let t0 = Instant::now();
                while backend.inflight() > 0 && t0.elapsed() < Duration::from_secs(300) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                // The shard is quiet and unroutable but still up: move
                // its streaming sessions somewhere routable while the
                // old copies can still be closed gracefully.
                migrate_shard_sessions(&drain_shared, index);
                backend.detach();
            });
    }
    let body = Value::Obj(vec![
        ("status".into(), Value::Str("draining".into())),
        ("shard_id".into(), Value::Str(shard_id)),
        ("already_draining".into(), Value::Bool(already)),
    ])
    .write();
    let _ = write_response_opts(stream, 200, keep_alive, &[], &body);
}

fn respond_error(
    shared: &Shared,
    stream: &mut impl io::Write,
    err: &ServeError,
    keep_alive: bool,
    extra: &[(&str, &str)],
) {
    shared.errored.fetch_add(1, Ordering::SeqCst);
    if err.kind == ServeErrorKind::DeadlineExceeded {
        shared.deadline_expired.fetch_add(1, Ordering::SeqCst);
    }
    let status = err.http_status();
    let mut headers: Vec<(&str, &str)> = extra.to_vec();
    // Callers with a real pressure hint pass their own Retry-After via
    // `extra`; the constant is only the fallback.
    if status == 503
        && !headers
            .iter()
            .any(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
    {
        headers.push(("Retry-After", "1"));
    }
    let _ = write_response_opts(stream, status, keep_alive, &headers, &err.to_json());
}

/// The router's `/healthz`: the cluster view. `status` is `ok` when every
/// routable shard is healthy, `degraded` when at least one healthy shard
/// remains, `down` when none does (draining reports `draining`).
fn health_value(shared: &Shared) -> Value {
    let mut shards = Vec::with_capacity(shared.backends.len());
    let mut healthy = 0usize;
    let mut routable = 0usize;
    for backend in &shared.backends {
        let state = backend.state();
        if backend.routable() {
            routable += 1;
        }
        if state == BackendState::Healthy {
            healthy += 1;
        }
        let (opened, half_opened, reclosed, rejected) = backend.breaker().counters();
        shards.push(Value::Obj(vec![
            ("shard_id".into(), Value::Str(backend.shard_id().into())),
            ("addr".into(), Value::Str(backend.addr().to_string())),
            ("state".into(), Value::Str(state.as_str().into())),
            ("inflight".into(), Value::Num(backend.inflight() as f64)),
            ("served".into(), Value::Num(backend.served() as f64)),
            ("failed".into(), Value::Num(backend.failed() as f64)),
            (
                "sessions_open".into(),
                Value::Num(backend.sessions_open() as f64),
            ),
            (
                "batches_served".into(),
                Value::Num(backend.batches_served() as f64),
            ),
            (
                "breaker".into(),
                Value::Obj(vec![
                    (
                        "state".into(),
                        Value::Str(backend.breaker().state().as_str().into()),
                    ),
                    ("opened".into(), Value::Num(opened as f64)),
                    ("half_opened".into(), Value::Num(half_opened as f64)),
                    ("reclosed".into(), Value::Num(reclosed as f64)),
                    ("rejected".into(), Value::Num(rejected as f64)),
                ]),
            ),
        ]));
    }
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else if healthy == routable && routable > 0 {
        "ok"
    } else if healthy > 0 {
        "degraded"
    } else {
        "down"
    };
    let witness = match &shared.witness {
        Some(log) => Value::Obj(vec![
            ("path".into(), Value::Str(log.path().display().to_string())),
            ("appended".into(), Value::Num(log.appended() as f64)),
        ]),
        None => Value::Null,
    };
    Value::Obj(vec![
        ("status".into(), Value::Str(status.into())),
        (
            "version".into(),
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("shards".into(), Value::Arr(shards)),
        (
            "routed".into(),
            Value::Num(shared.routed.load(Ordering::SeqCst) as f64),
        ),
        (
            "retries".into(),
            Value::Num(shared.retries.load(Ordering::SeqCst) as f64),
        ),
        (
            "errored".into(),
            Value::Num(shared.errored.load(Ordering::SeqCst) as f64),
        ),
        (
            "robustness".into(),
            Value::Obj(vec![
                (
                    "deadline_expired".into(),
                    Value::Num(shared.deadline_expired.load(Ordering::SeqCst) as f64),
                ),
                (
                    "backoff_sleeps".into(),
                    Value::Num(shared.backoff_sleeps.load(Ordering::SeqCst) as f64),
                ),
                (
                    "backoff_total_ms".into(),
                    Value::Num(shared.backoff_total_ms.load(Ordering::SeqCst) as f64),
                ),
                (
                    "breakers_open".into(),
                    Value::Num(
                        shared
                            .backends
                            .iter()
                            .filter(|b| b.breaker().state() != BreakerState::Closed)
                            .count() as f64,
                    ),
                ),
            ]),
        ),
        (
            "sessions".into(),
            Value::Obj(vec![
                ("open".into(), Value::Num(lock(&shared.sticky).len() as f64)),
                (
                    "migrated".into(),
                    Value::Num(shared.sessions_migrated.load(Ordering::SeqCst) as f64),
                ),
                (
                    "stream_batches".into(),
                    Value::Num(shared.stream_batches.load(Ordering::SeqCst) as f64),
                ),
            ]),
        ),
        (
            "cache".into(),
            Value::Obj(vec![
                ("hits".into(), Value::Num(shared.cache.hits() as f64)),
                ("misses".into(), Value::Num(shared.cache.misses() as f64)),
                ("size".into(), Value::Num(shared.cache.len() as f64)),
            ]),
        ),
        ("witness".into(), witness),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(status: u16, headers: &[(&str, &str)], body: &str) -> HttpResponse {
        HttpResponse {
            status,
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
                .collect(),
            body: body.to_string(),
        }
    }

    #[test]
    fn retryable_classification_trusts_the_envelope() {
        // A parseable envelope decides retryability regardless of status.
        let shed = ServeError::new(ServeErrorKind::Overloaded, "queue full");
        assert!(retryable_response(&resp(503, &[], &shed.to_json())));
        let expired = ServeError::new(ServeErrorKind::DeadlineExceeded, "too slow");
        assert!(retryable_response(&resp(504, &[], &expired.to_json())));
        // An envelope explicitly marked non-retryable wins even on 503.
        let pinned = ServeError::new(ServeErrorKind::Overloaded, "nope").retryable(false);
        assert!(!retryable_response(&resp(503, &[], &pinned.to_json())));
        // A non-retryable kind stays non-retryable.
        let bad = ServeError::bad_request("unknown problem");
        assert!(!retryable_response(&resp(400, &[], &bad.to_json())));
    }

    #[test]
    fn retryable_classification_falls_back_to_the_status_code() {
        assert!(retryable_response(&resp(503, &[], "not json at all")));
        assert!(retryable_response(&resp(504, &[], "")));
        assert!(!retryable_response(&resp(500, &[], "not json")));
        assert!(!retryable_response(&resp(200, &[], "{}")));
    }

    #[test]
    fn retry_hints_prefer_the_ms_header() {
        let both = resp(
            503,
            &[("Retry-After", "2"), (RETRY_AFTER_MS_HEADER, "350")],
            "{}",
        );
        assert_eq!(retry_hint_ms(&both), Some(350));
        let secs_only = resp(503, &[("Retry-After", "2")], "{}");
        assert_eq!(retry_hint_ms(&secs_only), Some(2_000));
        assert_eq!(retry_hint_ms(&resp(503, &[], "{}")), None);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_hint_floored() {
        let cfg = RouterConfig::default();
        let key = ring::fnv1a(b"some-witness-key");
        // Deterministic: the same (key, attempt) always yields the same
        // delay, and jitter stays under one base step.
        for attempt in 1..=4u32 {
            let a = backoff_delay_ms(&cfg, key, attempt, None);
            let b = backoff_delay_ms(&cfg, key, attempt, None);
            assert_eq!(a, b);
            let exp = cfg.backoff_base_ms << (attempt - 1);
            assert!(
                a >= exp && a < exp + cfg.backoff_base_ms,
                "attempt {attempt}: {a}"
            );
        }
        // Capped.
        assert!(backoff_delay_ms(&cfg, key, 12, None) <= cfg.backoff_cap_ms);
        // A shard's Retry-After hint floors the delay (capped too).
        assert!(backoff_delay_ms(&cfg, key, 1, Some(400)) >= 400);
        assert!(backoff_delay_ms(&cfg, key, 1, Some(60_000)) <= cfg.backoff_cap_ms);
    }
}
