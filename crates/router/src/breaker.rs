//! Per-shard circuit breaker: closed → open on a failure-rate window →
//! half-open probe → closed again.
//!
//! Every proxied request outcome (success, retryable shed, transport
//! error) is recorded into a sliding window of the most recent
//! [`BreakerConfig::window`] outcomes. While **closed**, the breaker
//! admits everything; once the window holds at least
//! [`BreakerConfig::min_failures`] failures *and* failures are at least
//! half the window, it **opens** and sheds all traffic for
//! [`BreakerConfig::open_ms`]. After that cooldown the first admission
//! request becomes a single **half-open probe**: if the probe succeeds
//! the breaker closes with a fresh window; if it fails the breaker
//! re-opens and the cooldown restarts. Shedding is what keeps a routed
//! fleet's tail latency flat while one shard misbehaves — the ring walk
//! skips open breakers instead of burning a timeout on each attempt —
//! and the half-open probe is what re-admits the shard once it recovers.
//!
//! All transitions and rejected admissions are counted so the router's
//! `/healthz` can report breaker behaviour per shard.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tunables for a [`CircuitBreaker`]. Shared by every shard's breaker;
/// set from `RouterConfig` at router start.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Number of most-recent request outcomes kept in the sliding window.
    pub window: usize,
    /// Minimum failures in the window before the breaker may open (also
    /// requires failures ≥ half the recorded outcomes).
    pub min_failures: usize,
    /// Cooldown in milliseconds an open breaker sheds traffic before
    /// allowing a half-open probe.
    pub open_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_failures: 5,
            open_ms: 500,
        }
    }
}

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Admitting all traffic; outcomes fill the sliding window.
    Closed,
    /// Shedding all traffic until the cooldown elapses.
    Open,
    /// Cooldown elapsed; exactly one probe request is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name used in `/healthz` JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What [`CircuitBreaker::admit`] decided for one prospective request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: send the request normally.
    Admit,
    /// Breaker half-open and this caller won the single probe slot: send
    /// the request; its outcome decides whether the breaker closes.
    Probe,
    /// Breaker open (or a probe is already in flight): skip this shard.
    Shed,
}

#[derive(Debug)]
struct Inner {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Sliding window of recent outcomes, `true` = success.
    outcomes: VecDeque<bool>,
    opened_at: Option<Instant>,
    probe_inflight: bool,
}

impl Inner {
    fn failures(&self) -> usize {
        self.outcomes.iter().filter(|ok| !**ok).count()
    }
}

/// A sliding-window circuit breaker guarding one backend shard.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<Inner>,
    opened: AtomicU64,
    half_opened: AtomicU64,
    reclosed: AtomicU64,
    rejected: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tunables.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            inner: Mutex::new(Inner {
                cfg,
                state: BreakerState::Closed,
                outcomes: VecDeque::new(),
                opened_at: None,
                probe_inflight: false,
            }),
            opened: AtomicU64::new(0),
            half_opened: AtomicU64::new(0),
            reclosed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Replace the tunables (used once at router start, after backends
    /// are constructed with defaults). Resets nothing else.
    pub fn reconfigure(&self, cfg: BreakerConfig) {
        self.lock().cfg = cfg;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Decide whether a request may be sent to this shard right now.
    pub fn admit(&self) -> Admission {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| t.elapsed().as_millis() as u64 >= inner.cfg.open_ms)
                    .unwrap_or(true);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_inflight = true;
                    self.half_opened.fetch_add(1, Ordering::Relaxed);
                    Admission::Probe
                } else {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    Admission::Shed
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    Admission::Shed
                } else {
                    inner.probe_inflight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Record the outcome of an admitted request (`true` = the shard
    /// answered usefully). Failures are transport errors and retryable
    /// shed responses; a non-retryable application error still counts as
    /// success — the shard is responsive.
    pub fn record(&self, ok: bool) {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.outcomes.push_back(ok);
                while inner.outcomes.len() > inner.cfg.window {
                    inner.outcomes.pop_front();
                }
                let failures = inner.failures();
                if failures >= inner.cfg.min_failures && failures * 2 >= inner.outcomes.len() {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    self.opened.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen => {
                // The probe's verdict: close on success, re-open on failure.
                inner.probe_inflight = false;
                if ok {
                    inner.state = BreakerState::Closed;
                    inner.outcomes.clear();
                    self.reclosed.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    self.opened.fetch_add(1, Ordering::Relaxed);
                }
            }
            // A request admitted before the breaker opened finished after
            // the transition; its outcome no longer matters.
            BreakerState::Open => {}
        }
    }

    /// Current state (for `/healthz` and the ring walk's shed test).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Counters: (opened, half_opened, reclosed, rejected).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.opened.load(Ordering::Relaxed),
            self.half_opened.load(Ordering::Relaxed),
            self.reclosed.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_failures: 4,
            open_ms: 30,
        }
    }

    #[test]
    fn stays_closed_below_the_failure_floor() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            assert_eq!(b.admit(), Admission::Admit);
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn opens_on_failure_window_then_sheds() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..4 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Shed);
        let (opened, _, _, rejected) = b.counters();
        assert_eq!(opened, 1);
        assert_eq!(rejected, 1);
    }

    #[test]
    fn failure_rate_must_reach_half_the_window() {
        let b = CircuitBreaker::new(fast_cfg());
        // 4 failures diluted by enough successes stay under 50%.
        for _ in 0..3 {
            b.record(false);
        }
        for _ in 0..5 {
            b.record(true);
        }
        b.record(false); // window now 3 failures + 5 successes → closed
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_success_recloses() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..4 {
            b.record(false);
        }
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe);
        // Only one probe is allowed while it is in flight.
        assert_eq!(b.admit(), Admission::Shed);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Admit);
        let (_, half_opened, reclosed, _) = b.counters();
        assert_eq!(half_opened, 1);
        assert_eq!(reclosed, 1);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..4 {
            b.record(false);
        }
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Shed);
        let (opened, _, reclosed, _) = b.counters();
        assert_eq!(opened, 2);
        assert_eq!(reclosed, 0);
    }

    #[test]
    fn reclosing_clears_the_window() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..4 {
            b.record(false);
        }
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(b.admit(), Admission::Probe);
        b.record(true);
        // One more failure must not immediately re-open: the old window
        // of failures was discarded on re-close.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
