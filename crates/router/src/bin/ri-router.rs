//! `ri-router` — front a fleet of `ri-serve` shards with one address.
//!
//! ```text
//! ri-router [--addr HOST:PORT]
//!           [--backend ADDR[=SHARD_ID]]...      attach to running shards
//!           [--spawn N --serve-bin PATH]        or spawn N children
//!           [--threads-per-shard K] [--executors-per-shard E]
//!           [--witness PATH] [--replicas R] [--max-attempts A]
//!           [--health-interval-ms MS] [--cache-capacity C]
//!           [--request-timeout-ms MS] [--breaker-window N]
//!           [--breaker-min-failures F] [--breaker-open-ms MS]
//!           [--backoff-base-ms MS] [--backoff-cap-ms MS]
//! ```
//!
//! Prints `routing on ADDR` once the listener is up (scripts wait on
//! that line), then routes until killed. Endpoints: `POST /solve`
//! (consistent-hashed, retried, cached, witnessed), `GET /healthz`
//! (cluster view), `GET /problems`, `POST /admin/drain`.

use std::path::PathBuf;

use ri_router::{BackendSpec, BackendTarget, Router, RouterConfig};

fn usage_text() -> &'static str {
    "usage: ri-router [--addr HOST:PORT] [--backend ADDR[=SHARD_ID]]...\n\
     \x20                [--spawn N --serve-bin PATH] [--threads-per-shard K]\n\
     \x20                [--executors-per-shard E] [--witness PATH] [--replicas R]\n\
     \x20                [--max-attempts A] [--health-interval-ms MS]\n\
     \x20                [--cache-capacity C] [--request-timeout-ms MS]\n\
     \x20                [--breaker-window N] [--breaker-min-failures F]\n\
     \x20                [--breaker-open-ms MS] [--backoff-base-ms MS]\n\
     \x20                [--backoff-cap-ms MS]\n\
     \n\
     Routes POST /solve across ri-serve shards by consistent-hashing the\n\
     request's determinism key; retries shed requests on the next shard\n\
     (spaced by exponential backoff with deterministic jitter, gated by\n\
     per-shard circuit breakers, bounded by the request's X-RI-Deadline-Ms\n\
     budget); serves the cluster view on GET /healthz; drains shards via\n\
     POST /admin/drain {\"shard_id\": ...}. --backend attaches to running\n\
     shards (repeatable; SHARD_ID defaults to s0, s1, ...); --spawn N starts\n\
     N ri-serve children from --serve-bin on ephemeral ports. --witness\n\
     appends one JSON record per routed solve, replayable with\n\
     `ri witness replay PATH`. --breaker-window/--breaker-min-failures\n\
     size the failure window that opens a shard's breaker;\n\
     --breaker-open-ms is its cooldown before a half-open probe;\n\
     --backoff-base-ms/--backoff-cap-ms shape the inter-retry backoff."
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ri-router: {msg}");
    std::process::exit(2);
}

struct Parsed {
    cfg: RouterConfig,
    specs: Vec<BackendSpec>,
}

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut cfg = RouterConfig {
        addr: "127.0.0.1:8078".into(),
        ..RouterConfig::default()
    };
    let mut attach: Vec<(String, Option<String>)> = Vec::new();
    let mut spawn = 0usize;
    let mut serve_bin: Option<PathBuf> = None;
    let mut threads_per_shard = 0usize;
    let mut executors_per_shard = 2usize;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--backend" => {
                let raw = value("--backend")?;
                match raw.split_once('=') {
                    Some((addr, id)) => attach.push((addr.to_string(), Some(id.to_string()))),
                    None => attach.push((raw, None)),
                }
            }
            "--spawn" => {
                spawn = value("--spawn")?
                    .parse()
                    .map_err(|e| format!("bad --spawn: {e}"))?
            }
            "--serve-bin" => serve_bin = Some(PathBuf::from(value("--serve-bin")?)),
            "--threads-per-shard" => {
                threads_per_shard = value("--threads-per-shard")?
                    .parse()
                    .map_err(|e| format!("bad --threads-per-shard: {e}"))?
            }
            "--executors-per-shard" => {
                executors_per_shard = value("--executors-per-shard")?
                    .parse()
                    .map_err(|e| format!("bad --executors-per-shard: {e}"))?
            }
            "--witness" => cfg.witness_path = Some(PathBuf::from(value("--witness")?)),
            "--replicas" => {
                cfg.replicas = value("--replicas")?
                    .parse()
                    .map_err(|e| format!("bad --replicas: {e}"))?
            }
            "--max-attempts" => {
                cfg.max_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("bad --max-attempts: {e}"))?
            }
            "--health-interval-ms" => {
                cfg.health_interval_ms = value("--health-interval-ms")?
                    .parse()
                    .map_err(|e| format!("bad --health-interval-ms: {e}"))?
            }
            "--cache-capacity" => {
                cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --cache-capacity: {e}"))?
            }
            "--request-timeout-ms" => {
                cfg.request_timeout_ms = value("--request-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad --request-timeout-ms: {e}"))?
            }
            "--breaker-window" => {
                cfg.breaker_window = value("--breaker-window")?
                    .parse()
                    .map_err(|e| format!("bad --breaker-window: {e}"))?
            }
            "--breaker-min-failures" => {
                cfg.breaker_min_failures = value("--breaker-min-failures")?
                    .parse()
                    .map_err(|e| format!("bad --breaker-min-failures: {e}"))?
            }
            "--breaker-open-ms" => {
                cfg.breaker_open_ms = value("--breaker-open-ms")?
                    .parse()
                    .map_err(|e| format!("bad --breaker-open-ms: {e}"))?
            }
            "--backoff-base-ms" => {
                cfg.backoff_base_ms = value("--backoff-base-ms")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-base-ms: {e}"))?
            }
            "--backoff-cap-ms" => {
                cfg.backoff_cap_ms = value("--backoff-cap-ms")?
                    .parse()
                    .map_err(|e| format!("bad --backoff-cap-ms: {e}"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let mut specs = Vec::new();
    for (i, (addr, id)) in attach.iter().enumerate() {
        let addr = addr
            .parse()
            .map_err(|e| format!("bad --backend address `{addr}`: {e}"))?;
        specs.push(BackendSpec {
            shard_id: id.clone().unwrap_or_else(|| format!("s{i}")),
            target: BackendTarget::Attach(addr),
        });
    }
    if spawn > 0 {
        let serve_bin = serve_bin
            .clone()
            .ok_or("--spawn needs --serve-bin PATH (the ri-serve binary)")?;
        let base = specs.len();
        for i in 0..spawn {
            specs.push(BackendSpec {
                shard_id: format!("s{}", base + i),
                target: BackendTarget::Spawn {
                    serve_bin: serve_bin.clone(),
                    threads: threads_per_shard,
                    executors: executors_per_shard,
                },
            });
        }
    }
    if specs.is_empty() {
        return Err("no backends: pass --backend ADDR or --spawn N --serve-bin PATH".into());
    }
    Ok(Parsed { cfg, specs })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage_text());
        return;
    }
    let parsed = parse_args(&args).unwrap_or_else(|e| fail(e));
    let router = Router::start(parsed.cfg, parsed.specs).unwrap_or_else(|e| fail(e));
    println!("routing on {}", router.local_addr());
    for backend in router.backends() {
        eprintln!(
            "ri-router: shard {} at {}",
            backend.shard_id(),
            backend.addr()
        );
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Route until the process is killed (spawned shards die with us via
    // each Backend's Drop).
    loop {
        std::thread::park();
    }
}
