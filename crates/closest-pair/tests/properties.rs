//! Property tests for closest pair: agreement with O(n²) brute force and
//! sequential/parallel equivalence on arbitrary distinct point sets.

use proptest::prelude::*;
use ri_closest_pair::{brute_force_closest_pair, ClosestPairProblem};
use ri_core::engine::{Problem, RunConfig};
use ri_geometry::Point2;

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::hash_set((0i32..1000, 0i32..1000), 2..120).prop_map(|s| {
        s.into_iter()
            .map(|(x, y)| Point2::new(x as f64 / 7.0, y as f64 / 7.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_brute_force(pts in arb_points()) {
        let (_, want) = brute_force_closest_pair(&pts);
        let (seq, seq_report) = ClosestPairProblem::new(&pts).solve(&seq_cfg());
        let (par, par_report) = ClosestPairProblem::new(&pts).solve(&par_cfg());
        prop_assert_eq!(seq.dist, want);
        prop_assert_eq!(par.dist, want);
        prop_assert_eq!(seq.pair, par.pair);
        prop_assert_eq!(seq_report.specials, par_report.specials);
    }

    #[test]
    fn reported_pair_realises_reported_distance(pts in arb_points()) {
        let (run, _) = ClosestPairProblem::new(&pts).solve(&par_cfg());
        let (i, j) = run.pair;
        prop_assert!(i < j);
        let d = pts[i as usize].dist(pts[j as usize]);
        prop_assert!((d - run.dist).abs() <= 1e-12 * (1.0 + d));
    }

    #[test]
    fn no_pair_is_closer(pts in arb_points()) {
        let (run, _) = ClosestPairProblem::new(&pts).solve(&par_cfg());
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                prop_assert!(pts[i].dist_sq(pts[j]) >= run.dist * run.dist - 1e-9);
            }
        }
    }
}
