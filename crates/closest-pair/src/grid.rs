//! The grid sieve and its Type 2 plumbing.

use ri_core::engine::{execute_type2, RunConfig, RunReport};
use ri_core::Type2Algorithm;
use ri_geometry::Point2;
use ri_pram::hash::FxHashMap;

struct GridState<'a> {
    points: &'a [Point2],
    /// Squared closest distance so far (`INFINITY` until two points seen).
    r_sq: f64,
    /// Cell side length (`sqrt(r_sq)`), cached.
    cell: f64,
    pair: (u32, u32),
    cells: FxHashMap<(i64, i64), Vec<u32>>,
    /// Retired bucket vectors, recycled across grid rebuilds: a rebuild
    /// invalidates every cell *key* (the cell size changed) but the
    /// bucket allocations themselves are perfectly reusable. A local
    /// freelist recycles all of them with no per-insert overhead.
    spare_buckets: Vec<Vec<u32>>,
    /// All points with index `< inserted_hi` are present in `cells`
    /// (once the grid exists).
    inserted_hi: usize,
}

impl<'a> GridState<'a> {
    fn new(points: &'a [Point2]) -> Self {
        GridState {
            points,
            r_sq: f64::INFINITY,
            cell: f64::INFINITY,
            pair: (0, 0),
            cells: FxHashMap::default(),
            spare_buckets: Vec::new(),
            inserted_hi: 0,
        }
    }

    /// Append `j` to cell `c`, reusing a retired bucket for new cells.
    #[inline]
    fn insert_point(&mut self, c: (i64, i64), j: u32) {
        self.cells
            .entry(c)
            .or_insert_with(|| self.spare_buckets.pop().unwrap_or_default())
            .push(j);
    }

    #[inline]
    fn cell_of(&self, p: Point2) -> (i64, i64) {
        debug_assert!(self.cell.is_finite() && self.cell > 0.0);
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Nearest earlier (index `< k`) point within the 3×3 neighborhood;
    /// returns `(index, dist_sq)`. Correct whenever that nearest point is
    /// within `cell` of `p` — guaranteed for the `< r` queries we make.
    fn nearest_earlier(&self, k: usize) -> Option<(u32, f64)> {
        let p = self.points[k];
        let (cx, cy) = self.cell_of(p);
        let mut best: Option<(u32, f64)> = None;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &j in bucket {
                        if (j as usize) < k {
                            let d = p.dist_sq(self.points[j as usize]);
                            if best.is_none_or(|(_, bd)| d < bd) {
                                best = Some((j, d));
                            }
                        }
                    }
                }
            }
        }
        best
    }

    fn rebuild(&mut self) {
        self.cell = self.r_sq.sqrt();
        assert!(
            self.cell > 0.0,
            "duplicate points: closest-pair distance is zero"
        );
        // Retire every bucket into the freelist before rebucketing: the
        // rebuild reallocates nothing in steady state.
        for (_, mut bucket) in self.cells.drain() {
            bucket.clear();
            self.spare_buckets.push(bucket);
        }
        for j in 0..self.inserted_hi {
            let c = self.cell_of(self.points[j]);
            self.insert_point(c, j as u32);
        }
    }
}

impl Type2Algorithm for GridState<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn begin_prefix(&mut self, lo: usize, hi: usize) {
        if self.cell.is_finite() {
            for j in lo..hi {
                let c = self.cell_of(self.points[j]);
                self.insert_point(c, j as u32);
            }
        }
        self.inserted_hi = hi;
    }

    fn is_special(&self, k: usize) -> bool {
        if self.r_sq.is_infinite() {
            return k >= 1; // the second point always sets r
        }
        self.nearest_earlier(k).is_some_and(|(_, d)| d < self.r_sq)
    }

    fn run_regular(&mut self, _k: usize) {}

    fn run_special(&mut self, k: usize) {
        let (j, d) = if self.r_sq.is_infinite() {
            // No grid yet: scan the (tiny) prefix directly.
            (0..k)
                .map(|j| (j as u32, self.points[k].dist_sq(self.points[j])))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("special iteration needs an earlier point")
        } else {
            self.nearest_earlier(k)
                .expect("special implies a close pair")
        };
        self.r_sq = d;
        self.pair = (j.min(k as u32), j.max(k as u32));
        self.rebuild();
    }
}

/// The answer of a closest-pair run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosestPairOutput {
    /// Indices (into the insertion order) of the closest pair, `(i, j)`
    /// with `i < j`.
    pub pair: (u32, u32),
    /// Their distance.
    pub dist: f64,
}

/// Engine entry point: solve under `cfg`, returning the answer and the
/// unified report.
pub(crate) fn run_with(points: &[Point2], cfg: &RunConfig) -> (ClosestPairOutput, RunReport) {
    assert!(points.len() >= 2, "need at least two points");
    let mut st = GridState::new(points);
    let mut report = execute_type2(&mut st, cfg);
    report.algorithm = "closest-pair".to_string();
    (
        ClosestPairOutput {
            pair: st.pair,
            dist: st.r_sq.sqrt(),
        },
        report,
    )
}

/// O(n²) reference for tests and tiny inputs.
pub fn brute_force_closest_pair(points: &[Point2]) -> ((u32, u32), f64) {
    assert!(points.len() >= 2);
    let mut best = ((0u32, 1u32), points[0].dist_sq(points[1]));
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let d = points[i].dist_sq(points[j]);
            if d < best.1 {
                best = ((i as u32, j as u32), d);
            }
        }
    }
    (best.0, best.1.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local stand-in for the retired `ClosestPairRun` shape.
    struct Run {
        pair: (u32, u32),
        dist: f64,
        stats: RunReport,
    }

    fn run_mode(points: &[Point2], cfg: &RunConfig) -> Run {
        let (out, stats) = run_with(points, cfg);
        Run {
            pair: out.pair,
            dist: out.dist,
            stats,
        }
    }

    fn closest_pair_sequential(points: &[Point2]) -> Run {
        run_mode(points, &RunConfig::new().sequential())
    }

    fn closest_pair_parallel(points: &[Point2]) -> Run {
        run_mode(points, &RunConfig::new().parallel())
    }
    use ri_geometry::distributions::dedup_points;
    use ri_geometry::PointDistribution;
    use ri_pram::random_permutation;

    fn workload(n: usize, seed: u64, dist: PointDistribution) -> Vec<Point2> {
        let pts = dedup_points(dist.generate(n, seed));
        let order = random_permutation(pts.len(), seed ^ 0xc1);
        order.iter().map(|&i| pts[i]).collect()
    }

    #[test]
    fn matches_brute_force_small() {
        for seed in 0..10 {
            let pts = workload(200, seed, PointDistribution::UniformSquare);
            let (_, want) = brute_force_closest_pair(&pts);
            let seq = closest_pair_sequential(&pts);
            let par = closest_pair_parallel(&pts);
            assert_eq!(seq.dist, want, "sequential wrong at seed {seed}");
            assert_eq!(par.dist, want, "parallel wrong at seed {seed}");
            assert_eq!(seq.pair, par.pair, "pairs differ at seed {seed}");
        }
    }

    #[test]
    fn same_specials_sequential_vs_parallel() {
        for seed in 0..5 {
            let pts = workload(500, seed, PointDistribution::UniformSquare);
            let seq = closest_pair_sequential(&pts);
            let par = closest_pair_parallel(&pts);
            assert_eq!(seq.stats.specials, par.stats.specials, "seed {seed}");
        }
    }

    #[test]
    fn clustered_points() {
        for seed in 0..5 {
            let pts = workload(300, seed, PointDistribution::Clusters(5));
            let (_, want) = brute_force_closest_pair(&pts);
            assert_eq!(closest_pair_parallel(&pts).dist, want, "seed {seed}");
        }
    }

    #[test]
    fn rebuilds_are_logarithmic() {
        let n = 1 << 13;
        let mut total = 0usize;
        let trials = 8;
        for seed in 0..trials {
            let pts = workload(n, seed, PointDistribution::UniformSquare);
            total += closest_pair_parallel(&pts).stats.specials.len();
        }
        let avg = total as f64 / trials as f64;
        let bound = 2.0 * ri_core::harmonic(n) + 4.0;
        assert!(avg <= bound, "avg rebuilds {avg} above 2·H_n+4 = {bound}");
    }

    #[test]
    fn two_points() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(3.0, 4.0)];
        let run = closest_pair_parallel(&pts);
        assert_eq!(run.pair, (0, 1));
        assert_eq!(run.dist, 5.0);
        assert_eq!(run.stats.specials, vec![1]);
    }

    #[test]
    fn collinear_points() {
        // Degenerate geometry (all on a line) must still work.
        let pts: Vec<Point2> = random_permutation(100, 3)
            .iter()
            .map(|&i| Point2::new(i as f64 * 1.5, 0.0))
            .collect();
        let run = closest_pair_parallel(&pts);
        assert_eq!(run.dist, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        closest_pair_parallel(&[Point2::new(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate points")]
    fn duplicates_rejected() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 0.0),
        ];
        closest_pair_parallel(&pts);
    }
}
