//! Registry entry: `"closest-pair"` — the grid-sieve closest pair over a
//! seeded point workload (§5.2, Type 2). The workload shape is a
//! point-distribution name (default `"uniform-square"`) — plus the
//! native streaming adapter, which fixes the full point set at open and
//! tracks the running closest pair as batches reveal successive
//! prefixes.

use ri_core::engine::json::Value;
use ri_core::engine::registry::{ErasedIncremental, ErasedProblem, OutputSummary, Registry};
use ri_core::engine::session::{BatchDelta, FeedState};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_geometry::{named_point_workload, Point2};

use crate::ClosestPairProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "closest-pair",
        "grid-sieve incremental closest pair of a point workload (§5.2, Type 2)",
        |spec| {
            let points = named_point_workload(
                "closest-pair",
                spec.n,
                spec.seed,
                spec.shape_or("uniform-square"),
                2,
            )?;
            Ok(Box::new(ClosestPairWorkload { points }))
        },
    );
    reg.register_incremental("closest-pair", |spec| {
        // Same generator call as the one-shot constructor, so the final
        // streamed prefix is the one-shot instance bit for bit.
        let points = named_point_workload(
            "closest-pair",
            spec.n,
            spec.seed,
            spec.shape_or("uniform-square"),
            2,
        )?;
        // Capacity is the *deduplicated* point count, not spec.n: a
        // duplicate-heavy shape shrinks the instance, and feeding past
        // points.len() would index out of bounds.
        let capacity = points.len();
        Ok(Box::new(ClosestPairStream {
            points,
            state: FeedState::new(capacity),
            prev_dist: None,
        }))
    });
}

fn summarize(points: &[Point2], cfg: &RunConfig) -> (OutputSummary, RunReport, (u32, u32), f64) {
    let (out, report) = ClosestPairProblem::new(points).solve(cfg);
    let mut s = OutputSummary::new();
    s.answer_num("points", points.len() as f64)
        .answer_num("pair_i", out.pair.0 as f64)
        .answer_num("pair_j", out.pair.1 as f64)
        .answer_num("dist", out.dist);
    (s, report, out.pair, out.dist)
}

struct ClosestPairWorkload {
    points: Vec<Point2>,
}

impl ErasedProblem for ClosestPairWorkload {
    fn name(&self) -> &str {
        "closest-pair"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (s, report, _, _) = summarize(&self.points, cfg);
        (s, report)
    }
}

/// The native streaming adapter: the delta is the running closest pair
/// of the absorbed prefix, flagged `improved` when a batch tightened the
/// distance. Prefixes of fewer than two points are pending.
struct ClosestPairStream {
    points: Vec<Point2>,
    state: FeedState,
    prev_dist: Option<f64>,
}

impl ErasedIncremental for ClosestPairStream {
    fn name(&self) -> &str {
        "closest-pair"
    }

    fn capacity(&self) -> usize {
        self.state.capacity()
    }

    fn absorbed(&self) -> usize {
        self.state.absorbed()
    }

    fn native(&self) -> bool {
        true
    }

    fn approx_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<Point2>() + 128
    }

    fn feed(&mut self, count: usize, cfg: &RunConfig) -> Result<(BatchDelta, RunReport), String> {
        let (batch, _lo, hi) = self.state.advance(count)?;
        let capacity = self.state.capacity();
        if hi < 2 {
            return Ok((
                BatchDelta::pending(batch, count, hi, capacity),
                RunReport::new("closest-pair"),
            ));
        }
        let (summary, report, pair, dist) = summarize(&self.points[..hi], cfg);
        let improved = self.prev_dist.is_none_or(|prev| dist < prev);
        self.prev_dist = Some(dist);
        let delta = Value::Obj(vec![
            ("pair_i".into(), Value::Num(pair.0 as f64)),
            ("pair_j".into(), Value::Num(pair.1 as f64)),
            ("dist".into(), Value::Num(dist)),
            ("improved".into(), Value::Bool(improved)),
        ]);
        Ok((
            BatchDelta::solved(batch, count, hi, capacity, delta, &summary, &report),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves() {
        let mut reg = Registry::new();
        register(&mut reg);
        let (summary, report) = reg
            .solve(
                "closest-pair",
                &WorkloadSpec::new(300, 4),
                &RunConfig::new(),
            )
            .unwrap();
        assert!(summary.to_json().contains("\"dist\":"));
        assert!(!report.specials.is_empty());
        assert!(reg
            .construct("closest-pair", &WorkloadSpec::new(1, 4))
            .is_err());
    }

    #[test]
    fn stream_tracks_the_running_pair() {
        let mut reg = Registry::new();
        register(&mut reg);
        let spec = WorkloadSpec::new(40, 4);
        let cfg = RunConfig::new().seed(1);
        let mut inc = reg.construct_incremental("closest-pair", &spec).unwrap();
        assert!(inc.native());

        // One point: pending. Two points: first real pair, improved.
        let (d0, _) = inc.feed(1, &cfg).unwrap();
        assert!(d0.pending);
        let (d1, _) = inc.feed(1, &cfg).unwrap();
        assert!(!d1.pending);
        assert_eq!(d1.delta.get("improved"), Some(&Value::Bool(true)));

        // Distances never increase as the prefix grows.
        let mut dist = d1.delta.get("dist").unwrap().as_f64().unwrap();
        let mut last = d1;
        while !last.complete {
            let (d, _) = inc.feed(19.min(spec.n - last.cumulative), &cfg).unwrap();
            let next = d.delta.get("dist").unwrap().as_f64().unwrap();
            assert!(next <= dist);
            dist = next;
            last = d;
        }
        // Final streamed answer equals the one-shot solve.
        let (one_shot, _) = reg.solve("closest-pair", &spec, &cfg).unwrap();
        assert_eq!(last.answer, one_shot.answer().to_vec());
    }
}
