//! Registry entry: `"closest-pair"` — the grid-sieve closest pair over a
//! seeded point workload (§5.2, Type 2). The workload shape is a
//! point-distribution name (default `"uniform-square"`).

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_geometry::{named_point_workload, Point2};

use crate::ClosestPairProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "closest-pair",
        "grid-sieve incremental closest pair of a point workload (§5.2, Type 2)",
        |spec| {
            let points = named_point_workload(
                "closest-pair",
                spec.n,
                spec.seed,
                spec.shape_or("uniform-square"),
                2,
            )?;
            Ok(Box::new(ClosestPairWorkload { points }))
        },
    );
}

struct ClosestPairWorkload {
    points: Vec<Point2>,
}

impl ErasedProblem for ClosestPairWorkload {
    fn name(&self) -> &str {
        "closest-pair"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = ClosestPairProblem::new(&self.points).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("points", self.points.len() as f64)
            .answer_num("pair_i", out.pair.0 as f64)
            .answer_num("pair_j", out.pair.1 as f64)
            .answer_num("dist", out.dist);
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves() {
        let mut reg = Registry::new();
        register(&mut reg);
        let (summary, report) = reg
            .solve(
                "closest-pair",
                &WorkloadSpec::new(300, 4),
                &RunConfig::new(),
            )
            .unwrap();
        assert!(summary.to_json().contains("\"dist\":"));
        assert!(!report.specials.is_empty());
        assert!(reg
            .construct("closest-pair", &WorkloadSpec::new(1, 4))
            .is_err());
    }
}
