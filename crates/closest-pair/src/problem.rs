//! The problem-level API: [`ClosestPairProblem`], solving through the
//! unified engine to `(ClosestPairOutput, RunReport)`.

use ri_core::engine::{Executable, Problem, RunConfig, RunReport, Runner};
use ri_geometry::Point2;

pub use crate::grid::ClosestPairOutput;

/// The randomized incremental closest pair (§5.2 of the paper, Type 2).
/// Points are inserted in the order given (pre-shuffle them for the
/// paper's expectation bounds); must be pairwise distinct, `len() >= 2`.
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_closest_pair::ClosestPairProblem;
/// use ri_geometry::Point2;
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(10.0, 0.0),
///     Point2::new(10.0, 0.5),
/// ];
/// let (out, report) = ClosestPairProblem::new(&pts).solve(&RunConfig::new());
/// assert_eq!(out.pair, (1, 2));
/// assert!(!report.specials.is_empty()); // grid rebuilds
/// ```
#[derive(Debug)]
pub struct ClosestPairProblem<'a> {
    points: &'a [Point2],
}

impl<'a> ClosestPairProblem<'a> {
    /// A closest-pair problem over `points`.
    pub fn new(points: &'a [Point2]) -> Self {
        ClosestPairProblem { points }
    }
}

struct CpExec<'a> {
    points: &'a [Point2],
    out: Option<ClosestPairOutput>,
}

impl Executable for CpExec<'_> {
    fn name(&self) -> &str {
        "closest-pair"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let (out, report) = crate::grid::run_with(self.points, cfg);
        self.out = Some(out);
        report
    }
}

impl Problem for ClosestPairProblem<'_> {
    type Output = ClosestPairOutput;

    fn solve(&self, cfg: &RunConfig) -> (ClosestPairOutput, RunReport) {
        let mut exec = CpExec {
            points: self.points,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_geometry::PointDistribution;

    #[test]
    fn modes_agree() {
        let pts = PointDistribution::UniformSquare.generate(2000, 4);
        let problem = ClosestPairProblem::new(&pts);
        let (seq, _) = problem.solve(&RunConfig::new().sequential());
        let (par, report) = problem.solve(&RunConfig::new().parallel());
        assert_eq!(seq.pair, par.pair);
        assert_eq!(seq.dist, par.dist);
        assert_eq!(report.algorithm, "closest-pair");
        assert_eq!(report.depth, report.total_sub_rounds());
    }
}
