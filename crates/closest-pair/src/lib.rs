//! # `ri-closest-pair` — the randomized incremental closest pair
//! (§5.2 of the paper, Type 2)
//!
//! Points are inserted in random order into a uniform grid whose cell size
//! is `r`, the closest-pair distance *so far*. Each insertion checks the
//! 3×3 cell neighborhood:
//!
//! * if no earlier point is closer than `r`, the iteration is **regular**
//!   (`O(1)` — a cell holds at most a constant number of points, else the
//!   grid would already have been rebuilt);
//! * otherwise the iteration is **special**: `r` shrinks to the new closest
//!   distance and the grid is rebuilt with the new cell size (`O(i)` work).
//!
//! Backwards analysis: point `i` decreases `r` with probability ≤ `2/i`
//! (it must be one of the two points of the closest pair among the first
//! `i`), so expected work is `Σ O(i)·2/i = O(n)` and the Type 2 executor
//! yields `O(log n · log* n)`-style depth (Theorem 5.2; our measured depth
//! is the executor's sub-round count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
pub mod problem;
pub mod registry;

pub use grid::{brute_force_closest_pair, ClosestPairOutput};
pub use problem::ClosestPairProblem;
