//! Property tests for Delaunay triangulation: validity, sequential ==
//! parallel, and Fact 4.1 (the Figure 1 experiment, E11) on arbitrary
//! point sets.

use proptest::prelude::*;
use ri_core::engine::{Problem, RunConfig};
use ri_delaunay::DelaunayProblem;
use ri_geometry::predicates::orient2d_sign;
use ri_geometry::Point2;

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

/// Arbitrary distinct points on a coarse grid: plenty of collinear and
/// cocircular degeneracies, exercising the exact predicates.
fn grid_points() -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::hash_set((0i32..24, 0i32..24), 3..60).prop_map(|s| {
        s.into_iter()
            .map(|(x, y)| Point2::new(x as f64, y as f64))
            .collect()
    })
}

/// Continuous points (no exact degeneracies, realistic inputs).
fn float_points() -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..80).prop_map(|v| {
        let mut pts: Vec<Point2> = v.into_iter().map(|(x, y)| Point2::new(x, y)).collect();
        pts.sort_by(|a, b| {
            a.x.partial_cmp(&b.x)
                .unwrap()
                .then(a.y.partial_cmp(&b.y).unwrap())
        });
        pts.dedup_by(|a, b| a == b);
        pts
    })
}

fn not_all_collinear(pts: &[Point2]) -> bool {
    pts.len() >= 3
        && pts
            .iter()
            .skip(2)
            .any(|&p| orient2d_sign(pts[0], pts[1], p) != 0)
        || (pts.len() >= 3 && {
            // General check: any non-collinear triple at all.
            let mut found = false;
            'outer: for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    for k in j + 1..pts.len() {
                        if orient2d_sign(pts[i], pts[j], pts[k]) != 0 {
                            found = true;
                            break 'outer;
                        }
                    }
                }
            }
            found
        })
}

fn canonical(mesh: &ri_delaunay::Mesh) -> Vec<[u32; 3]> {
    let mut ts: Vec<[u32; 3]> = mesh
        .finite_triangles()
        .into_iter()
        .map(|mut v| {
            let m = (0..3).min_by_key(|&i| v[i]).unwrap();
            v.rotate_left(m);
            v
        })
        .collect();
    ts.sort_unstable();
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn degenerate_grids_triangulate_validly(pts in grid_points()) {
        prop_assume!(not_all_collinear(&pts));
        let (r, _) = DelaunayProblem::new(&pts).solve(&seq_cfg());
        prop_assert!(r.mesh.validate().is_ok(), "{:?}", r.mesh.validate());
        prop_assert!(r.mesh.is_delaunay_brute_force());
    }

    #[test]
    fn parallel_equals_sequential_on_degenerate_grids(pts in grid_points()) {
        prop_assume!(not_all_collinear(&pts));
        let (seq, _) = DelaunayProblem::new(&pts).solve(&seq_cfg());
        let (par, _) = DelaunayProblem::new(&pts).solve(&par_cfg());
        prop_assert_eq!(canonical(&seq.mesh), canonical(&par.mesh));
        prop_assert_eq!(&seq.stats, &par.stats);
    }

    #[test]
    fn continuous_points_triangulate_validly(pts in float_points()) {
        prop_assume!(pts.len() >= 3 && not_all_collinear(&pts));
        let (par, _) = DelaunayProblem::new(&pts).solve(&par_cfg());
        prop_assert!(par.mesh.validate().is_ok());
        prop_assert!(par.mesh.is_delaunay_brute_force());
    }

    /// E11 / Figure 1: Fact 4.1 holds on every ReplaceBoundary the run
    /// performs — enforced by the `debug_assert!` inside `merge_conflicts`
    /// (runs in debug-profile tests) plus the final validity above. Here we
    /// additionally check the *upper* inclusion: every conflict of a final
    /// run was discovered, i.e. all n points appear as mesh vertices.
    #[test]
    fn every_point_gets_inserted(pts in float_points()) {
        prop_assume!(pts.len() >= 3 && not_all_collinear(&pts));
        let (r, _) = DelaunayProblem::new(&pts).solve(&par_cfg());
        let mut seen = vec![false; r.mesh.points.len()];
        for t in r.mesh.finite_triangles() {
            for v in t {
                seen[v as usize] = true;
            }
        }
        for (u, w) in r.mesh.hull_edges() {
            seen[u as usize] = true;
            seen[w as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "a point vanished from the mesh");
    }
}
