//! The triangle arena, conflict predicate, seed construction, and validity
//! checkers shared by the sequential and parallel algorithms.

use ri_geometry::predicates::{incircle_sign_ccw, orient2d_sign};
use ri_geometry::Point2;

/// The symbolic point at infinity `ω`.
pub const INFINITE_VERTEX: u32 = u32::MAX;

/// A triangle of the (growing) triangulation.
///
/// Vertices are point indices in counter-clockwise order; hull triangles
/// carry [`INFINITE_VERTEX`] in the **last** slot (canonical form): the
/// triangle `(a, b, ω)` is the unbounded region left of the directed hull
/// edge `a → b`.
#[derive(Debug, Clone)]
pub struct Triangle {
    /// CCW vertex triple (canonicalised: `ω` last if present).
    pub v: [u32; 3],
    /// The conflict set `E(t)`: indices of uninserted points that encroach
    /// on this triangle, sorted ascending (so `E[0]` is `min(E(t))`, the
    /// earliest conflicting point). Immutable after creation.
    pub conflicts: Vec<u32>,
}

impl Triangle {
    /// Is this an unbounded hull triangle?
    #[inline]
    pub fn is_infinite(&self) -> bool {
        self.v[2] == INFINITE_VERTEX
    }

    /// Earliest conflicting point (`u32::MAX - 1` sentinel when empty,
    /// distinct from any point id but comparable).
    #[inline]
    pub fn min_conflict(&self) -> u32 {
        self.conflicts.first().copied().unwrap_or(NO_CONFLICT)
    }

    /// The three directed faces (edges) of this triangle, in CCW order.
    /// The triangle lies on the *left* of each directed edge.
    #[inline]
    pub fn directed_faces(&self) -> [(u32, u32); 3] {
        [
            (self.v[0], self.v[1]),
            (self.v[1], self.v[2]),
            (self.v[2], self.v[0]),
        ]
    }
}

/// Sentinel "minimum conflict" for triangles with empty conflict sets;
/// larger than every real point index.
pub const NO_CONFLICT: u32 = u32::MAX - 1;

/// Canonical undirected face key: the two endpoint ids packed into a `u64`
/// (smaller id in the high half — `ω = u32::MAX` packs fine).
#[inline]
pub fn face_key(u: u32, w: u32) -> u64 {
    debug_assert_ne!(u, w, "degenerate face");
    let (lo, hi) = if u < w { (u, w) } else { (w, u) };
    ((lo as u64) << 32) | hi as u64
}

/// The triangulation: points plus the (append-only) triangle arena.
/// Triangles are never mutated once created; "detached" triangles simply
/// stop being referenced. Final triangles are those with empty conflict
/// sets.
#[derive(Debug)]
pub struct Mesh {
    /// The points, in insertion (iteration) order. May differ from the
    /// caller's array by the deterministic seed reordering (see
    /// [`seed_order`]).
    pub points: Vec<Point2>,
    /// The triangle arena (alive and dead).
    pub triangles: Vec<Triangle>,
}

impl Mesh {
    /// Does point `x` encroach on (conflict with) triangle `tri`?
    ///
    /// Finite triangle: strictly inside the circumcircle. Hull triangle
    /// `(a, b, ω)`: strictly left of the directed hull edge `a → b`, or
    /// exactly on the *open segment* `(a, b)` — the degenerate limit of
    /// "inside the circumcircle" as the third vertex goes to infinity
    /// (points collinear *beyond* the segment are on the degenerate
    /// circle, not inside it). This is the rule that keeps collinear
    /// inputs insertable without ever creating a flat triangle.
    #[inline]
    pub fn in_conflict(&self, v: &[u32; 3], x: Point2) -> bool {
        if v[2] == INFINITE_VERTEX {
            let a = self.points[v[0] as usize];
            let b = self.points[v[1] as usize];
            match orient2d_sign(a, b, x) {
                1 => true,
                -1 => false,
                // Collinear: conflict iff strictly inside the open segment.
                _ => (x - a).dot(b - a) > 0.0 && (x - b).dot(a - b) > 0.0,
            }
        } else {
            incircle_sign_ccw(
                self.points[v[0] as usize],
                self.points[v[1] as usize],
                self.points[v[2] as usize],
                x,
            ) > 0
        }
    }

    /// Canonicalise a CCW triple: rotate `ω` into the last slot.
    pub fn canonical(mut v: [u32; 3]) -> [u32; 3] {
        if v[0] == INFINITE_VERTEX {
            v.rotate_left(1);
        }
        if v[1] == INFINITE_VERTEX {
            // (a, ω, b) → rotate right: (b, a, ω).
            v.rotate_left(2);
        }
        v
    }

    /// The finite triangles of the final triangulation (empty conflict
    /// sets, all vertices finite), as vertex triples.
    pub fn finite_triangles(&self) -> Vec<[u32; 3]> {
        self.triangles
            .iter()
            .filter(|t| t.conflicts.is_empty() && !t.is_infinite())
            .map(|t| t.v)
            .collect()
    }

    /// The hull edges (directed `a → b` with outside on the left), from
    /// the final infinite triangles.
    pub fn hull_edges(&self) -> Vec<(u32, u32)> {
        self.triangles
            .iter()
            .filter(|t| t.conflicts.is_empty() && t.is_infinite())
            .map(|t| (t.v[0], t.v[1]))
            .collect()
    }

    /// Brute-force Delaunay check: no point strictly inside any final
    /// finite triangle's circumcircle, and every final triangle CCW.
    /// O(T·n) — tests and small meshes only.
    pub fn is_delaunay_brute_force(&self) -> bool {
        let tris = self.finite_triangles();
        for v in &tris {
            let (a, b, c) = (
                self.points[v[0] as usize],
                self.points[v[1] as usize],
                self.points[v[2] as usize],
            );
            if orient2d_sign(a, b, c) != 1 {
                return false;
            }
            for (i, &p) in self.points.iter().enumerate() {
                let i = i as u32;
                if i != v[0] && i != v[1] && i != v[2] && incircle_sign_ccw(a, b, c, p) > 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Structural + local-Delaunay validation (scales to large meshes):
    ///
    /// 1. every final triangle is CCW;
    /// 2. every edge is shared by exactly two final triangles (counting
    ///    hull triangles), i.e. the mesh is watertight;
    /// 3. Euler's relation `#finite triangles = 2(n − 1) − h` holds;
    /// 4. every internal edge is locally Delaunay (the opposite vertex of
    ///    the neighbour is not strictly inside the circumcircle) — local
    ///    Delaunayhood of a triangulation implies global.
    pub fn validate(&self) -> Result<(), String> {
        let finite = self.finite_triangles();
        let hull = self.hull_edges();
        let n = self.points.len();
        if n < 3 {
            return Err("mesh needs at least 3 points".into());
        }

        // 1. Orientation.
        for v in &finite {
            let (a, b, c) = (
                self.points[v[0] as usize],
                self.points[v[1] as usize],
                self.points[v[2] as usize],
            );
            if orient2d_sign(a, b, c) != 1 {
                return Err(format!("triangle {v:?} not CCW"));
            }
        }

        // 2. Watertightness: every directed edge of a final triangle must
        // be matched by its reverse in another final triangle (hull
        // triangles included).
        use std::collections::HashMap;
        let mut directed: HashMap<(u32, u32), usize> = HashMap::new();
        let all_final: Vec<[u32; 3]> = self
            .triangles
            .iter()
            .filter(|t| t.conflicts.is_empty())
            .map(|t| t.v)
            .collect();
        for v in &all_final {
            let t = Triangle {
                v: *v,
                conflicts: Vec::new(),
            };
            for (u, w) in t.directed_faces() {
                if directed.insert((u, w), 1).is_some() {
                    return Err(format!("directed edge ({u},{w}) seen twice"));
                }
            }
        }
        for &(u, w) in directed.keys() {
            if !directed.contains_key(&(w, u)) {
                return Err(format!("edge ({u},{w}) has no reverse: not watertight"));
            }
        }

        // 3. Euler: with h hull vertices, finite triangles = 2(n−1) − h.
        let h = hull.len(); // hull edges == hull vertices on a convex hull
        if finite.len() != 2 * (n - 1) - h {
            return Err(format!(
                "Euler violated: {} finite triangles, n={n}, hull={h} (expected {})",
                finite.len(),
                2 * (n - 1) - h
            ));
        }

        // 4. Local Delaunay on internal finite-finite edges.
        let mut third: HashMap<(u32, u32), u32> = HashMap::new();
        for v in &finite {
            third.insert((v[0], v[1]), v[2]);
            third.insert((v[1], v[2]), v[0]);
            third.insert((v[2], v[0]), v[1]);
        }
        for (&(u, w), &c) in &third {
            if let Some(&d) = third.get(&(w, u)) {
                let s = incircle_sign_ccw(
                    self.points[u as usize],
                    self.points[w as usize],
                    self.points[c as usize],
                    self.points[d as usize],
                );
                if s > 0 {
                    return Err(format!("edge ({u},{w}) not locally Delaunay"));
                }
            }
        }
        Ok(())
    }
}

/// Compute the deterministic seed reordering: returns the insertion order
/// `order` such that `order[0..3]` are the first three points (by the
/// caller's order) that form a non-degenerate CCW triangle, and the rest
/// keep their relative order. Panics if all points are collinear.
pub fn seed_order(points: &[Point2]) -> Vec<usize> {
    let n = points.len();
    assert!(n >= 3, "Delaunay needs at least 3 points");
    // First point distinct from points[0].
    let j = (1..n)
        .find(|&j| points[j] != points[0])
        .expect("all points identical");
    // First point not collinear with 0 and j.
    let k = (j + 1..n)
        .find(|&k| orient2d_sign(points[0], points[j], points[k]) != 0)
        .expect("all points collinear");
    let mut order = Vec::with_capacity(n);
    // Seed triple first (CCW order), then everything else in input order.
    if orient2d_sign(points[0], points[j], points[k]) > 0 {
        order.extend([0, j, k]);
    } else {
        order.extend([0, k, j]);
    }
    order.extend((1..n).filter(|&i| i != j && i != k));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn face_key_symmetric() {
        assert_eq!(face_key(3, 9), face_key(9, 3));
        assert_ne!(face_key(3, 9), face_key(3, 8));
        assert_eq!(face_key(5, INFINITE_VERTEX), face_key(INFINITE_VERTEX, 5));
    }

    #[test]
    fn canonical_rotations() {
        let inf = INFINITE_VERTEX;
        assert_eq!(Mesh::canonical([1, 2, 3]), [1, 2, 3]);
        assert_eq!(Mesh::canonical([inf, 1, 2]), [1, 2, inf]);
        assert_eq!(Mesh::canonical([1, inf, 2]), [2, 1, inf]);
        assert_eq!(Mesh::canonical([1, 2, inf]), [1, 2, inf]);
    }

    #[test]
    fn conflict_finite_triangle() {
        let mesh = Mesh {
            points: vec![
                p(0.0, 0.0),
                p(2.0, 0.0),
                p(0.0, 2.0),
                p(0.5, 0.5),
                p(5.0, 5.0),
            ],
            triangles: vec![],
        };
        let tri = [0, 1, 2];
        assert!(mesh.in_conflict(&tri, mesh.points[3]));
        assert!(!mesh.in_conflict(&tri, mesh.points[4]));
    }

    #[test]
    fn conflict_infinite_triangle() {
        // Hull triangle (0→1, ω) with 0=(0,0), 1=(1,0): conflict = strictly
        // above the x-axis, or on the open segment (0,0)–(1,0).
        let mesh = Mesh {
            points: vec![p(0.0, 0.0), p(1.0, 0.0)],
            triangles: vec![],
        };
        let tri = [0, 1, INFINITE_VERTEX];
        assert!(mesh.in_conflict(&tri, p(0.5, 1.0))); // strictly left
        assert!(mesh.in_conflict(&tri, p(0.5, 0.0))); // on the open segment
        assert!(!mesh.in_conflict(&tri, p(5.0, 0.0))); // collinear beyond
        assert!(!mesh.in_conflict(&tri, p(-1.0, 0.0))); // collinear before
        assert!(!mesh.in_conflict(&tri, p(0.5, -1.0))); // right
    }

    #[test]
    fn seed_order_basic() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 1.0)];
        let o = seed_order(&pts);
        assert_eq!(o.len(), 3);
        assert_eq!(o[0], 0);
        // CCW check on the chosen triple.
        assert_eq!(orient2d_sign(pts[o[0]], pts[o[1]], pts[o[2]]), 1);
    }

    #[test]
    fn seed_order_skips_collinear_prefix() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(2.0, 0.0),
            p(3.0, 0.0),
            p(1.0, 1.0),
        ];
        let o = seed_order(&pts);
        assert_eq!(&o[0..3], &[0, 1, 4]);
        assert_eq!(&o[3..], &[2, 3]);
    }

    #[test]
    fn seed_order_fixes_cw_triple() {
        let pts = vec![p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)]; // CW as given
        let o = seed_order(&pts);
        assert_eq!(orient2d_sign(pts[o[0]], pts[o[1]], pts[o[2]]), 1);
    }

    #[test]
    #[should_panic(expected = "collinear")]
    fn all_collinear_rejected() {
        seed_order(&[p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)]);
    }

    #[test]
    fn min_conflict_sentinel() {
        let t = Triangle {
            v: [0, 1, 2],
            conflicts: vec![],
        };
        assert_eq!(t.min_conflict(), NO_CONFLICT);
        let t = Triangle {
            v: [0, 1, 2],
            conflicts: vec![7, 9],
        };
        assert_eq!(t.min_conflict(), 7);
    }
}
