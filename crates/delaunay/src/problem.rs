//! The problem-level API: [`DelaunayProblem`], solving through the
//! unified engine to `(DtOutput, RunReport)`.

use ri_core::engine::{ExecMode, Executable, Problem, RunConfig, RunReport, Runner};
use ri_geometry::Point2;

use crate::mesh::Mesh;
use crate::{DtResult, DtStats};

/// The answer of a Delaunay run: the triangulation plus its work counters
/// (identical between modes — Algorithm 5 performs the same
/// `ReplaceBoundary` calls as Algorithm 4, reordered).
#[derive(Debug)]
pub struct DtOutput {
    /// The triangulation (owns the — possibly reseeded — point array).
    pub mesh: Mesh,
    /// Work counters (InCircle / orientation tests, Fact 4.1 savings).
    pub stats: DtStats,
}

/// Randomized incremental Delaunay triangulation (§4 of the paper, Type 1
/// with nested dependences). Points are inserted in the order given
/// (pre-shuffle them for the paper's expectation bounds); needs ≥ 3
/// points, not all collinear, pairwise distinct.
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_delaunay::DelaunayProblem;
/// use ri_geometry::PointDistribution;
///
/// let pts = PointDistribution::UniformSquare.generate(200, 7);
/// let (out, report) = DelaunayProblem::new(&pts).solve(&RunConfig::new());
/// out.mesh.validate().unwrap();
/// assert!(report.depth > 0);
/// ```
#[derive(Debug)]
pub struct DelaunayProblem<'a> {
    points: &'a [Point2],
}

impl<'a> DelaunayProblem<'a> {
    /// A triangulation problem over `points`.
    pub fn new(points: &'a [Point2]) -> Self {
        DelaunayProblem { points }
    }
}

struct DtExec<'a> {
    points: &'a [Point2],
    out: Option<DtOutput>,
}

impl Executable for DtExec<'_> {
    fn name(&self) -> &str {
        "delaunay"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let mut report = RunReport::new("delaunay");
        report.items = self.points.len();
        let result: DtResult = match cfg.mode {
            ExecMode::Sequential => report.phase("solve", cfg.instrument, |_| {
                crate::seq::delaunay_sequential_impl(self.points)
            }),
            ExecMode::Parallel => report.phase("solve", cfg.instrument, |_| {
                crate::par::delaunay_parallel_impl(self.points)
            }),
            // Native relaxed loop: Lemma 4.2 admits firing any subset of
            // active faces, so the k-relaxed schedule reproduces the same
            // triangulation with schedule-dependent work counters.
            ExecMode::Relaxed { k } => report.phase("solve", cfg.instrument, |_| {
                crate::par::delaunay_relaxed_impl(self.points, k, cfg.seed)
            }),
        };
        report.rank_inversions = result.rank_inversions;
        report.wasted_retries = result.wasted_retries;
        let work = result.stats.incircle_tests + result.stats.orient_tests;
        match result.rounds {
            Some(log) => {
                report.depth = log.rounds();
                report.rounds = log;
            }
            None => {
                if !self.points.is_empty() {
                    report.record_round(self.points.len(), work);
                }
                report.depth = self.points.len();
            }
        }
        report.checks = work;
        self.out = Some(DtOutput {
            mesh: result.mesh,
            stats: result.stats,
        });
        report
    }
}

impl Problem for DelaunayProblem<'_> {
    type Output = DtOutput;

    fn solve(&self, cfg: &RunConfig) -> (DtOutput, RunReport) {
        let mut exec = DtExec {
            points: self.points,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_geometry::PointDistribution;

    #[test]
    fn modes_agree_and_report_depth() {
        let pts = PointDistribution::UniformSquare.generate(400, 3);
        let problem = DelaunayProblem::new(&pts);
        let (seq, seq_report) = problem.solve(&RunConfig::new().sequential());
        let (par, par_report) = problem.solve(&RunConfig::new().parallel());
        seq.mesh.validate().unwrap();
        par.mesh.validate().unwrap();
        assert_eq!(seq.stats, par.stats, "identical ReplaceBoundary calls");
        assert_eq!(seq_report.depth, 400);
        assert!(par_report.depth < 120, "parallel depth is O(log n)");
        assert!(par_report.total_work() > 0);
    }
}
