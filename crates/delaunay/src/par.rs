//! Algorithm 5: the parallel incremental Delaunay triangulation.
//!
//! The driver is face-centric. A face `f` with incident triangles
//! `(t, t_o)` is **active** when `min(E(t)) < min(E(t_o))` (with an
//! "empty" sentinel larger than every point id): by Lemma 4.2 the
//! sequential algorithm is guaranteed to eventually call
//! `ReplaceBoundary(t_o, f, t, min(E(t)))`, so the parallel algorithm may
//! fire it immediately. Each round fires *all* active faces in parallel;
//! the new triangles and faces they create are the only candidates whose
//! activity can have changed, so the next round re-examines exactly those.
//!
//! The number of rounds equals the depth of the triangle dependence DAG
//! `G_T(V)` — `O(log n)` whp by Theorem 4.3 — and the multiset of
//! `ReplaceBoundary` calls (hence every work counter) is **identical** to
//! the sequential run's.

use rayon::prelude::*;

use ri_core::engine::{grain, scratch};
use ri_geometry::Point2;
use ri_pram::{ConcurrentPairMap, RoundLog};

use crate::mesh::{face_key, seed_order, Mesh, Triangle, NO_CONFLICT};
use crate::seq::{build_seed, merge_conflicts};
use crate::{DtResult, DtStats};

/// One scheduled `ReplaceBoundary` call.
#[derive(PartialEq, Eq)]
struct Task {
    key: u64,
    /// The side being replaced (the triangle `min(E(t))` conflicts with).
    t: u32,
    /// The surviving side.
    to: u32,
    /// The point being inserted at this face.
    v: u32,
}

/// Activity check for one candidate face against the current mesh: the
/// `ReplaceBoundary` call Lemma 4.2 licenses right now, if any.
fn classify_face(face_map: &ConcurrentPairMap, mesh: &Mesh, key: u64) -> Option<Task> {
    let slots = face_map.get(key);
    let (a, b) = (slots.a?, slots.b?);
    let (t1, t2) = (a as u32, b as u32);
    let m1 = mesh.triangles[t1 as usize].min_conflict();
    let m2 = mesh.triangles[t2 as usize].min_conflict();
    match m1.cmp(&m2) {
        std::cmp::Ordering::Equal => None, // both done, or interior
        std::cmp::Ordering::Less => Some(Task {
            key,
            t: t1,
            to: t2,
            v: m1,
        }),
        std::cmp::Ordering::Greater => Some(Task {
            key,
            t: t2,
            to: t1,
            v: m2,
        }),
    }
}

/// A freshly created triangle, before arena insertion.
struct NewTri {
    verts: [u32; 3],
    conflicts: Vec<u32>,
    key: u64,
    dead: u32,
    stats: DtStats,
}

/// Below this many tasks a divide step stops recursing and fires
/// sequentially (merge work per task is substantial, so the grain can be
/// much finer than the combinator cutoff).
const FIRE_GRAIN: usize = 128;

/// Fire `tasks` (pure reads of the arena, private outputs) by parallel
/// divide-and-conquer: [`rayon::join`] splits the slice in half until the
/// grain, and concatenation preserves task order. `join`'s thread budget
/// halves per fork, so the whole divide tree spawns at most `threads − 1`
/// helpers regardless of task count.
fn fire_tasks(mesh: &Mesh, tasks: &[Task]) -> Vec<NewTri> {
    if tasks.len() <= FIRE_GRAIN {
        return tasks.iter().map(|task| fire_one(mesh, task)).collect();
    }
    let (lo, hi) = tasks.split_at(tasks.len() / 2);
    let (mut left, right) = rayon::join(|| fire_tasks(mesh, lo), || fire_tasks(mesh, hi));
    left.extend(right);
    left
}

/// One `ReplaceBoundary` call: build the replacement triangle for `task`.
fn fire_one(mesh: &Mesh, task: &Task) -> NewTri {
    let t = &mesh.triangles[task.t as usize];
    let to = &mesh.triangles[task.to as usize];
    let (u, w) = t
        .directed_faces()
        .into_iter()
        .find(|&(u, w)| face_key(u, w) == task.key)
        .expect("task face belongs to its triangle");
    let verts = Mesh::canonical([u, w, task.v]);
    let mut local = DtStats::default();
    let conflicts = merge_conflicts(
        mesh,
        &verts,
        &t.conflicts,
        &to.conflicts,
        task.v,
        &mut local,
    );
    NewTri {
        verts,
        conflicts,
        key: task.key,
        dead: task.t,
        stats: local,
    }
}

/// Algorithm 5: parallel incremental Delaunay triangulation of `points`
/// taken in the given (random) order. Same preconditions as the sequential
/// version; produces the identical triangulation and work counters.
pub(crate) fn delaunay_parallel_impl(points: &[Point2]) -> DtResult {
    let order = seed_order(points);
    let points_in_order: Vec<Point2> = order.iter().map(|&i| points[i]).collect();
    let n = points_in_order.len();

    let mut stats = DtStats::default();
    let (mut mesh, seed_tris) = build_seed(points_in_order, &mut stats);

    let mut face_map = ConcurrentPairMap::with_capacity(8 * n + 64);
    // Per-round working vectors come from (and return to) the engine's
    // scratch arena; `candidates`/`next` swap roles each round.
    let mut candidates: Vec<u64> = scratch::take_vec();
    let mut next: Vec<u64> = scratch::take_vec();
    let mut tasks: Vec<Task> = scratch::take_vec();
    for tri in seed_tris {
        let id = mesh.triangles.len() as u32;
        for (u, w) in tri.directed_faces() {
            let key = face_key(u, w);
            face_map.insert(key, id as u64);
            candidates.push(key);
        }
        mesh.triangles.push(tri);
        stats.triangles_created += 1;
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mut log = RoundLog::new();
    while !candidates.is_empty() {
        // Activity check: which candidate faces may fire? Small rounds
        // (the long tail) check inline; either way the task list reuses
        // one scratch buffer across rounds.
        let classify = |key: u64| classify_face(&face_map, &mesh, key);
        tasks.clear();
        if grain::parallel_round(candidates.len()) {
            let chunk = candidates.len().div_ceil(rayon::recommended_splits());
            let parts: Vec<Vec<Task>> = candidates
                .par_chunks(chunk)
                .map(|keys| keys.iter().filter_map(|&key| classify(key)).collect())
                .collect();
            for p in parts {
                tasks.extend(p);
            }
        } else {
            tasks.extend(candidates.iter().filter_map(|&key| classify(key)));
        }
        if tasks.is_empty() {
            break;
        }

        // Fire all active faces by join recursion over the task slice.
        let new_tris: Vec<NewTri> = fire_tasks(&mesh, &tasks);

        // Commit phase: append to the arena, rewire the face map, and
        // gather the touched faces as the next round's candidates.
        let base = mesh.triangles.len() as u32;
        let mut round_work = 0u64;
        for nt in &new_tris {
            stats.incircle_tests += nt.stats.incircle_tests;
            stats.orient_tests += nt.stats.orient_tests;
            stats.skipped_tests += nt.stats.skipped_tests;
            round_work += nt.stats.incircle_tests + nt.stats.orient_tests;
        }
        stats.triangles_created += new_tris.len();

        next.clear();
        next.reserve(3 * new_tris.len());
        for (off, nt) in new_tris.into_iter().enumerate() {
            let id = base + off as u32;
            mesh.triangles.push(Triangle {
                v: nt.verts,
                conflicts: nt.conflicts,
            });
            let replaced = face_map.replace(nt.key, nt.dead as u64, id as u64);
            assert!(replaced, "face map lost the dead side of {:?}", nt.verts);
            next.push(nt.key);
            for (u, w) in mesh.triangles[id as usize].directed_faces() {
                let k = face_key(u, w);
                if k != nt.key {
                    face_map.insert(k, id as u64);
                    next.push(k);
                }
            }
        }
        if face_map.should_grow() {
            face_map.grow();
        }
        next.sort_unstable();
        next.dedup();
        std::mem::swap(&mut candidates, &mut next);
        log.record(tasks.len(), round_work);
    }
    scratch::put_vec(candidates);
    scratch::put_vec(next);
    scratch::put_vec(tasks);

    debug_assert!(
        mesh.triangles
            .iter()
            .all(|t| t.conflicts.is_empty() || t.min_conflict() != NO_CONFLICT),
        "sanity"
    );
    DtResult {
        mesh,
        stats,
        rounds: Some(log),
        rank_inversions: 0,
        wasted_retries: 0,
    }
}

/// Algorithm 5 under a k-relaxed scheduler. Each round classifies the
/// candidate faces exactly as [`delaunay_parallel_impl`], but fires them
/// in [`MultiQueue`] pop order (priority = the point being inserted),
/// committing sub-batches of `k` and revalidating every popped task
/// against the *current* mesh: a task an earlier sub-batch invalidated
/// (its face was rewired) is deferred to the next round and counted as a
/// wasted retry. Lemma 4.2 licenses firing any subset of currently-active
/// faces, so the final triangulation is identical to the exact runs —
/// only the work counters (and the round log) are schedule-dependent.
pub(crate) fn delaunay_relaxed_impl(points: &[Point2], k: usize, seed: u64) -> DtResult {
    let order = seed_order(points);
    let points_in_order: Vec<Point2> = order.iter().map(|&i| points[i]).collect();
    let n = points_in_order.len();

    let mut stats = DtStats::default();
    let (mut mesh, seed_tris) = build_seed(points_in_order, &mut stats);

    let mut face_map = ConcurrentPairMap::with_capacity(8 * n + 64);
    let mut candidates: Vec<u64> = scratch::take_vec();
    let mut next: Vec<u64> = scratch::take_vec();
    let mut tasks: Vec<Task> = Vec::new();
    for tri in seed_tris {
        let id = mesh.triangles.len() as u32;
        for (u, w) in tri.directed_faces() {
            let key = face_key(u, w);
            face_map.insert(key, id as u64);
            candidates.push(key);
        }
        mesh.triangles.push(tri);
        stats.triangles_created += 1;
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mq: ri_pram::MultiQueue<Task> = ri_pram::MultiQueue::new(k, seed);
    let mut batch: Vec<(u64, Task)> = Vec::new();
    let mut valid: Vec<Task> = Vec::new();
    let mut wasted = 0u64;
    let mut log = RoundLog::new();
    while !candidates.is_empty() {
        tasks.clear();
        if grain::parallel_round(candidates.len()) {
            let chunk = candidates.len().div_ceil(rayon::recommended_splits());
            let parts: Vec<Vec<Task>> = candidates
                .par_chunks(chunk)
                .map(|keys| {
                    keys.iter()
                        .filter_map(|&key| classify_face(&face_map, &mesh, key))
                        .collect()
                })
                .collect();
            for p in parts {
                tasks.extend(p);
            }
        } else {
            tasks.extend(
                candidates
                    .iter()
                    .filter_map(|&key| classify_face(&face_map, &mesh, key)),
            );
        }
        if tasks.is_empty() {
            break;
        }

        // Refill the (reused) relaxed queue: priorities restart each
        // round, so each refill is its own inversion epoch.
        mq.begin_epoch();
        for task in tasks.drain(..) {
            mq.push(task.v as u64, task);
        }
        next.clear();
        let mut round_tasks = 0usize;
        let mut round_work = 0u64;
        loop {
            batch.clear();
            if mq.pop_batch(k, &mut batch) == 0 {
                break;
            }
            // Revalidate against the current mesh: the first sub-batch of
            // a round is always intact (nothing fired since it was
            // classified), so every round commits at least one task.
            valid.clear();
            for (_, task) in batch.drain(..) {
                match classify_face(&face_map, &mesh, task.key) {
                    Some(now) if now == task => valid.push(task),
                    _ => {
                        wasted += 1;
                        next.push(task.key);
                    }
                }
            }
            if valid.is_empty() {
                continue;
            }
            let new_tris = fire_tasks(&mesh, &valid);
            let base = mesh.triangles.len() as u32;
            for nt in &new_tris {
                stats.incircle_tests += nt.stats.incircle_tests;
                stats.orient_tests += nt.stats.orient_tests;
                stats.skipped_tests += nt.stats.skipped_tests;
                round_work += nt.stats.incircle_tests + nt.stats.orient_tests;
            }
            stats.triangles_created += new_tris.len();
            round_tasks += new_tris.len();
            next.reserve(3 * new_tris.len());
            for (off, nt) in new_tris.into_iter().enumerate() {
                let id = base + off as u32;
                mesh.triangles.push(Triangle {
                    v: nt.verts,
                    conflicts: nt.conflicts,
                });
                let replaced = face_map.replace(nt.key, nt.dead as u64, id as u64);
                assert!(replaced, "face map lost the dead side of {:?}", nt.verts);
                next.push(nt.key);
                for (u, w) in mesh.triangles[id as usize].directed_faces() {
                    let k = face_key(u, w);
                    if k != nt.key {
                        face_map.insert(k, id as u64);
                        next.push(k);
                    }
                }
            }
            if face_map.should_grow() {
                face_map.grow();
            }
        }
        next.sort_unstable();
        next.dedup();
        std::mem::swap(&mut candidates, &mut next);
        log.record(round_tasks, round_work);
    }
    scratch::put_vec(candidates);
    scratch::put_vec(next);

    debug_assert!(
        mesh.triangles
            .iter()
            .all(|t| t.conflicts.is_empty() || t.min_conflict() != NO_CONFLICT),
        "sanity"
    );
    DtResult {
        mesh,
        stats,
        rounds: Some(log),
        rank_inversions: mq.rank_inversions(),
        wasted_retries: wasted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::delaunay_sequential_impl;
    use ri_geometry::distributions::dedup_points;
    use ri_geometry::PointDistribution;
    use ri_pram::random_permutation;

    fn workload(n: usize, seed: u64, dist: PointDistribution) -> Vec<Point2> {
        let pts = dedup_points(dist.generate(n, seed));
        let order = random_permutation(pts.len(), seed ^ 0xd7);
        order.iter().map(|&i| pts[i]).collect()
    }

    fn sorted_tris(mesh: &Mesh) -> Vec<[u32; 3]> {
        let mut ts: Vec<[u32; 3]> = mesh
            .finite_triangles()
            .into_iter()
            .map(|mut v| {
                // Canonical rotation: smallest vertex first (keeps CCW).
                let m = (0..3).min_by_key(|&i| v[i]).unwrap();
                v.rotate_left(m);
                v
            })
            .collect();
        ts.sort_unstable();
        ts
    }

    #[test]
    fn matches_sequential_exactly() {
        for seed in 0..6 {
            let pts = workload(200, seed, PointDistribution::UniformSquare);
            let seq = delaunay_sequential_impl(&pts);
            let par = delaunay_parallel_impl(&pts);
            assert_eq!(
                sorted_tris(&seq.mesh),
                sorted_tris(&par.mesh),
                "triangulations differ at seed {seed}"
            );
            assert_eq!(seq.stats, par.stats, "work counters differ at seed {seed}");
        }
    }

    #[test]
    fn relaxed_matches_sequential_mesh() {
        for seed in 0..4 {
            let pts = workload(200, seed, PointDistribution::UniformSquare);
            let seq = delaunay_sequential_impl(&pts);
            for k in [1usize, 4, 64] {
                let rel = delaunay_relaxed_impl(&pts, k, seed ^ 0x99);
                rel.mesh.validate().unwrap();
                assert_eq!(
                    sorted_tris(&seq.mesh),
                    sorted_tris(&rel.mesh),
                    "k={k} seed={seed}: relaxed firing must preserve the mesh"
                );
            }
        }
    }

    #[test]
    fn valid_delaunay_across_distributions() {
        for dist in [
            PointDistribution::UniformSquare,
            PointDistribution::UniformDisk,
            PointDistribution::Clusters(4),
            PointDistribution::NearCircle,
            PointDistribution::JitteredGrid,
        ] {
            let pts = workload(300, 7, dist);
            let r = delaunay_parallel_impl(&pts);
            r.mesh
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", dist.name()));
        }
    }

    #[test]
    fn brute_force_delaunay_small() {
        for seed in 0..4 {
            let pts = workload(80, seed, PointDistribution::UniformSquare);
            let r = delaunay_parallel_impl(&pts);
            assert!(r.mesh.is_delaunay_brute_force(), "seed {seed}");
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let pts = workload(1 << 12, 3, PointDistribution::UniformSquare);
        let r = delaunay_parallel_impl(&pts);
        let rounds = r.rounds.unwrap().rounds();
        // Theorem 4.3: O(d log n) whp; generous constant.
        assert!(
            rounds < 12 * 12,
            "rounds {rounds} suspiciously deep for n=4096"
        );
        assert!(rounds >= 12, "rounds {rounds} implausibly shallow");
    }

    #[test]
    fn larger_mesh_valid() {
        let pts = workload(5000, 1, PointDistribution::UniformSquare);
        let r = delaunay_parallel_impl(&pts);
        r.mesh.validate().unwrap();
    }

    #[test]
    fn collinear_run_parallel() {
        let mut pts: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64, 0.0)).collect();
        pts.push(Point2::new(3.5, 7.0));
        let r = delaunay_parallel_impl(&pts);
        r.mesh.validate().unwrap();
        assert_eq!(r.mesh.finite_triangles().len(), 19); // 19 segments fanned to the apex
    }
}
