//! # `ri-delaunay` — randomized incremental Delaunay triangulation
//! (§4 of the paper, Type 1 with nested dependences)
//!
//! This crate implements the Boissonnat–Teillaud *conflict-set* variant of
//! incremental Delaunay triangulation analysed by the paper:
//!
//! * **Algorithm 4** (sequential mode of [`DelaunayProblem`]) — for each
//!   point in random order, the set of triangles it encroaches (`R`) is
//!   located directly through the maintained conflict sets `E(t)`; every
//!   boundary face of `R` is replaced by a new triangle through the point
//!   (`ReplaceBoundary`), whose conflict set is filtered from
//!   `E(t) ∪ E(t_o)` using **Fact 4.1** (points in *both* sets need no
//!   InCircle test — the source of the 24 vs 36 constant in Theorem 4.5).
//! * **Algorithm 5** (parallel mode of [`DelaunayProblem`]) — the same
//!   `ReplaceBoundary`
//!   calls, discovered face-by-face: a face whose two triangles `t, t_o`
//!   satisfy `min(E(t)) < min(E(t_o))` can fire immediately (Lemma 4.2),
//!   so each round processes all such *active faces* in parallel. The
//!   number of rounds is the triangle-dependence depth, `O(log n)` whp
//!   (Theorem 4.3).
//!
//! **Substitution note (documented in `DESIGN.md`):** instead of a huge
//! finite bounding triangle, the triangulation is seeded with the first
//! non-collinear triple of the insertion order plus one *symbolic point at
//! infinity* `ω`; the conflict region of a hull triangle `(a, b, ω)` is the
//! closed half-plane left of the directed hull edge `(a → b)`
//! (`orient2d(a,b,x) ≥ 0`). Fact 4.1 extends to these triangles (the
//! half-plane/disk cap arguments in `mesh.rs`), so the work accounting is
//! unchanged, and correctness never depends on a bounding-box scale factor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mesh;
mod par;
pub mod problem;
pub mod registry;
mod seq;

pub use mesh::{Mesh, Triangle, INFINITE_VERTEX};
pub use problem::{DelaunayProblem, DtOutput};

/// Work counters for the Theorem 4.5 experiment.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DtStats {
    /// InCircle tests performed on finite triangles (the quantity
    /// Theorem 4.5 bounds by `24 n ln n + O(n)`).
    pub incircle_tests: u64,
    /// Orientation tests for hull (infinite) triangle conflicts.
    pub orient_tests: u64,
    /// Tests *saved* by Fact 4.1 (points in `E(t) ∩ E(t_o)` inherited
    /// without a test) — the 24-vs-36 ablation data.
    pub skipped_tests: u64,
    /// Total triangles created (including the 4 seed triangles).
    pub triangles_created: usize,
}

/// Result of a Delaunay run.
#[derive(Debug)]
pub struct DtResult {
    /// The triangulation (owns the — possibly reseeded — point array).
    pub mesh: Mesh,
    /// Work counters.
    pub stats: DtStats,
    /// Parallel runs: per-round log (`rounds()` = dependence depth).
    /// `None` for sequential runs.
    pub rounds: Option<ri_pram::RoundLog>,
    /// Relaxed runs: out-of-priority-order pops of the scheduler
    /// (0 otherwise).
    pub rank_inversions: u64,
    /// Relaxed runs: popped tasks that had gone stale by fire time and
    /// were re-enqueued for the next round (0 otherwise).
    pub wasted_retries: u64,
}
