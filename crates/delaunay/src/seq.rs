//! Algorithm 4: the sequential Boissonnat–Teillaud incremental Delaunay
//! triangulation with explicit conflict sets.

use ri_pram::hash::FxHashMap;

use ri_geometry::predicates::orient2d_sign;
use ri_geometry::Point2;

use crate::mesh::{face_key, seed_order, Mesh, Triangle, INFINITE_VERTEX};
use crate::{DtResult, DtStats};

/// State shared with `ReplaceBoundary`.
struct SeqState {
    mesh: Mesh,
    /// face key → the (up to two) incident alive triangle ids.
    face_map: FxHashMap<u64, [u32; 2]>,
    /// point id → triangles whose conflict set contains it (may reference
    /// dead triangles; filtered lazily).
    point_conflicts: Vec<Vec<u32>>,
    /// Per-triangle "ripped at iteration" stamp (u32::MAX = alive).
    ripped: Vec<u32>,
    stats: DtStats,
}

impl SeqState {
    fn alive(&self, t: u32) -> bool {
        self.ripped[t as usize] == u32::MAX
    }

    fn push_triangle(&mut self, tri: Triangle) -> u32 {
        let id = self.mesh.triangles.len() as u32;
        for &p in &tri.conflicts {
            self.point_conflicts[p as usize].push(id);
        }
        for (u, w) in tri.directed_faces() {
            let slots = self.face_map.entry(face_key(u, w)).or_insert([u32::MAX; 2]);
            if slots[0] == u32::MAX {
                slots[0] = id;
            } else if slots[1] == u32::MAX {
                slots[1] = id;
            } else {
                panic!("face ({u},{w}) already has two triangles");
            }
        }
        self.mesh.triangles.push(tri);
        self.ripped.push(u32::MAX);
        self.stats.triangles_created += 1;
        id
    }

    /// Replace the dead side `t` of face `(u, w)` (directed as in `t`) with
    /// a new triangle through point `v`; `to` is the surviving side.
    fn replace_boundary(&mut self, to: u32, u: u32, w: u32, t: u32, v: u32) -> u32 {
        // Remove t from the face entry now; the new triangle re-claims the
        // slot in push_triangle.
        let key = face_key(u, w);
        let slots = self.face_map.get_mut(&key).expect("face exists");
        if slots[0] == t {
            slots[0] = u32::MAX;
        } else if slots[1] == t {
            slots[1] = u32::MAX;
        } else {
            panic!("triangle {t} not on face ({u},{w})");
        }

        let verts = Mesh::canonical([u, w, v]);
        if verts[2] != INFINITE_VERTEX {
            debug_assert_eq!(
                orient2d_sign(
                    self.mesh.points[verts[0] as usize],
                    self.mesh.points[verts[1] as usize],
                    self.mesh.points[verts[2] as usize]
                ),
                1,
                "new triangle must be CCW"
            );
        }
        let conflicts = merge_conflicts(
            &self.mesh,
            &verts,
            &self.mesh.triangles[t as usize].conflicts,
            &self.mesh.triangles[to as usize].conflicts,
            v,
            &mut self.stats,
        );
        self.push_triangle(Triangle {
            v: verts,
            conflicts,
        })
    }
}

/// Fact 4.1 merge: walk the two sorted conflict lists; points in both are
/// inherited without a test, points in exactly one are tested against the
/// new triangle. The inserted point `v` (and any new-triangle vertex) is
/// excluded.
pub(crate) fn merge_conflicts(
    mesh: &Mesh,
    verts: &[u32; 3],
    ea: &[u32],
    eb: &[u32],
    v: u32,
    stats: &mut DtStats,
) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let is_vertex = |p: u32| p == verts[0] || p == verts[1] || p == verts[2] || p == v;
    while i < ea.len() || j < eb.len() {
        let a = ea.get(i).copied().unwrap_or(u32::MAX);
        let b = eb.get(j).copied().unwrap_or(u32::MAX);
        let (p, in_both) = match a.cmp(&b) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                (a, true)
            }
            std::cmp::Ordering::Less => {
                i += 1;
                (a, false)
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                (b, false)
            }
        };
        if is_vertex(p) {
            continue;
        }
        if in_both {
            // Fact 4.1: E(t) ∩ E(t_o) ⊆ E(t') — no test needed.
            debug_assert!(
                mesh.in_conflict(verts, mesh.points[p as usize]),
                "Fact 4.1 violated: {p} in both conflict sets but not in E(t') of {verts:?}"
            );
            stats.skipped_tests += 1;
            out.push(p);
        } else {
            if verts[2] == INFINITE_VERTEX {
                stats.orient_tests += 1;
            } else {
                stats.incircle_tests += 1;
            }
            if mesh.in_conflict(verts, mesh.points[p as usize]) {
                out.push(p);
            }
        }
    }
    out
}

/// Build the seed triangulation: the first non-collinear triple of the
/// order as a CCW triangle plus its three hull (infinite) triangles, with
/// conflict sets over all remaining points.
pub(crate) fn build_seed(
    points_in_order: Vec<Point2>,
    stats: &mut DtStats,
) -> (Mesh, Vec<Triangle>) {
    let mesh = Mesh {
        points: points_in_order,
        triangles: Vec::new(),
    };
    let n = mesh.points.len();
    let seeds: [[u32; 3]; 4] = [
        [0, 1, 2],
        [1, 0, INFINITE_VERTEX],
        [2, 1, INFINITE_VERTEX],
        [0, 2, INFINITE_VERTEX],
    ];
    let mut tris = Vec::with_capacity(4);
    for verts in seeds {
        let mut conflicts = Vec::new();
        for p in 3..n as u32 {
            if verts[2] == INFINITE_VERTEX {
                stats.orient_tests += 1;
            } else {
                stats.incircle_tests += 1;
            }
            if mesh.in_conflict(&verts, mesh.points[p as usize]) {
                conflicts.push(p);
            }
        }
        tris.push(Triangle {
            v: verts,
            conflicts,
        });
    }
    (mesh, tris)
}

/// Algorithm 4: sequential incremental Delaunay triangulation of `points`
/// taken in the given (random) order. Needs ≥ 3 points, not all collinear,
/// pairwise distinct.
pub(crate) fn delaunay_sequential_impl(points: &[Point2]) -> DtResult {
    let order = seed_order(points);
    let points_in_order: Vec<Point2> = order.iter().map(|&i| points[i]).collect();
    let n = points_in_order.len();

    let mut stats = DtStats::default();
    let (mesh, seed_tris) = build_seed(points_in_order, &mut stats);
    let mut st = SeqState {
        mesh,
        face_map: FxHashMap::default(),
        point_conflicts: vec![Vec::new(); n],
        ripped: Vec::new(),
        stats,
    };
    for tri in seed_tris {
        st.push_triangle(tri);
    }

    for i in 3..n as u32 {
        // R ← {t ∈ M | v_i ∈ E(t)} via the point→triangle mapping.
        let r: Vec<u32> = st.point_conflicts[i as usize]
            .iter()
            .copied()
            .filter(|&t| st.alive(t))
            .collect();
        assert!(!r.is_empty(), "point {i} conflicts with no alive triangle");
        for &t in &r {
            st.ripped[t as usize] = i;
        }
        // Boundary faces: faces of R whose other side is not in R.
        for &t in &r {
            for (u, w) in st.mesh.triangles[t as usize].directed_faces() {
                let slots = st.face_map[&face_key(u, w)];
                let to = if slots[0] == t { slots[1] } else { slots[0] };
                debug_assert_ne!(to, u32::MAX, "face ({u},{w}) lost its other side");
                if st.ripped[to as usize] != i {
                    // `to` survives iteration i (alive or ripped earlier —
                    // only alive is possible since faces of dead triangles
                    // were removed from the map).
                    debug_assert!(st.alive(to));
                    st.replace_boundary(to, u, w, t, i);
                }
            }
        }
        // Remove dead triangles' remaining (interior) face slots.
        for &t in &r {
            for (u, w) in st.mesh.triangles[t as usize].directed_faces() {
                if let Some(slots) = st.face_map.get_mut(&face_key(u, w)) {
                    for s in slots.iter_mut() {
                        if *s == t {
                            *s = u32::MAX;
                        }
                    }
                }
            }
        }
    }

    DtResult {
        mesh: st.mesh,
        stats: st.stats,
        rounds: None,
        rank_inversions: 0,
        wasted_retries: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_geometry::distributions::dedup_points;
    use ri_geometry::PointDistribution;
    use ri_pram::random_permutation;

    fn workload(n: usize, seed: u64, dist: PointDistribution) -> Vec<Point2> {
        let pts = dedup_points(dist.generate(n, seed));
        let order = random_permutation(pts.len(), seed ^ 0xd7);
        order.iter().map(|&i| pts[i]).collect()
    }

    #[test]
    fn triangle_of_three() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ];
        let r = delaunay_sequential_impl(&pts);
        assert_eq!(r.mesh.finite_triangles().len(), 1);
        assert_eq!(r.mesh.hull_edges().len(), 3);
        r.mesh.validate().unwrap();
    }

    #[test]
    fn square_two_triangles() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
        ];
        let r = delaunay_sequential_impl(&pts);
        assert_eq!(r.mesh.finite_triangles().len(), 2);
        r.mesh.validate().unwrap();
        assert!(r.mesh.is_delaunay_brute_force());
    }

    #[test]
    fn interior_point_fan() {
        // 3 corners + center: 3 triangles around the center.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 4.0),
            Point2::new(1.0, 1.0),
        ];
        let r = delaunay_sequential_impl(&pts);
        assert_eq!(r.mesh.finite_triangles().len(), 3);
        r.mesh.validate().unwrap();
        assert!(r.mesh.is_delaunay_brute_force());
    }

    #[test]
    fn random_points_valid_delaunay() {
        for seed in 0..6 {
            let pts = workload(120, seed, PointDistribution::UniformSquare);
            let r = delaunay_sequential_impl(&pts);
            r.mesh
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                r.mesh.is_delaunay_brute_force(),
                "not Delaunay at seed {seed}"
            );
        }
    }

    #[test]
    fn clustered_and_circle_distributions() {
        for dist in [
            PointDistribution::Clusters(4),
            PointDistribution::NearCircle,
            PointDistribution::UniformDisk,
        ] {
            let pts = workload(150, 3, dist);
            let r = delaunay_sequential_impl(&pts);
            r.mesh
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", dist.name()));
            assert!(r.mesh.is_delaunay_brute_force(), "{} failed", dist.name());
        }
    }

    #[test]
    fn near_degenerate_grid() {
        let pts = workload(100, 5, PointDistribution::JitteredGrid);
        let r = delaunay_sequential_impl(&pts);
        r.mesh.validate().unwrap();
        assert!(r.mesh.is_delaunay_brute_force());
    }

    #[test]
    fn collinear_run_with_one_offline_point() {
        // Adversarial: many collinear points + one apex. Exercises the
        // closed half-plane conflict rule.
        let mut pts: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64, 0.0)).collect();
        pts.push(Point2::new(3.5, 7.0));
        let r = delaunay_sequential_impl(&pts);
        r.mesh.validate().unwrap();
        assert_eq!(r.mesh.finite_triangles().len(), 19); // 19 segments fanned to the apex
    }

    #[test]
    fn incircle_count_within_theorem_bound() {
        let n = 2000;
        let pts = workload(n, 11, PointDistribution::UniformSquare);
        let r = delaunay_sequential_impl(&pts);
        let n = pts.len() as f64;
        let bound = 24.0 * n * n.ln() + 50.0 * n;
        assert!(
            (r.stats.incircle_tests as f64) < bound,
            "InCircle tests {} above Theorem 4.5 bound {bound}",
            r.stats.incircle_tests
        );
        assert!(r.stats.skipped_tests > 0, "Fact 4.1 never fired");
    }
}
