//! Registry entry: `"delaunay"` — incremental Delaunay triangulation of a
//! seeded point workload (§4, Type 1 with nested dependences). The
//! workload shape is a point-distribution name (default
//! `"uniform-square"`).

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_geometry::{named_point_workload, Point2};

use crate::problem::DelaunayProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "delaunay",
        "incremental Delaunay triangulation of a point workload (§4, Type 1 nested)",
        |spec| {
            let points = named_point_workload(
                "delaunay",
                spec.n,
                spec.seed,
                spec.shape_or("uniform-square"),
                3,
            )?;
            Ok(Box::new(DelaunayWorkload { points }))
        },
    );
}

struct DelaunayWorkload {
    points: Vec<Point2>,
}

impl ErasedProblem for DelaunayWorkload {
    fn name(&self) -> &str {
        "delaunay"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = DelaunayProblem::new(&self.points).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("points", self.points.len() as f64)
            .answer_num("triangles", out.mesh.finite_triangles().len() as f64)
            .answer_bool("valid", out.mesh.validate().is_ok())
            .metric_num("incircle_tests", out.stats.incircle_tests as f64)
            .metric_num("orient_tests", out.stats.orient_tests as f64)
            .metric_num("skipped_tests", out.stats.skipped_tests as f64);
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves_and_validates() {
        let mut reg = Registry::new();
        register(&mut reg);
        let spec = WorkloadSpec::new(120, 5).shape("uniform-disk");
        let (summary, report) = reg.solve("delaunay", &spec, &RunConfig::new()).unwrap();
        assert!(summary.to_json().contains("\"valid\":true"));
        assert!(report.depth > 0);
    }

    #[test]
    fn bad_shape_and_tiny_size_are_rejected() {
        let mut reg = Registry::new();
        register(&mut reg);
        let err = reg
            .construct("delaunay", &WorkloadSpec::new(100, 1).shape("sideways"))
            .err()
            .unwrap();
        assert!(err.to_string().contains("unknown point distribution"));
        let err = reg
            .construct("delaunay", &WorkloadSpec::new(2, 1))
            .err()
            .unwrap();
        assert!(err.to_string().contains("at least 3"));
    }
}
