//! Registry entry: `"delaunay"` — incremental Delaunay triangulation of a
//! seeded point workload (§4, Type 1 with nested dependences). The
//! workload shape is a point-distribution name (default
//! `"uniform-square"`) — plus the native streaming adapter, which fixes
//! the full point set at open and reports each batch's triangulation
//! *edge diff* (edges added and removed as new points retriangulate
//! their cavities) as the delta.

use std::collections::HashSet;

use ri_core::engine::json::Value;
use ri_core::engine::registry::{ErasedIncremental, ErasedProblem, OutputSummary, Registry};
use ri_core::engine::session::{BatchDelta, FeedState};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_geometry::{named_point_workload, Point2};

use crate::problem::DelaunayProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "delaunay",
        "incremental Delaunay triangulation of a point workload (§4, Type 1 nested)",
        |spec| {
            let points = named_point_workload(
                "delaunay",
                spec.n,
                spec.seed,
                spec.shape_or("uniform-square"),
                3,
            )?;
            Ok(Box::new(DelaunayWorkload { points }))
        },
    );
    reg.register_incremental("delaunay", |spec| {
        // Same generator call as the one-shot constructor, so the final
        // streamed prefix is the one-shot instance bit for bit.
        let points = named_point_workload(
            "delaunay",
            spec.n,
            spec.seed,
            spec.shape_or("uniform-square"),
            3,
        )?;
        // Capacity is the *deduplicated* point count, not spec.n: a
        // duplicate-heavy shape shrinks the instance, and feeding past
        // points.len() would index out of bounds.
        let capacity = points.len();
        Ok(Box::new(DelaunayStream {
            points,
            edges: HashSet::new(),
            state: FeedState::new(capacity),
        }))
    });
}

fn summarize(points: &[Point2], cfg: &RunConfig) -> (OutputSummary, RunReport, Vec<(u32, u32)>) {
    let (out, report) = DelaunayProblem::new(points).solve(cfg);
    let mut s = OutputSummary::new();
    s.answer_num("points", points.len() as f64)
        .answer_num("triangles", out.mesh.finite_triangles().len() as f64)
        .answer_bool("valid", out.mesh.validate().is_ok())
        .metric_num("incircle_tests", out.stats.incircle_tests as f64)
        .metric_num("orient_tests", out.stats.orient_tests as f64)
        .metric_num("skipped_tests", out.stats.skipped_tests as f64);
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for t in out.mesh.finite_triangles() {
        for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    let mut edges: Vec<(u32, u32)> = edges.into_iter().collect();
    edges.sort_unstable();
    (s, report, edges)
}

/// FNV-1a over an edge list, masked below 2⁵³ so the checksum survives a
/// JSON (f64) round trip exactly.
fn edge_checksum(edges: &[(u32, u32)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(a, b) in edges {
        for x in [a, b] {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x1_0000_0193);
            }
        }
    }
    h & ((1 << 53) - 1)
}

struct DelaunayWorkload {
    points: Vec<Point2>,
}

impl ErasedProblem for DelaunayWorkload {
    fn name(&self) -> &str {
        "delaunay"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (s, report, _) = summarize(&self.points, cfg);
        (s, report)
    }
}

/// The native streaming adapter: the delta counts the undirected
/// triangulation edges a batch added and removed relative to the
/// previous prefix, plus a checksum of the current sorted edge list —
/// compact enough to log per batch, strong enough that replay catches
/// any divergence in the mesh itself. Prefixes of fewer than three
/// points are pending.
struct DelaunayStream {
    points: Vec<Point2>,
    /// Undirected edges `(min, max)` of the previous prefix's mesh.
    edges: HashSet<(u32, u32)>,
    state: FeedState,
}

impl ErasedIncremental for DelaunayStream {
    fn name(&self) -> &str {
        "delaunay"
    }

    fn capacity(&self) -> usize {
        self.state.capacity()
    }

    fn absorbed(&self) -> usize {
        self.state.absorbed()
    }

    fn native(&self) -> bool {
        true
    }

    fn approx_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<Point2>() + self.edges.len() * 16 + 256
    }

    fn feed(&mut self, count: usize, cfg: &RunConfig) -> Result<(BatchDelta, RunReport), String> {
        let (batch, _lo, hi) = self.state.advance(count)?;
        let capacity = self.state.capacity();
        if hi < 3 {
            return Ok((
                BatchDelta::pending(batch, count, hi, capacity),
                RunReport::new("delaunay"),
            ));
        }
        let (summary, report, edges) = summarize(&self.points[..hi], cfg);
        let added = edges.iter().filter(|e| !self.edges.contains(e)).count();
        // |old| - |old ∩ new|, with |old ∩ new| = |new| - added.
        let removed = self.edges.len() + added - edges.len();
        let delta = Value::Obj(vec![
            ("edges".into(), Value::Num(edges.len() as f64)),
            ("added".into(), Value::Num(added as f64)),
            ("removed".into(), Value::Num(removed as f64)),
            ("checksum".into(), Value::Num(edge_checksum(&edges) as f64)),
        ]);
        self.edges = edges.into_iter().collect();
        Ok((
            BatchDelta::solved(batch, count, hi, capacity, delta, &summary, &report),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves_and_validates() {
        let mut reg = Registry::new();
        register(&mut reg);
        let spec = WorkloadSpec::new(120, 5).shape("uniform-disk");
        let (summary, report) = reg.solve("delaunay", &spec, &RunConfig::new()).unwrap();
        assert!(summary.to_json().contains("\"valid\":true"));
        assert!(report.depth > 0);
    }

    #[test]
    fn bad_shape_and_tiny_size_are_rejected() {
        let mut reg = Registry::new();
        register(&mut reg);
        let err = reg
            .construct("delaunay", &WorkloadSpec::new(100, 1).shape("sideways"))
            .err()
            .unwrap();
        assert!(err.to_string().contains("unknown point distribution"));
        let err = reg
            .construct("delaunay", &WorkloadSpec::new(2, 1))
            .err()
            .unwrap();
        assert!(err.to_string().contains("at least 3"));
        // The incremental constructor applies the same shape check.
        assert!(reg
            .construct_incremental("delaunay", &WorkloadSpec::new(100, 1).shape("sideways"))
            .is_err());
    }

    #[test]
    fn stream_reports_edge_diffs_and_matches_one_shot() {
        let mut reg = Registry::new();
        register(&mut reg);
        let spec = WorkloadSpec::new(60, 5);
        let cfg = RunConfig::new().seed(3);
        let mut inc = reg.construct_incremental("delaunay", &spec).unwrap();
        assert!(inc.native());

        // Two points: pending, no mesh yet.
        let (d0, _) = inc.feed(2, &cfg).unwrap();
        assert!(d0.pending);

        // First solvable prefix: every edge is newly added.
        let (d1, _) = inc.feed(3, &cfg).unwrap();
        assert!(!d1.pending);
        assert_eq!(d1.delta.get("removed"), Some(&Value::Num(0.0)));
        assert_eq!(d1.delta.get("added"), d1.delta.get("edges"));

        // Stream to completion; later batches retriangulate (removals
        // appear) and the final answer equals the one-shot solve.
        let (d2, _) = inc.feed(40, &cfg).unwrap();
        assert!(d2.delta.get("removed").unwrap().as_f64().unwrap() > 0.0);
        let (d3, _) = inc.feed(15, &cfg).unwrap();
        assert!(d3.complete);
        let (one_shot, report) = reg.solve("delaunay", &spec, &cfg).unwrap();
        assert_eq!(d3.answer, one_shot.answer().to_vec());
        assert_eq!(d3.trace, ri_core::engine::RoundTrace::from_report(&report));
    }
}
