//! 2-D points and elementary vector operations.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Squared Euclidean distance to `other` (exact comparisons of squared
    /// distances avoid a square root; the closest-pair sieve relies on it).
    #[inline]
    pub fn dist_sq(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Dot product (treating both as vectors).
    #[inline]
    pub fn dot(&self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// z-component of the cross product (treating both as vectors).
    #[inline]
    pub fn cross(&self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared length as a vector.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(*self)
    }

    /// Midpoint of the segment to `other`.
    #[inline]
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Both coordinates finite?
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
        assert_eq!(a.midpoint(b), Point2::new(2.0, 0.5));
    }

    #[test]
    fn finiteness() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
        assert!(!Point2::new(0.0, f64::INFINITY).is_finite());
    }
}
