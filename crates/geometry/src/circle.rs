//! Disks and circumcircles.
//!
//! The Type 2 algorithms (§5 of the paper) work with concrete disks: the
//! smallest-enclosing-disk algorithm maintains a candidate disk; the
//! closest-pair sieve compares squared radii. These are computed in plain
//! `f64` — the algorithms are robust to ε-slack in radius comparisons (the
//! paper assumes general position, and our workloads are generated to
//! respect it); all *combinatorial* decisions in Delaunay go through the
//! exact predicates instead.

use crate::point::Point2;

/// A closed disk: center plus squared radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disk {
    /// Center of the disk.
    pub center: Point2,
    /// Squared radius (kept squared to avoid square roots in containment
    /// tests).
    pub radius_sq: f64,
}

impl Disk {
    /// The degenerate disk of radius 0 around a point.
    pub fn point(p: Point2) -> Disk {
        Disk {
            center: p,
            radius_sq: 0.0,
        }
    }

    /// Radius (square root taken here only).
    pub fn radius(&self) -> f64 {
        self.radius_sq.sqrt()
    }

    /// Does the closed disk contain `p`, with a relative ε-tolerance?
    ///
    /// The tolerance absorbs the rounding of the disk construction itself so
    /// that boundary-defining points always test as contained — the Welzl
    /// invariant the paper's §5.3 relies on.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        let d = self.center.dist_sq(p);
        d <= self.radius_sq + 1e-9 * (1.0 + self.radius_sq)
    }

    /// Strict exclusion test used to find violating points: `true` iff `p`
    /// is strictly outside (beyond the tolerance).
    #[inline]
    pub fn strictly_excludes(&self, p: Point2) -> bool {
        !self.contains(p)
    }
}

/// Smallest disk with the segment `ab` as diameter.
pub fn diametral_disk(a: Point2, b: Point2) -> Disk {
    let center = a.midpoint(b);
    Disk {
        center,
        radius_sq: center.dist_sq(a).max(center.dist_sq(b)),
    }
}

/// Circumcircle of three points; `None` if they are (numerically)
/// collinear.
///
/// Uses the standard perpendicular-bisector solve; the determinant `d`
/// equals twice the signed triangle area.
pub fn circumcircle(a: Point2, b: Point2, c: Point2) -> Option<Disk> {
    let d = 2.0 * ((b - a).cross(c - a));
    if d == 0.0 {
        return None;
    }
    let a2 = a.norm_sq();
    let b2 = b.norm_sq();
    let c2 = c.norm_sq();
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let center = Point2::new(ux, uy);
    // Radius from the farthest defining point: keeps all three inside under
    // the containment tolerance.
    let radius_sq = center
        .dist_sq(a)
        .max(center.dist_sq(b))
        .max(center.dist_sq(c));
    if !center.is_finite() || !radius_sq.is_finite() {
        return None;
    }
    Some(Disk { center, radius_sq })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diametral_disk_contains_endpoints() {
        let d = diametral_disk(Point2::new(0.0, 0.0), Point2::new(2.0, 0.0));
        assert_eq!(d.center, Point2::new(1.0, 0.0));
        assert!(d.contains(Point2::new(0.0, 0.0)));
        assert!(d.contains(Point2::new(2.0, 0.0)));
        assert!(d.contains(Point2::new(1.0, 1.0))); // on boundary
        assert!(d.strictly_excludes(Point2::new(1.0, 1.1)));
    }

    #[test]
    fn circumcircle_right_triangle() {
        // Right triangle: circumcenter at hypotenuse midpoint.
        let d = circumcircle(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 3.0),
        )
        .unwrap();
        assert!((d.center.x - 2.0).abs() < 1e-12);
        assert!((d.center.y - 1.5).abs() < 1e-12);
        assert!((d.radius() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn circumcircle_contains_defining_points() {
        let pts = [
            Point2::new(0.12, 0.77),
            Point2::new(5.3, -2.2),
            Point2::new(-3.25, 2.72),
        ];
        let d = circumcircle(pts[0], pts[1], pts[2]).unwrap();
        for p in pts {
            assert!(d.contains(p));
        }
    }

    #[test]
    fn circumcircle_collinear_is_none() {
        assert!(circumcircle(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0)
        )
        .is_none());
    }

    #[test]
    fn point_disk() {
        let d = Disk::point(Point2::new(1.0, 1.0));
        assert!(d.contains(Point2::new(1.0, 1.0)));
        assert!(d.strictly_excludes(Point2::new(1.0, 1.01)));
    }
}
