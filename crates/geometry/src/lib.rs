//! # `ri-geometry` — exact predicates and geometric helpers
//!
//! The geometric algorithms of the paper (§4 Delaunay, §5 LP / closest pair
//! / smallest enclosing disk) stand on two primitives: the *orientation*
//! test and the *InCircle* (encroachment) test. Both are signs of
//! determinants, and getting the sign wrong on nearly-degenerate inputs
//! makes incremental Delaunay loop or produce invalid triangulations — so
//! this crate implements them **exactly**, using Shewchuk-style
//! floating-point expansion arithmetic with a fast floating-point filter in
//! front (the exact path is only taken when the filter cannot certify the
//! sign).
//!
//! Layout:
//! * [`expansion`] — error-free transformations (two-sum, two-product) and
//!   expansion arithmetic (the exact-arithmetic substrate).
//! * [`predicates`] — `orient2d`, `incircle`: filtered + exact.
//! * [`point`] — `Point2` and basic vector operations.
//! * [`circle`] — circumcircles and disks (approximate f64; fine for the
//!   Type 2 algorithms which tolerate ε-slack, as the paper's do).
//! * [`distributions`] — seeded point-cloud generators for workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circle;
pub mod distributions;
pub mod expansion;
pub mod point;
pub mod predicates;

pub use circle::{circumcircle, diametral_disk, Disk};
pub use distributions::{dedup_points, named_point_workload, point_workload, PointDistribution};
pub use point::Point2;
pub use predicates::{incircle, orient2d, Orientation};
