//! Floating-point expansion arithmetic (Shewchuk, 1997).
//!
//! An *expansion* is a sum of IEEE doubles `e = e₀ + e₁ + ... + e_{m-1}`
//! whose components are non-overlapping and sorted by increasing magnitude.
//! The error-free transformations below ([`two_sum`], [`two_product`], ...)
//! produce exact results as two-component expansions, and
//! [`fast_expansion_sum`]/[`scale_expansion`] combine them while staying
//! exact. The predicates in [`crate::predicates`] evaluate determinant signs
//! over these expansions, giving *exact* orientation and InCircle tests for
//! any `f64` inputs.

/// Exact sum: returns `(x, y)` with `x = fl(a+b)` and `a + b = x + y`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    let avirt = x - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (x, around + bround)
}

/// Exact difference: `(x, y)` with `x = fl(a-b)` and `a - b = x + y`.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (x, around + bround)
}

/// Exact product via fused multiply-add: `(x, y)` with `x = fl(a·b)` and
/// `a·b = x + y`. `f64::mul_add` is a correctly rounded FMA per IEEE 754,
/// so the error term is exact.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let y = a.mul_add(b, -x);
    (x, y)
}

/// Exact square (slightly cheaper than `two_product(a, a)` conceptually;
/// kept as the FMA form for clarity).
#[inline]
pub fn square(a: f64) -> (f64, f64) {
    let x = a * a;
    let y = a.mul_add(a, -x);
    (x, y)
}

/// `a·b − c·d` as an exact 4-component expansion (ascending magnitude).
///
/// This is the "2x2 determinant" building block of both predicates.
#[inline]
pub fn two_product_diff(a: f64, b: f64, c: f64, d: f64) -> [f64; 4] {
    let (ab1, ab0) = two_product(a, b);
    let (cd1, cd0) = two_product(c, d);
    two_two_diff(ab1, ab0, cd1, cd0)
}

/// `(a1 + a0) − b` as an exact 3-component expansion `(x2, x1, x0)`.
#[inline]
fn two_one_diff(a1: f64, a0: f64, b: f64) -> (f64, f64, f64) {
    let (i, x0) = two_diff(a0, b);
    let (x2, x1) = two_sum(a1, i);
    (x2, x1, x0)
}

/// `(a1 + a0) − (b1 + b0)` as an exact 4-component expansion
/// (Shewchuk's `Two_Two_Diff`), ascending magnitude.
#[inline]
pub fn two_two_diff(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    let (j, r0, x0) = two_one_diff(a1, a0, b0);
    let (x3, x2, x1) = two_one_diff(j, r0, b1);
    [x0, x1, x2, x3]
}

/// Sum of two expansions, eliminating zero components
/// (Shewchuk's `fast_expansion_sum_zeroelim`). Inputs must be valid
/// expansions (the outputs of the primitives above always are).
pub fn fast_expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut h = Vec::with_capacity(e.len() + f.len());
    let (mut ei, mut fi) = (0usize, 0usize);
    let mut enow = e.first().copied().unwrap_or(0.0);
    let mut fnow = f.first().copied().unwrap_or(0.0);

    if e.is_empty() {
        return f.iter().copied().filter(|&x| x != 0.0).collect();
    }
    if f.is_empty() {
        return e.iter().copied().filter(|&x| x != 0.0).collect();
    }

    let mut q;
    if (fnow > enow) == (fnow > -enow) {
        q = enow;
        ei += 1;
        enow = e.get(ei).copied().unwrap_or(0.0);
    } else {
        q = fnow;
        fi += 1;
        fnow = f.get(fi).copied().unwrap_or(0.0);
    }

    if ei < e.len() && fi < f.len() {
        let (qnew, h0) = if (fnow > enow) == (fnow > -enow) {
            let r = fast_two_sum(enow, q);
            ei += 1;
            enow = e.get(ei).copied().unwrap_or(0.0);
            r
        } else {
            let r = fast_two_sum(fnow, q);
            fi += 1;
            fnow = f.get(fi).copied().unwrap_or(0.0);
            r
        };
        q = qnew;
        if h0 != 0.0 {
            h.push(h0);
        }
        while ei < e.len() && fi < f.len() {
            let (qnew, h0) = if (fnow > enow) == (fnow > -enow) {
                let r = two_sum(q, enow);
                ei += 1;
                enow = e.get(ei).copied().unwrap_or(0.0);
                r
            } else {
                let r = two_sum(q, fnow);
                fi += 1;
                fnow = f.get(fi).copied().unwrap_or(0.0);
                r
            };
            q = qnew;
            if h0 != 0.0 {
                h.push(h0);
            }
        }
    }
    while ei < e.len() {
        let (qnew, h0) = two_sum(q, e[ei]);
        ei += 1;
        q = qnew;
        if h0 != 0.0 {
            h.push(h0);
        }
    }
    while fi < f.len() {
        let (qnew, h0) = two_sum(q, f[fi]);
        fi += 1;
        q = qnew;
        if h0 != 0.0 {
            h.push(h0);
        }
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// `fast_two_sum` (requires `|a| >= |b|` — guaranteed by the merge order in
/// `fast_expansion_sum`).
#[inline]
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    (x, b - bvirt)
}

/// Multiply an expansion by a double, exactly
/// (Shewchuk's `scale_expansion_zeroelim`).
pub fn scale_expansion(e: &[f64], b: f64) -> Vec<f64> {
    if e.is_empty() {
        return vec![0.0];
    }
    let mut h = Vec::with_capacity(2 * e.len());
    let (mut q, h0) = two_product(e[0], b);
    if h0 != 0.0 {
        h.push(h0);
    }
    for &enow in &e[1..] {
        let (p1, p0) = two_product(enow, b);
        let (sum, h1) = two_sum(q, p0);
        if h1 != 0.0 {
            h.push(h1);
        }
        let (qnew, h2) = fast_two_sum(p1, sum);
        q = qnew;
        if h2 != 0.0 {
            h.push(h2);
        }
    }
    if q != 0.0 || h.is_empty() {
        h.push(q);
    }
    h
}

/// Negate an expansion in place.
pub fn negate(e: &mut [f64]) {
    for x in e {
        *x = -*x;
    }
}

/// Approximate value of an expansion (sum smallest-to-largest).
pub fn estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

/// Exact sign of an expansion: the sign of its largest-magnitude (last
/// nonzero) component.
pub fn sign(e: &[f64]) -> i32 {
    for &x in e.iter().rev() {
        if x != 0.0 {
            return if x > 0.0 { 1 } else { -1 };
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact_on_cancellation() {
        // 1e16 + 1 is not representable (ulp is 2 there); the two-word
        // expansion holds it exactly: 1e16 has an even mantissa so the tie
        // rounds down, and the tail keeps the lost 1.0.
        let (x, y) = two_sum(1e16, 1.0);
        assert_eq!(x, 1e16);
        assert_eq!(y, 1.0);
        // Exactness certificate in integers:
        assert_eq!(x as i128 + y as i128, 10_000_000_000_000_001i128);
    }

    #[test]
    fn two_diff_exact() {
        let (x, y) = two_diff(1.0, 1e-20);
        assert_eq!(x, 1.0);
        assert_eq!(y, -1e-20);
    }

    #[test]
    fn two_product_error_term() {
        // (1 + 2^-52)^2 = 1 + 2^-51 + 2^-104: head + tail capture it exactly.
        let a = 1.0 + f64::EPSILON;
        let (x, y) = two_product(a, a);
        assert_eq!(x, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(y, f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn expansion_sum_represents_exact_value() {
        let e = [1e-30, 1.0];
        let f = [1e-30, -1.0];
        let s = fast_expansion_sum(&e, &f);
        assert_eq!(estimate(&s), 2e-30);
        assert_eq!(sign(&s), 1);
    }

    #[test]
    fn sign_detects_tiny_negative() {
        let e = [1.0];
        let mut f = [1.0 + 4.0 * f64::EPSILON];
        negate(&mut f);
        let s = fast_expansion_sum(&e, &f);
        assert_eq!(sign(&s), -1);
    }

    #[test]
    fn scale_expansion_exact() {
        let d = 1e-20f64; // some double near 1e-20
        let e = [d, 1.0];
        let s = scale_expansion(&e, 3.0);
        // s represents exactly 3 + 3d.
        assert_eq!(sign(&s), 1);
        assert!((estimate(&s) - 3.0).abs() < 1e-15);
        // Exactness certificate: s − 3 − 3·d must be the zero expansion.
        let r = fast_expansion_sum(&s, &[-3.0]);
        let mut three_d = scale_expansion(&[d], 3.0);
        negate(&mut three_d);
        let zero = fast_expansion_sum(&r, &three_d);
        assert_eq!(sign(&zero), 0);
    }

    #[test]
    fn two_product_diff_zero_det() {
        // 6*35 - 14*15 = 210 - 210 = 0.
        let d = two_product_diff(6.0, 35.0, 14.0, 15.0);
        assert_eq!(sign(&d), 0);
    }

    #[test]
    fn zero_expansion_sign() {
        assert_eq!(sign(&[0.0]), 0);
        assert_eq!(sign(&[]), 0);
    }
}
