//! Seeded point-cloud generators for the experiment workloads.
//!
//! The paper's bounds are *expectations over the random insertion order*
//! and hold for any input point set; the distributions here pick the input
//! regimes the experiments sweep: uniform (the benign case), clustered
//! (stresses conflict-set sizes in Delaunay), near-circular (stresses the
//! smallest-enclosing-disk special-iteration count), and jittered grids
//! (near-degenerate, stresses the exact predicates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::point::Point2;

/// Families of synthetic point clouds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointDistribution {
    /// Uniform in the unit square.
    UniformSquare,
    /// Uniform in the unit disk (rejection sampled).
    UniformDisk,
    /// `k`-cluster Gaussian mixture inside the unit square.
    Clusters(usize),
    /// Near the unit circle with small radial noise — adversarial for
    /// smallest enclosing disk (many boundary updates).
    NearCircle,
    /// Jittered integer grid — near-degenerate, exercises exact predicates.
    JitteredGrid,
    /// Exactly on the unit circle at seeded random angles. After f64
    /// rounding every point sits a few ulps off the circle, so the set is
    /// *cocircular at machine precision*: every incircle test during
    /// Delaunay construction is a near-tie resolved by the exact
    /// predicates, and the enclosing disk's boundary basis churns
    /// (Devillers' degenerate regime).
    Cocircular,
    /// Near-collinear: 7 of every 8 points on one line with perpendicular
    /// jitter at 1e-9, the rest uniform (a fully collinear set has no
    /// triangulation). Orientation tests along the line are near-ties and
    /// the triangulation is all slivers.
    Collinear,
    /// Duplicate-heavy: each of ~n/4 distinct sites is dealt to ~4
    /// arrivals, so [`dedup_points`] collapses the workload to roughly a
    /// quarter of the requested `n` — generators and streaming sessions
    /// must account for the shrinkage truthfully instead of assuming
    /// `len == n`.
    DuplicateHeavy,
}

impl PointDistribution {
    /// Generate `n` points, seeded and reproducible.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            PointDistribution::UniformSquare => (0..n)
                .map(|_| Point2::new(rng.gen::<f64>(), rng.gen::<f64>()))
                .collect(),
            PointDistribution::UniformDisk => {
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let x = rng.gen::<f64>() * 2.0 - 1.0;
                    let y = rng.gen::<f64>() * 2.0 - 1.0;
                    if x * x + y * y <= 1.0 {
                        out.push(Point2::new(x, y));
                    }
                }
                out
            }
            PointDistribution::Clusters(k) => {
                let k = k.max(1);
                let centers: Vec<Point2> = (0..k)
                    .map(|_| Point2::new(rng.gen::<f64>(), rng.gen::<f64>()))
                    .collect();
                (0..n)
                    .map(|i| {
                        let c = centers[i % k];
                        // Box-Muller for a compact Gaussian blob.
                        let u1: f64 = rng.gen::<f64>().max(1e-12);
                        let u2: f64 = rng.gen::<f64>();
                        let r = (-2.0 * u1.ln()).sqrt() * 0.02;
                        let th = 2.0 * std::f64::consts::PI * u2;
                        Point2::new(c.x + r * th.cos(), c.y + r * th.sin())
                    })
                    .collect()
            }
            PointDistribution::NearCircle => (0..n)
                .map(|_| {
                    let th = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    let r = 1.0 + (rng.gen::<f64>() - 0.5) * 1e-3;
                    Point2::new(r * th.cos(), r * th.sin())
                })
                .collect(),
            PointDistribution::JitteredGrid => {
                let side = (n as f64).sqrt().ceil() as usize;
                (0..n)
                    .map(|i| {
                        let gx = (i % side) as f64;
                        let gy = (i / side) as f64;
                        let jitter = 1e-6;
                        Point2::new(
                            gx + rng.gen::<f64>() * jitter,
                            gy + rng.gen::<f64>() * jitter,
                        )
                    })
                    .collect()
            }
            PointDistribution::Cocircular => (0..n)
                .map(|_| {
                    let th = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                    Point2::new(th.cos(), th.sin())
                })
                .collect(),
            PointDistribution::Collinear => {
                // Line from (0.05, 0.1) towards (0.95, 0.9), unit direction
                // and unit normal precomputed.
                let (dx, dy) = (0.9f64, 0.8f64);
                let len = (dx * dx + dy * dy).sqrt();
                let (ux, uy) = (dx / len, dy / len);
                let (nx, ny) = (-uy, ux);
                (0..n)
                    .map(|i| {
                        if i % 8 == 7 {
                            Point2::new(rng.gen::<f64>(), rng.gen::<f64>())
                        } else {
                            let t = rng.gen::<f64>() * len;
                            let off = (rng.gen::<f64>() - 0.5) * 2e-9;
                            Point2::new(0.05 + t * ux + off * nx, 0.1 + t * uy + off * ny)
                        }
                    })
                    .collect()
            }
            PointDistribution::DuplicateHeavy => {
                let sites: Vec<Point2> = (0..(n / 4).max(1))
                    .map(|_| Point2::new(rng.gen::<f64>(), rng.gen::<f64>()))
                    .collect();
                (0..n)
                    .map(|_| sites[rng.gen_range(0..sites.len())])
                    .collect()
            }
        }
    }

    /// All distribution families (for sweeping experiments).
    pub fn all() -> Vec<PointDistribution> {
        vec![
            PointDistribution::UniformSquare,
            PointDistribution::UniformDisk,
            PointDistribution::Clusters(8),
            PointDistribution::NearCircle,
            PointDistribution::JitteredGrid,
            PointDistribution::Cocircular,
            PointDistribution::Collinear,
            PointDistribution::DuplicateHeavy,
        ]
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PointDistribution::UniformSquare => "uniform-square",
            PointDistribution::UniformDisk => "uniform-disk",
            PointDistribution::Clusters(_) => "clusters",
            PointDistribution::NearCircle => "near-circle",
            PointDistribution::JitteredGrid => "jittered-grid",
            PointDistribution::Cocircular => "cocircular",
            PointDistribution::Collinear => "collinear",
            PointDistribution::DuplicateHeavy => "duplicate-heavy",
        }
    }
}

/// Error parsing a [`PointDistribution`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDistributionError(String);

impl std::fmt::Display for ParseDistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let known: Vec<&str> = PointDistribution::all().iter().map(|d| d.name()).collect();
        write!(
            f,
            "unknown point distribution `{}` (known: {})",
            self.0,
            known.join(", ")
        )
    }
}

impl std::error::Error for ParseDistributionError {}

impl std::str::FromStr for PointDistribution {
    type Err = ParseDistributionError;

    /// Accepts the [`PointDistribution::name`] vocabulary (`clusters`
    /// parses to the 8-cluster default the experiments sweep).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform-square" => Ok(PointDistribution::UniformSquare),
            "uniform-disk" => Ok(PointDistribution::UniformDisk),
            "clusters" => Ok(PointDistribution::Clusters(8)),
            "near-circle" => Ok(PointDistribution::NearCircle),
            "jittered-grid" => Ok(PointDistribution::JitteredGrid),
            "cocircular" => Ok(PointDistribution::Cocircular),
            "collinear" => Ok(PointDistribution::Collinear),
            "duplicate-heavy" => Ok(PointDistribution::DuplicateHeavy),
            other => Err(ParseDistributionError(other.to_string())),
        }
    }
}

/// Deduplicate exactly-equal points (the algorithms assume distinct
/// points; generators can collide at tiny probability). Total order via
/// `total_cmp`, so hostile coordinates (NaN) cannot panic the caller's
/// thread — [`named_point_workload`] rejects non-finite points separately.
pub fn dedup_points(mut pts: Vec<Point2>) -> Vec<Point2> {
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    pts
}

/// A deduplicated, randomly ordered point workload: `n` points drawn from
/// `dist`, exact duplicates removed, then shuffled into their (random)
/// insertion order. This is the standard input of every point-based
/// experiment and of the point-problem `WorkloadSpec` constructors; the
/// paper's expectation bounds are over exactly this insertion order.
pub fn point_workload(n: usize, seed: u64, dist: PointDistribution) -> Vec<Point2> {
    let raw = dedup_points(dist.generate(n, seed));
    let order = ri_pram::random_permutation(raw.len(), seed ^ 0xbead);
    order.iter().map(|&i| raw[i]).collect()
}

/// [`point_workload`] behind a *named* shape, for the registry
/// constructors of the point-based problems (`delaunay`, `closest-pair`,
/// `enclosing`): parses `shape` as a [`PointDistribution`] and enforces
/// the problem's minimum distinct-point count, with uniform error text.
pub fn named_point_workload(
    problem: &str,
    n: usize,
    seed: u64,
    shape: &str,
    min_points: usize,
) -> Result<Vec<Point2>, String> {
    let dist: PointDistribution = shape.parse().map_err(|e| format!("{e}"))?;
    let points = point_workload(n, seed, dist);
    if let Some(p) = points.iter().find(|p| !p.x.is_finite() || !p.y.is_finite()) {
        return Err(format!(
            "{problem} workload contains a non-finite coordinate ({}, {})",
            p.x, p.y
        ));
    }
    if points.len() < min_points {
        return Err(format!(
            "{problem} needs at least {min_points} distinct points, got {}",
            points.len()
        ));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_from_str() {
        for d in PointDistribution::all() {
            assert_eq!(d.name().parse::<PointDistribution>().unwrap(), d);
        }
        assert!("sideways".parse::<PointDistribution>().is_err());
    }

    #[test]
    fn point_workload_is_seeded_and_deduped() {
        let a = point_workload(500, 1, PointDistribution::UniformSquare);
        let b = point_workload(500, 1, PointDistribution::UniformSquare);
        assert_eq!(a, b, "workload not reproducible");
        let mut unique = a.clone();
        unique.sort_by(|p, q| {
            p.x.partial_cmp(&q.x)
                .unwrap()
                .then(p.y.partial_cmp(&q.y).unwrap())
        });
        unique.dedup_by(|p, q| p == q);
        assert_eq!(unique.len(), a.len(), "workload contains duplicates");
        let c = point_workload(500, 2, PointDistribution::UniformSquare);
        assert_ne!(a, c, "workload ignores seed");
    }

    #[test]
    fn seeded_reproducibility() {
        for d in PointDistribution::all() {
            let a = d.generate(100, 42);
            let b = d.generate(100, 42);
            let c = d.generate(100, 43);
            assert_eq!(a.len(), 100);
            assert_eq!(a, b, "{} not reproducible", d.name());
            assert_ne!(a, c, "{} ignores seed", d.name());
        }
    }

    #[test]
    fn uniform_square_in_bounds() {
        for p in PointDistribution::UniformSquare.generate(1000, 1) {
            assert!((0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y));
        }
    }

    #[test]
    fn uniform_disk_in_disk() {
        for p in PointDistribution::UniformDisk.generate(1000, 1) {
            assert!(p.norm_sq() <= 1.0);
        }
    }

    #[test]
    fn near_circle_radii() {
        for p in PointDistribution::NearCircle.generate(1000, 1) {
            let r = p.norm_sq().sqrt();
            assert!((0.999..1.001).contains(&r));
        }
    }

    #[test]
    fn cocircular_on_unit_circle() {
        for p in PointDistribution::Cocircular.generate(500, 1) {
            assert!((p.norm_sq() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn collinear_mostly_on_one_line() {
        let pts = PointDistribution::Collinear.generate(800, 3);
        let on_line = pts
            .iter()
            .filter(|p| {
                // Signed distance to the generating line through (0.05, 0.1)
                // with direction (0.9, 0.8).
                let len = (0.9f64 * 0.9 + 0.8 * 0.8).sqrt();
                let (ux, uy) = (0.9 / len, 0.8 / len);
                let d = (p.x - 0.05) * (-uy) + (p.y - 0.1) * ux;
                d.abs() < 1e-8
            })
            .count();
        assert!(on_line >= 700, "only {on_line}/800 near the line");
    }

    #[test]
    fn duplicate_heavy_shrinks_under_dedup() {
        let pts = PointDistribution::DuplicateHeavy.generate(1000, 7);
        let distinct = dedup_points(pts).len();
        assert!(
            distinct < 400,
            "duplicate-heavy should collapse to ~n/4 distinct, got {distinct}"
        );
    }

    #[test]
    fn dedup_survives_nan_coordinates() {
        let pts = vec![
            Point2::new(f64::NAN, 0.0),
            Point2::new(0.5, 0.5),
            Point2::new(f64::NAN, 0.0),
        ];
        // Must not panic; NaN points sort to one end.
        assert!(dedup_points(pts).len() <= 3);
    }

    #[test]
    fn named_workload_rejects_unknown_shape() {
        let err = named_point_workload("delaunay", 64, 1, "sideways", 3).unwrap_err();
        assert!(err.contains("unknown point distribution"), "{err}");
    }

    #[test]
    fn dedup_removes_exact_duplicates() {
        let pts = vec![
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        assert_eq!(dedup_points(pts).len(), 2);
    }
}
