//! Exact geometric predicates with floating-point filters.
//!
//! Both predicates first evaluate the determinant in plain `f64` and accept
//! the sign if it clears a static forward-error bound (Shewchuk's "stage A"
//! filter); otherwise they fall through to a fully exact evaluation over
//! expansions. On random inputs the exact path triggers almost never; on
//! adversarially degenerate inputs it guarantees the right answer.

use crate::expansion::{
    estimate, fast_expansion_sum, negate, scale_expansion, sign, square, two_product_diff,
    two_two_diff,
};
use crate::point::Point2;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn (positive determinant).
    CounterClockwise,
    /// Clockwise turn (negative determinant).
    Clockwise,
    /// Exactly collinear.
    Collinear,
}

// Machine epsilon for the filter bounds: 2^-53 (half-ulp of 1.0), matching
// Shewchuk's `epsilon`.
const EPSILON: f64 = f64::EPSILON / 2.0;
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;

/// Sign of the 2-D orientation determinant
/// `| ax−cx  ay−cy |`
/// `| bx−cx  by−cy |`:
/// `+1` if `(a, b, c)` make a counter-clockwise turn, `−1` clockwise,
/// `0` collinear. Exact for all `f64` inputs.
pub fn orient2d_sign(a: Point2, b: Point2, c: Point2) -> i32 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return sign_f64(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return sign_f64(det);
        }
        -detleft - detright
    } else {
        return sign_f64(det);
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return sign_f64(det);
    }
    orient2d_exact(a, b, c)
}

/// Orientation of `(a, b, c)` as an enum. Exact.
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> Orientation {
    match orient2d_sign(a, b, c) {
        1 => Orientation::CounterClockwise,
        -1 => Orientation::Clockwise,
        _ => Orientation::Collinear,
    }
}

/// Fully exact orientation via expansions — the 3-term Laplace expansion
/// `ax(by − cy) + bx(cy − ay) + cx(ay − by)` over exact products.
fn orient2d_exact(a: Point2, b: Point2, c: Point2) -> i32 {
    // Pairwise products of coordinates, as 4-component expansions.
    let axby_axcy = two_product_diff(a.x, b.y, a.x, c.y); // ax·by − ax·cy
    let bxcy_bxay = two_product_diff(b.x, c.y, b.x, a.y); // bx·cy − bx·ay
    let cxay_cxby = two_product_diff(c.x, a.y, c.x, b.y); // cx·ay − cx·by
    let s = fast_expansion_sum(&axby_axcy, &bxcy_bxay);
    let s = fast_expansion_sum(&s, &cxay_cxby);
    sign(&s)
}

/// Sign of the InCircle determinant for the *counter-clockwise* triangle
/// `(a, b, c)` and query point `d`:
/// `+1` if `d` lies strictly inside the circumcircle of `(a, b, c)`,
/// `−1` strictly outside, `0` exactly on the circle.
///
/// **Precondition:** `(a, b, c)` is counter-clockwise; if it is clockwise
/// the sign flips (callers that cannot guarantee orientation should use
/// [`incircle`]).
pub fn incircle_sign_ccw(a: Point2, b: Point2, c: Point2, d: Point2) -> i32 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return sign_f64(det);
    }
    incircle_exact(a, b, c, d)
}

/// Orientation-independent InCircle: `+1` iff `d` is strictly inside the
/// circle through `a`, `b`, `c` (any orientation; `0` if the triangle is
/// degenerate or `d` lies exactly on the circle). Exact.
pub fn incircle(a: Point2, b: Point2, c: Point2, d: Point2) -> i32 {
    match orient2d_sign(a, b, c) {
        1 => incircle_sign_ccw(a, b, c, d),
        -1 => -incircle_sign_ccw(a, b, c, d),
        _ => 0,
    }
}

/// Fully exact InCircle via expansions (Shewchuk's `incircleexact`): the
/// 4×4 determinant
/// `| ax ay ax²+ay² 1 |`
/// `| bx by bx²+by² 1 |`
/// `| cx cy cx²+cy² 1 |`
/// `| dx dy dx²+dy² 1 |`
/// expanded along the lift column over 2×2 cofactor expansions.
fn incircle_exact(a: Point2, b: Point2, c: Point2, d: Point2) -> i32 {
    // 2x2 minors ab = ax·by − bx·ay etc., each a 4-expansion.
    let ab = two_product_diff(a.x, b.y, b.x, a.y);
    let bc = two_product_diff(b.x, c.y, c.x, b.y);
    let cd = two_product_diff(c.x, d.y, d.x, c.y);
    let da = two_product_diff(d.x, a.y, a.x, d.y);
    let mut ac = two_product_diff(a.x, c.y, c.x, a.y);
    let mut bd = two_product_diff(b.x, d.y, d.x, b.y);

    // 3-point minors: cda = cd + da + ac, dab = da + ab + bd,
    //                 abc = ab + bc − ac, bcd = bc + cd − bd.
    let t = fast_expansion_sum(&cd, &da);
    let cda = fast_expansion_sum(&t, &ac);
    let t = fast_expansion_sum(&da, &ab);
    let dab = fast_expansion_sum(&t, &bd);
    negate(&mut ac);
    negate(&mut bd);
    let t = fast_expansion_sum(&ab, &bc);
    let abc = fast_expansion_sum(&t, &ac);
    let t = fast_expansion_sum(&bc, &cd);
    let bcd = fast_expansion_sum(&t, &bd);

    // det = lift(a)·bcd − lift(b)·cda + lift(c)·dab − lift(d)·abc,
    // where lift(p) = px² + py², each product done exactly by scaling the
    // minor expansion twice per coordinate.
    let lift_times = |minor: &[f64], p: Point2, negate_term: bool| -> Vec<f64> {
        let sgn = if negate_term { -1.0 } else { 1.0 };
        let tx = scale_expansion(minor, p.x);
        let xdet = scale_expansion(&tx, sgn * p.x);
        let ty = scale_expansion(minor, p.y);
        let ydet = scale_expansion(&ty, sgn * p.y);
        fast_expansion_sum(&xdet, &ydet)
    };
    let adet = lift_times(&bcd, a, false);
    let bdet = lift_times(&cda, b, true);
    let cdet = lift_times(&dab, c, false);
    let ddet = lift_times(&abc, d, true);

    let abdet = fast_expansion_sum(&adet, &bdet);
    let cddet = fast_expansion_sum(&cdet, &ddet);
    let det = fast_expansion_sum(&abdet, &cddet);
    sign(&det)
}

/// Approximate signed "power" of point `d` against the circumcircle of CCW
/// triangle `(a, b, c)` — positive inside. Useful for diagnostics only; use
/// the exact predicates for decisions.
pub fn incircle_value_approx(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let _ = estimate(&[0.0]); // keep the helper linked for doc purposes
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;
    (adx * adx + ady * ady) * (bdx * cdy - cdx * bdy)
        + (bdx * bdx + bdy * bdy) * (cdx * ady - adx * cdy)
        + (cdx * cdx + cdy * cdy) * (adx * bdy - bdx * ady)
}

#[inline]
fn sign_f64(x: f64) -> i32 {
    if x > 0.0 {
        1
    } else if x < 0.0 {
        -1
    } else {
        0
    }
}

/// Exact square helper re-exported for tests of the expansion layer.
#[doc(hidden)]
pub fn lift_exact(p: Point2) -> Vec<f64> {
    let (x1, x0) = square(p.x);
    let (y1, y0) = square(p.y);
    fast_expansion_sum(&[x0, x1], &[y0, y1])
}

/// `a·b − c·d` exact sign — exposed for the LP crate's pivot tests.
pub fn det2_sign(a: f64, b: f64, c: f64, d: f64) -> i32 {
    let det = a * b - c * d;
    let err = 4.0 * EPSILON * (a * b).abs().max((c * d).abs());
    if det > err || -det > err {
        return sign_f64(det);
    }
    sign(&two_two_diff_products(a, b, c, d))
}

fn two_two_diff_products(a: f64, b: f64, c: f64, d: f64) -> [f64; 4] {
    let (ab1, ab0) = crate::expansion::two_product(a, b);
    let (cd1, cd0) = crate::expansion::two_product(c, d);
    two_two_diff(ab1, ab0, cd1, cd0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_exact_on_degenerate_grid() {
        // The classic robustness benchmark: points on a line perturbed by
        // one ulp must be classified exactly.
        let base = 12.0;
        let a = p(base, base);
        let b = p(base + 2.0, base + 2.0);
        for i in 0..32 {
            for j in 0..32 {
                let c = p(
                    base + 1.0 + (i as f64) * f64::EPSILON * 4.0,
                    base + 1.0 + (j as f64) * f64::EPSILON * 4.0,
                );
                let got = orient2d_sign(a, b, c);
                // Reference via exact rational arithmetic on scaled integers.
                let s = exact_reference_orient(a, b, c);
                assert_eq!(got, s, "mismatch at ({i},{j})");
            }
        }
    }

    /// Reference orientation using i128 arithmetic after exact scaling
    /// (valid because all coordinates here are small multiples of 2^-52).
    fn exact_reference_orient(a: Point2, b: Point2, c: Point2) -> i32 {
        let scale = 2f64.powi(60);
        let ax = (a.x * scale) as i128;
        let ay = (a.y * scale) as i128;
        let bx = (b.x * scale) as i128;
        let by = (b.y * scale) as i128;
        let cx = (c.x * scale) as i128;
        let cy = (c.y * scale) as i128;
        let det = (ax - cx) * (by - cy) - (ay - cy) * (bx - cx);
        match det.cmp(&0) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        }
    }

    #[test]
    fn incircle_unit_circle() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert_eq!(incircle(a, b, c, p(0.0, 0.0)), 1); // center: inside
        assert_eq!(incircle(a, b, c, p(2.0, 0.0)), -1); // outside
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), 0); // on circle
    }

    #[test]
    fn incircle_orientation_independent() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(0.1, 0.1);
        assert_eq!(incircle(a, b, c, d), incircle(a, c, b, d));
        assert_eq!(incircle(a, b, c, d), incircle(c, b, a, d));
    }

    #[test]
    fn incircle_near_cocircular_exact() {
        // Four nearly-cocircular points differing by ulps: exact predicate
        // must agree with the i128 reference.
        let a = p(0.0, 1.0);
        let b = p(1.0, 0.0);
        let c = p(-1.0, 0.0);
        for k in -8i32..=8 {
            let d = p(0.0, -1.0 + (k as f64) * f64::EPSILON);
            let got = incircle(a, b, c, d);
            let want = if k > 0 {
                1 // pulled inside the unit circle
            } else if k < 0 {
                -1
            } else {
                0
            };
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn incircle_cycle_invariance() {
        let a = p(0.3, 0.4);
        let b = p(1.7, 0.1);
        let c = p(0.9, 2.2);
        let d = p(0.8, 0.9);
        let s = incircle(a, b, c, d);
        assert_eq!(s, incircle(b, c, a, d));
        assert_eq!(s, incircle(c, a, b, d));
    }

    #[test]
    fn degenerate_triangle_incircle_zero() {
        assert_eq!(
            incircle(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(5.0, 1.0)),
            0
        );
    }

    #[test]
    fn det2_sign_near_ties() {
        assert_eq!(det2_sign(3.0, 4.0, 6.0, 2.0), 0);
        // 2 − ε and 2 + 2ε are the representable neighbours of 2.0.
        assert_eq!(det2_sign(3.0, 4.0, 6.0, 2.0 - f64::EPSILON), 1);
        assert_eq!(det2_sign(3.0, 4.0, 6.0, 2.0 + 2.0 * f64::EPSILON), -1);
    }
}
