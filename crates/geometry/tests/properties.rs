//! Property tests for the exact predicates: on dyadic-rational inputs the
//! predicates must agree with big-integer reference arithmetic, and the
//! algebraic symmetries of the determinants must hold for arbitrary floats.

use proptest::prelude::*;
use ri_geometry::predicates::{det2_sign, incircle, orient2d_sign};
use ri_geometry::Point2;

/// Exact orientation over i128 (valid when coordinates are small integers).
fn orient_ref(a: (i64, i64), b: (i64, i64), c: (i64, i64)) -> i32 {
    let det = (a.0 as i128 - c.0 as i128) * (b.1 as i128 - c.1 as i128)
        - (a.1 as i128 - c.1 as i128) * (b.0 as i128 - c.0 as i128);
    det.signum() as i32
}

/// Exact incircle over i128 for integer points: sign of the 4x4 lifted
/// determinant, normalised for orientation.
fn incircle_ref(a: (i64, i64), b: (i64, i64), c: (i64, i64), d: (i64, i64)) -> i32 {
    let o = orient_ref(a, b, c);
    if o == 0 {
        return 0;
    }
    let col = |p: (i64, i64)| {
        let dx = p.0 as i128 - d.0 as i128;
        let dy = p.1 as i128 - d.1 as i128;
        (dx, dy, dx * dx + dy * dy)
    };
    let (adx, ady, al) = col(a);
    let (bdx, bdy, bl) = col(b);
    let (cdx, cdy, cl) = col(c);
    let det =
        al * (bdx * cdy - cdx * bdy) - bl * (adx * cdy - cdx * ady) + cl * (adx * bdy - bdx * ady);
    (det.signum() as i32) * o
}

fn p(xy: (i64, i64)) -> Point2 {
    Point2::new(xy.0 as f64, xy.1 as f64)
}

// Small coordinates provoke many exact collinear/cocircular cases.
fn coord() -> impl Strategy<Value = (i64, i64)> {
    (-12i64..=12, -12i64..=12)
}

// Large coordinates stress the floating-point filter.
fn coord_large() -> impl Strategy<Value = (i64, i64)> {
    (-(1i64 << 26)..(1i64 << 26), -(1i64 << 26)..(1i64 << 26))
}

proptest! {
    #[test]
    fn orient_matches_integer_reference((a, b, c) in (coord(), coord(), coord())) {
        prop_assert_eq!(orient2d_sign(p(a), p(b), p(c)), orient_ref(a, b, c));
    }

    #[test]
    fn orient_matches_integer_reference_large((a, b, c) in (coord_large(), coord_large(), coord_large())) {
        prop_assert_eq!(orient2d_sign(p(a), p(b), p(c)), orient_ref(a, b, c));
    }

    #[test]
    fn orient_antisymmetric(ax in any::<f64>(), ay in any::<f64>(),
                            bx in any::<f64>(), by in any::<f64>(),
                            cx in any::<f64>(), cy in any::<f64>()) {
        prop_assume!(ax.is_finite() && ay.is_finite() && bx.is_finite()
                     && by.is_finite() && cx.is_finite() && cy.is_finite());
        // Keep magnitudes sane so products don't overflow to infinity.
        let clamp = |v: f64| v % 1e100;
        let a = Point2::new(clamp(ax), clamp(ay));
        let b = Point2::new(clamp(bx), clamp(by));
        let c = Point2::new(clamp(cx), clamp(cy));
        prop_assert_eq!(orient2d_sign(a, b, c), -orient2d_sign(b, a, c));
        prop_assert_eq!(orient2d_sign(a, b, c), orient2d_sign(b, c, a));
    }

    #[test]
    fn incircle_matches_integer_reference((a, b, c, d) in (coord(), coord(), coord(), coord())) {
        prop_assert_eq!(incircle(p(a), p(b), p(c), p(d)), incircle_ref(a, b, c, d));
    }

    #[test]
    fn incircle_matches_integer_reference_large((a, b, c, d) in (coord_large(), coord_large(), coord_large(), coord_large())) {
        prop_assert_eq!(incircle(p(a), p(b), p(c), p(d)), incircle_ref(a, b, c, d));
    }

    #[test]
    fn incircle_invariant_under_triangle_relabeling((a, b, c, d) in (coord(), coord(), coord(), coord())) {
        let s = incircle(p(a), p(b), p(c), p(d));
        prop_assert_eq!(s, incircle(p(b), p(c), p(a), p(d)));
        prop_assert_eq!(s, incircle(p(c), p(a), p(b), p(d)));
        prop_assert_eq!(s, incircle(p(b), p(a), p(c), p(d)));
    }

    #[test]
    fn det2_matches_integer_reference(a in -1000i64..1000, b in -1000i64..1000,
                                      c in -1000i64..1000, d in -1000i64..1000) {
        let want = ((a as i128) * (b as i128) - (c as i128) * (d as i128)).signum() as i32;
        prop_assert_eq!(det2_sign(a as f64, b as f64, c as f64, d as f64), want);
    }
}
