//! Property tests for LE-lists: the literal Definition 3 against all-pairs
//! distances, and sequential/parallel equivalence, on arbitrary weighted
//! digraphs.

use proptest::prelude::*;
use ri_core::engine::{Problem, RunConfig};
use ri_graph::CsrGraph;
use ri_le_lists::{le_lists_brute_force, LeListsProblem};
use ri_pram::random_permutation;

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

fn arb_weighted_graph() -> impl Strategy<Value = (CsrGraph, u64)> {
    (2usize..40).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec(((0..n as u32), (0..n as u32), (1u32..1000)), 0..(3 * n));
        (Just(n), edges, any::<u64>()).prop_map(|(n, ews, seed)| {
            let edges: Vec<(u32, u32)> = ews.iter().map(|&(u, v, _)| (u, v)).collect();
            // Irregular weights (w/1009 + tiny per-edge offset) make exact
            // distance ties essentially impossible, matching the paper's
            // distinct-distance assumption.
            let weights: Vec<f64> = ews
                .iter()
                .enumerate()
                .map(|(i, &(_, _, w))| w as f64 / 1009.0 + i as f64 * 1e-9 + 1e-3)
                .collect();
            (CsrGraph::from_weighted_edges(n, &edges, &weights), seed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matches_definition_3((g, seed) in arb_weighted_graph()) {
        let n = g.num_vertices();
        let order = random_permutation(n, seed);
        let want = le_lists_brute_force(&g, &order);
        let (seq, _) = LeListsProblem::new(&g).with_order(order.clone()).solve(&seq_cfg());
        prop_assert_eq!(&seq.lists, &want);
    }

    #[test]
    fn parallel_equals_sequential((g, seed) in arb_weighted_graph()) {
        let n = g.num_vertices();
        let order = random_permutation(n, seed);
        let (seq, _) = LeListsProblem::new(&g).with_order(order.clone()).solve(&seq_cfg());
        let (par, _) = LeListsProblem::new(&g).with_order(order.clone()).solve(&par_cfg());
        prop_assert_eq!(&seq.lists, &par.lists);
    }

    #[test]
    fn lists_are_antichains_in_priority_and_distance((g, seed) in arb_weighted_graph()) {
        // Definition 3 invariant: along each list, source priority strictly
        // increases while distance strictly decreases — no entry dominates
        // another.
        let n = g.num_vertices();
        let order = random_permutation(n, seed);
        let rank = {
            let mut r = vec![0usize; n];
            for (k, &v) in order.iter().enumerate() { r[v] = k; }
            r
        };
        let (res, _) = LeListsProblem::new(&g).with_order(order.clone()).solve(&par_cfg());
        for list in &res.lists {
            for w in list.windows(2) {
                prop_assert!(rank[w[0].0 as usize] < rank[w[1].0 as usize]);
                prop_assert!(w[0].1 > w[1].1);
            }
        }
    }
}
