//! The problem-level API: [`LeListsProblem`], solving through the unified
//! engine to `(LeListsOutput, RunReport)`.

use ri_core::engine::{ExecMode, Executable, Problem, RunConfig, RunReport, Runner};
use ri_graph::CsrGraph;
use ri_pram::random_permutation;

use crate::lists::{le_lists_parallel_impl, le_lists_sequential_impl};

/// The answer of an LE-lists run: `lists[u]` = entries `(source, distance)`
/// in insertion order (increasing source priority, strictly decreasing
/// distance). Identical between modes.
#[derive(Debug)]
pub struct LeListsOutput {
    /// The least-element lists.
    pub lists: Vec<Vec<(u32, f64)>>,
    /// Entries discarded by the parallel combine step (the Type 3 "extra
    /// work"; 0 in sequential mode).
    pub redundant_entries: u64,
    /// Settled vertices across all searches (the visit work of §6.1;
    /// mode-dependent — the parallel/sequential ratio is Theorem 6.2's
    /// constant-factor overhead).
    pub visits: u64,
    /// Scanned edges across all searches (mode-dependent, like `visits`).
    pub relaxations: u64,
}

impl LeListsOutput {
    /// Longest list (Cohen: `O(log n)` whp).
    pub fn max_list_len(&self) -> usize {
        self.lists.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Total entries over all lists (`≈ n·H_n` in expectation).
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

/// Cohen's least-element lists (§6.1 of the paper, Type 3).
///
/// The priority order is drawn from the config's seed unless fixed with
/// [`with_order`](LeListsProblem::with_order).
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_le_lists::LeListsProblem;
///
/// let g = ri_graph::generators::gnm(300, 900, 1, true);
/// let (out, report) = LeListsProblem::new(&g).solve(&RunConfig::new().seed(5));
/// assert_eq!(out.lists.len(), 300);
/// assert!(report.depth <= 10); // ⌈log₂ 300⌉ + 1 doubling rounds
/// ```
#[derive(Debug)]
pub struct LeListsProblem<'a> {
    g: &'a CsrGraph,
    order: Option<Vec<usize>>,
}

impl<'a> LeListsProblem<'a> {
    /// An LE-lists problem over `g`; the priority order is drawn from the
    /// config seed at solve time.
    pub fn new(g: &'a CsrGraph) -> Self {
        LeListsProblem { g, order: None }
    }

    /// Fix the priority order explicitly (must cover every vertex).
    pub fn with_order(mut self, order: Vec<usize>) -> Self {
        self.order = Some(order);
        self
    }
}

struct LeExec<'a> {
    g: &'a CsrGraph,
    order: Option<&'a [usize]>,
    out: Option<LeListsOutput>,
}

impl Executable for LeExec<'_> {
    fn name(&self) -> &str {
        "le-lists"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let drawn;
        let order: &[usize] = match self.order {
            Some(order) => order,
            None => {
                drawn = random_permutation(self.g.num_vertices(), cfg.seed);
                &drawn
            }
        };
        let mut report = RunReport::new("le-lists");
        report.items = order.len();
        let result = match cfg.mode {
            ExecMode::Sequential => report.phase("solve", cfg.instrument, |_| {
                le_lists_sequential_impl(self.g, order)
            }),
            ExecMode::Parallel => report.phase("solve", cfg.instrument, |_| {
                le_lists_parallel_impl(self.g, order)
            }),
            // No native relaxed loop: the hand-rolled doubling rounds here
            // bypass `execute_type3`, so relaxed requests run the exact
            // parallel path and say so in the report.
            ExecMode::Relaxed { .. } => {
                report.relaxed_fallback =
                    Some("le-lists has no native relaxed loop; ran exact parallel".into());
                report.phase("solve", cfg.instrument, |_| {
                    le_lists_parallel_impl(self.g, order)
                })
            }
        };
        let work = result.stats.visits + result.stats.relaxations;
        match result.stats.rounds {
            Some(ref log) => {
                report.depth = log.rounds();
                report.rounds = log.clone();
            }
            None => {
                if !order.is_empty() {
                    report.record_round(order.len(), work);
                }
                report.depth = order.len();
            }
        }
        report.checks = work;
        self.out = Some(LeListsOutput {
            lists: result.lists,
            redundant_entries: result.stats.redundant_entries,
            visits: result.stats.visits,
            relaxations: result.stats.relaxations,
        });
        report
    }
}

impl Problem for LeListsProblem<'_> {
    type Output = LeListsOutput;

    fn solve(&self, cfg: &RunConfig) -> (LeListsOutput, RunReport) {
        let mut exec = LeExec {
            g: self.g,
            order: self.order.as_deref(),
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_seed_controls_order() {
        let g = ri_graph::generators::gnm_weighted(400, 1600, 7, true);
        let problem = LeListsProblem::new(&g);
        let cfg = RunConfig::new().seed(3);
        let (seq, _) = problem.solve(&cfg.clone().sequential());
        let (par, report) = problem.solve(&cfg.clone().parallel());
        assert_eq!(seq.lists, par.lists, "Type 3 combine reproduces sequential");
        assert!(report.depth <= 10);

        let (other, _) = problem.solve(&RunConfig::new().seed(4));
        assert_ne!(par.lists, other.lists, "different seed, different order");
    }

    #[test]
    fn explicit_order_wins_over_seed() {
        let g = ri_graph::generators::gnm_weighted(100, 400, 2, true);
        let order: Vec<usize> = (0..100).collect();
        let a = LeListsProblem::new(&g)
            .with_order(order.clone())
            .solve(&RunConfig::new().seed(1))
            .0;
        let b = LeListsProblem::new(&g)
            .with_order(order)
            .solve(&RunConfig::new().seed(99))
            .0;
        assert_eq!(a.lists, b.lists);
    }
}
