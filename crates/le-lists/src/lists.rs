//! LE-list construction: sequential (Algorithm 6), parallel (Type 3), and
//! the all-pairs brute-force reference.

use ri_core::engine::{execute_type3, RunConfig};
use ri_core::Type3Algorithm;
use ri_graph::{dijkstra_distances, pruned_dijkstra, CsrGraph};
use ri_pram::{semisort_by_key, RoundLog, WorkCounter};

/// The least-element lists plus measurement data.
#[derive(Debug)]
pub struct LeListsResult {
    /// `lists[u]` = entries `(source_vertex, distance)` in *insertion*
    /// order: increasing source priority, strictly decreasing distance.
    /// (Definition 3 orders by distance — i.e. this list reversed.)
    pub lists: Vec<Vec<(u32, f64)>>,
    /// Work and round statistics.
    pub stats: LeStats,
}

/// Work/depth measurements of a run.
#[derive(Debug, Default)]
pub struct LeStats {
    /// Settled vertices across all searches (the visit work of §6.1).
    pub visits: u64,
    /// Scanned edges across all searches.
    pub relaxations: u64,
    /// Rounds of the parallel executor (`None` for sequential runs).
    pub rounds: Option<RoundLog>,
    /// Entries discarded by the combine step (the Type 3 "extra work").
    pub redundant_entries: u64,
}

#[cfg_attr(not(test), allow(dead_code))] // exercised by the length tests
impl LeListsResult {
    /// Longest list (Cohen: `O(log n)` whp).
    pub fn max_list_len(&self) -> usize {
        self.lists.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Total entries over all lists (`≈ n·H_n` in expectation).
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

fn check_order(g: &CsrGraph, order: &[usize]) {
    assert_eq!(
        order.len(),
        g.num_vertices(),
        "order must cover every vertex"
    );
}

/// Algorithm 6: sequential LE-lists. `order[i]` is the vertex processed at
/// iteration `i` (the random priority order).
pub(crate) fn le_lists_sequential_impl(g: &CsrGraph, order: &[usize]) -> LeListsResult {
    check_order(g, order);
    let n = g.num_vertices();
    let mut delta = vec![f64::INFINITY; n];
    let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let visits = WorkCounter::new();
    let relax = WorkCounter::new();
    for &src in order {
        // S = {u | d(src, u) < δ(u)}, found by the pruned search that uses
        // δ as its tentative-distance initialisation (the paper's "drop the
        // initialization" trick).
        let s = pruned_dijkstra(g, src as u32, &delta, &visits, &relax);
        for (u, d) in s {
            delta[u as usize] = d;
            lists[u as usize].push((src as u32, d));
        }
    }
    LeListsResult {
        lists,
        stats: LeStats {
            visits: visits.get(),
            relaxations: relax.get(),
            rounds: None,
            redundant_entries: 0,
        },
    }
}

struct ParState<'a> {
    g: &'a CsrGraph,
    order: &'a [usize],
    delta: Vec<f64>,
    lists: Vec<Vec<(u32, f64)>>,
    visits: WorkCounter,
    relax: WorkCounter,
    redundant: u64,
    /// Counter totals at the end of the previous round (the searches run
    /// in `run_iteration`, so per-round work is measured between combines).
    work_mark: u64,
}

impl Type3Algorithm for ParState<'_> {
    /// `(target, distance)` pairs discovered by one source's search.
    type Output = Vec<(u32, f64)>;

    fn len(&self) -> usize {
        self.order.len()
    }

    fn run_iteration(&self, k: usize) -> Self::Output {
        // Search against the frozen δ of the previous round: a superset of
        // the sequential visit set (stale δ only prunes less).
        pruned_dijkstra(
            self.g,
            self.order[k] as u32,
            &self.delta,
            &self.visits,
            &self.relax,
        )
    }

    fn combine(&mut self, lo: usize, outputs: &mut Vec<Self::Output>) -> u64 {
        // Flatten in iteration order: (target, source iteration, distance).
        // The flat record buffer comes from the engine's scratch arena and
        // goes back below, so every round reuses one allocation.
        let mut records: Vec<(u32, u32, f64)> = ri_pram::take_vec();
        for (off, out) in outputs.drain(..).enumerate() {
            let k = (lo + off) as u32;
            for (u, d) in out {
                records.push((u, k, d));
            }
        }
        // Semisort by target; stability keeps each group in source order.
        let grouped = semisort_by_key(records, |&(u, _, _)| u as u64);
        for (ukey, recs) in grouped.iter() {
            let u = ukey as usize;
            let mut current = self.delta[u];
            for &(_, k, d) in recs {
                // Keep exactly the sequential entries: distances must be
                // running strict minima (redundant finds come from the
                // stale δ and are dropped here).
                if d < current {
                    current = d;
                    self.lists[u].push((self.order[k as usize] as u32, d));
                } else {
                    self.redundant += 1;
                }
            }
            self.delta[u] = current;
        }
        ri_pram::put_vec(grouped.records);
        let now = self.visits.get() + self.relax.get();
        let round_work = now - self.work_mark;
        self.work_mark = now;
        round_work
    }
}

/// Type 3 parallel LE-lists: identical output to the sequential run,
/// `⌈log₂ n⌉ + 1` rounds.
pub(crate) fn le_lists_parallel_impl(g: &CsrGraph, order: &[usize]) -> LeListsResult {
    check_order(g, order);
    let n = g.num_vertices();
    let mut st = ParState {
        g,
        order,
        delta: vec![f64::INFINITY; n],
        lists: vec![Vec::new(); n],
        visits: WorkCounter::new(),
        relax: WorkCounter::new(),
        redundant: 0,
        work_mark: 0,
    };
    let log = execute_type3(&mut st, &RunConfig::new().parallel()).rounds;
    LeListsResult {
        lists: st.lists,
        stats: LeStats {
            visits: st.visits.get(),
            relaxations: st.relax.get(),
            rounds: Some(log),
            redundant_entries: st.redundant,
        },
    }
}

/// All-pairs reference: full Dijkstra from every source, then the literal
/// Definition 3 filter. O(n · SSSP) — tests only.
pub fn le_lists_brute_force(g: &CsrGraph, order: &[usize]) -> Vec<Vec<(u32, f64)>> {
    check_order(g, order);
    let n = g.num_vertices();
    let mut best = vec![f64::INFINITY; n];
    let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for &src in order {
        let dist = dijkstra_distances(g, src as u32);
        for u in 0..n {
            if dist[u] < best[u] {
                best[u] = dist[u];
                lists[u].push((src as u32, dist[u]));
            }
        }
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_graph::generators::{gnm, gnm_weighted, grid2d};
    use ri_pram::random_permutation;

    fn assert_lists_equal(a: &[Vec<(u32, f64)>], b: &[Vec<(u32, f64)>], tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}: length");
        for (u, (la, lb)) in a.iter().zip(b).enumerate() {
            assert_eq!(la, lb, "{tag}: lists for vertex {u} differ");
        }
    }

    #[test]
    fn sequential_matches_brute_force_unweighted() {
        for seed in 0..5 {
            let g = gnm(120, 500, seed, false);
            let order = random_permutation(120, seed ^ 1);
            let got = le_lists_sequential_impl(&g, &order);
            let want = le_lists_brute_force(&g, &order);
            assert_lists_equal(&got.lists, &want, "seq-vs-brute");
        }
    }

    #[test]
    fn sequential_matches_brute_force_weighted() {
        for seed in 0..5 {
            let g = gnm_weighted(100, 400, seed, true);
            let order = random_permutation(100, seed ^ 2);
            let got = le_lists_sequential_impl(&g, &order);
            let want = le_lists_brute_force(&g, &order);
            assert_lists_equal(&got.lists, &want, "seq-vs-brute-weighted");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..5 {
            let g = gnm_weighted(200, 900, seed, false);
            let order = random_permutation(200, seed ^ 3);
            let seq = le_lists_sequential_impl(&g, &order);
            let par = le_lists_parallel_impl(&g, &order);
            assert_lists_equal(&seq.lists, &par.lists, "par-vs-seq");
        }
    }

    #[test]
    fn parallel_on_grid() {
        let g = grid2d(20);
        let order = random_permutation(400, 9);
        let seq = le_lists_sequential_impl(&g, &order);
        let par = le_lists_parallel_impl(&g, &order);
        assert_lists_equal(&seq.lists, &par.lists, "grid");
        assert_eq!(par.stats.rounds.as_ref().unwrap().rounds(), 10);
    }

    #[test]
    fn own_vertex_heads_every_list() {
        let g = gnm(150, 600, 4, true);
        let order = random_permutation(150, 5);
        let r = le_lists_sequential_impl(&g, &order);
        for (u, list) in r.lists.iter().enumerate() {
            let last = list.last().expect("every vertex reaches itself");
            assert_eq!(last.0 as usize, u, "own vertex is the final (0-dist) entry");
            assert_eq!(last.1, 0.0);
        }
    }

    #[test]
    fn entries_strictly_decreasing() {
        let g = gnm_weighted(150, 700, 6, false);
        let order = random_permutation(150, 7);
        let r = le_lists_parallel_impl(&g, &order);
        for list in &r.lists {
            for w in list.windows(2) {
                assert!(w[0].1 > w[1].1, "distances must strictly decrease");
                assert!(w[0].0 != w[1].0);
            }
        }
    }

    #[test]
    fn list_lengths_logarithmic() {
        let n = 1 << 12;
        let g = gnm(n, 10 * n, 8, true);
        let order = random_permutation(n, 9);
        let r = le_lists_parallel_impl(&g, &order);
        let hn = ri_core::harmonic(n);
        let avg = r.total_entries() as f64 / n as f64;
        // E[|L(u)|] = H_n for vertices that reach everything; disconnected
        // pieces only shrink it.
        assert!(avg <= hn + 1.0, "avg list length {avg} above H_n {hn}");
        assert!(
            r.max_list_len() < 8 * 12,
            "max list length {} not O(log n)",
            r.max_list_len()
        );
    }

    #[test]
    fn parallel_extra_work_is_constant_factor() {
        let n = 1 << 11;
        let g = gnm_weighted(n, 8 * n, 10, false);
        let order = random_permutation(n, 11);
        let seq = le_lists_sequential_impl(&g, &order);
        let par = le_lists_parallel_impl(&g, &order);
        let ratio = par.stats.visits as f64 / seq.stats.visits.max(1) as f64;
        assert!(
            ratio < 4.0,
            "parallel visit work {}x sequential — Type 3 overhead too large",
            ratio
        );
    }

    #[test]
    fn disconnected_graph() {
        // Two components: lists never cross the gap.
        let mut edges = vec![(0u32, 1u32), (1, 0)];
        edges.extend([(2u32, 3u32), (3, 2)]);
        let g = CsrGraph::from_edges(4, &edges);
        let order = vec![0, 2, 1, 3];
        let r = le_lists_sequential_impl(&g, &order);
        for (src, _) in &r.lists[0] {
            assert!(*src < 2);
        }
        for (src, _) in &r.lists[3] {
            assert!(*src >= 2);
        }
        let par = le_lists_parallel_impl(&g, &order);
        assert_lists_equal(&r.lists, &par.lists, "disconnected");
    }

    #[test]
    fn empty_and_singleton() {
        let g = CsrGraph::from_edges(1, &[]);
        let r = le_lists_parallel_impl(&g, &[0]);
        assert_eq!(r.lists[0], vec![(0, 0.0)]);
    }
}
