//! # `ri-le-lists` — Cohen's least-element lists
//! (§6.1 of the paper, Type 3)
//!
//! Given a graph whose vertices carry a random priority order
//! `v₁, ..., v_n`, vertex `v_j` belongs to `L(u)` iff `v_j` is closer to
//! `u` than every earlier vertex (Definition 3). LE-lists have `O(log n)`
//! entries whp and power neighborhood-size estimation and probabilistic
//! tree embeddings.
//!
//! * Sequential mode of [`LeListsProblem`] — Algorithm 6: iterate sources
//!   in priority order, running a **δ-pruned** shortest-path search that
//!   only visits vertices the source improves.
//! * Parallel mode — the Type 3 execution: doubling rounds of sources
//!   search *in parallel against the previous round's δ array*, and a
//!   combine step (semisort by target, then a running-minimum filter in
//!   source order) discards the redundant entries, reproducing the
//!   sequential lists exactly.
//!
//! Theorem 6.2: the parallel version does `O(W_SP(n,m) log n)` expected
//! work over `O(log n)` rounds. Lemma 6.1 establishes the separating
//! dependences: if `b` is closer to `c` than `a` is and runs first, `a`'s
//! search can no longer reach `c`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lists;
pub mod problem;
pub mod registry;

pub use lists::le_lists_brute_force;
pub use problem::{LeListsOutput, LeListsProblem};
