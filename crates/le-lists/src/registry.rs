//! Registry entry: `"le-lists"` — Cohen's least-element lists over a
//! seeded random graph (§6.1, Type 3). Shapes: `"gnm-weighted"` (default)
//! and `"gnm"` with `param` as average out-degree (default 4), or
//! `"grid"` (an unweighted 2-D grid of about `n` vertices; `param`
//! ignored). The priority order is drawn from the *run* config's seed.

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_graph::generators::degree_edges;
use ri_graph::CsrGraph;

use crate::LeListsProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "le-lists",
        "Cohen's least-element lists on a random graph (§6.1, Type 3)",
        |spec| {
            // An Err (not a panic) below the minimum lets the streaming
            // fallback report small prefixes as pending rather than die.
            if spec.n < 2 {
                return Err("le-lists needs at least 2 vertices to place edges".into());
            }
            let g = match spec.shape_or("gnm-weighted") {
                "gnm-weighted" => ri_graph::generators::gnm_weighted(
                    spec.n,
                    degree_edges(spec.n, spec.param_or(4.0))?,
                    spec.seed,
                    true,
                ),
                "gnm" => ri_graph::generators::gnm(
                    spec.n,
                    degree_edges(spec.n, spec.param_or(4.0))?,
                    spec.seed,
                    true,
                ),
                "grid" => {
                    let side = (spec.n as f64).sqrt().ceil().max(1.0) as usize;
                    ri_graph::generators::grid2d(side)
                }
                other => {
                    return Err(format!(
                        "unknown le-lists graph shape `{other}` (known: gnm-weighted, gnm, grid)"
                    ))
                }
            };
            Ok(Box::new(LeListsWorkload { g }))
        },
    );
}

struct LeListsWorkload {
    g: CsrGraph,
}

impl ErasedProblem for LeListsWorkload {
    fn name(&self) -> &str {
        "le-lists"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = LeListsProblem::new(&self.g).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("vertices", self.g.num_vertices() as f64)
            .answer_num("total_entries", out.total_entries() as f64)
            .answer_num("max_list_len", out.max_list_len() as f64)
            .metric_num("visits", out.visits as f64)
            .metric_num("relaxations", out.relaxations as f64)
            .metric_num("redundant_entries", out.redundant_entries as f64);
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves_all_shapes() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in ["gnm-weighted", "gnm", "grid"] {
            let spec = WorkloadSpec::new(100, 3).shape(shape);
            let (summary, report) = reg
                .solve("le-lists", &spec, &RunConfig::new().seed(1))
                .unwrap();
            assert!(summary.to_json().contains("total_entries"), "{shape}");
            assert!(report.items > 0, "{shape}");
        }
        assert!(reg
            .construct("le-lists", &WorkloadSpec::new(100, 3).shape("sideways"))
            .is_err());
        assert!(reg
            .construct("le-lists", &WorkloadSpec::new(100, 3).param(-1.0))
            .is_err());
    }
}
