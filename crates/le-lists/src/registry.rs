//! Registry entry: `"le-lists"` — Cohen's least-element lists over a
//! seeded random graph (§6.1, Type 3). Shapes: `"gnm-weighted"`
//! (default) and `"gnm"` with `param` as average out-degree (default
//! 4); `"grid"` (an unweighted 2-D grid of exactly `n` vertices, ids
//! scattered by the workload seed; `param` ignored); and the
//! adversarial `"rmat"` (skewed power-law degrees, symmetrized) and
//! `"deep-path"` (a long chain with shortcuts — the high-diameter
//! stress case for list lengths and search depth). The priority order
//! is drawn from the *run* config's seed.

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_graph::generators::degree_edges;
use ri_graph::CsrGraph;

use crate::LeListsProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "le-lists",
        "Cohen's least-element lists on a random graph (§6.1, Type 3)",
        |spec| {
            // An Err (not a panic) below the minimum lets the streaming
            // fallback report small prefixes as pending rather than die.
            if spec.n < 2 {
                return Err("le-lists needs at least 2 vertices to place edges".into());
            }
            let g = match spec.shape_or("gnm-weighted") {
                "gnm-weighted" => ri_graph::generators::gnm_weighted(
                    spec.n,
                    degree_edges(spec.n, spec.param_or(4.0))?,
                    spec.seed,
                    true,
                ),
                "gnm" => ri_graph::generators::gnm(
                    spec.n,
                    degree_edges(spec.n, spec.param_or(4.0))?,
                    spec.seed,
                    true,
                ),
                "grid" => ri_graph::generators::grid2d_n(spec.n, spec.seed),
                "rmat" => ri_graph::generators::rmat_n(
                    spec.n,
                    degree_edges(spec.n, spec.param_or(4.0))?,
                    spec.seed,
                    true,
                ),
                "deep-path" => {
                    let m = degree_edges(spec.n, spec.param_or(4.0))?;
                    ri_graph::generators::deep_path(
                        spec.n,
                        m.saturating_sub(spec.n - 1),
                        spec.seed,
                        true,
                    )
                }
                other => {
                    return Err(format!(
                        "unknown le-lists graph shape `{other}` (known: gnm-weighted, \
                         gnm, grid, rmat, deep-path)"
                    ))
                }
            };
            Ok(Box::new(LeListsWorkload { g }))
        },
    );
}

struct LeListsWorkload {
    g: CsrGraph,
}

impl ErasedProblem for LeListsWorkload {
    fn name(&self) -> &str {
        "le-lists"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = LeListsProblem::new(&self.g).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("vertices", self.g.num_vertices() as f64)
            .answer_num("total_entries", out.total_entries() as f64)
            .answer_num("max_list_len", out.max_list_len() as f64)
            .metric_num("visits", out.visits as f64)
            .metric_num("relaxations", out.relaxations as f64)
            .metric_num("redundant_entries", out.redundant_entries as f64);
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves_all_shapes() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in ["gnm-weighted", "gnm", "grid", "rmat", "deep-path"] {
            let spec = WorkloadSpec::new(100, 3).shape(shape);
            let (summary, report) = reg
                .solve("le-lists", &spec, &RunConfig::new().seed(1))
                .unwrap();
            // Every shape must honor spec.n exactly (the old grid shape
            // silently built ceil(sqrt(n))² ≥ n vertices).
            assert!(
                summary.to_json().contains("\"vertices\":100"),
                "{shape}: {}",
                summary.to_json()
            );
            assert!(summary.to_json().contains("total_entries"), "{shape}");
            assert!(report.items > 0, "{shape}");
        }
        // The grid shape must honor the workload seed (the old one
        // ignored it entirely).
        let a = reg
            .solve(
                "le-lists",
                &WorkloadSpec::new(90, 1).shape("grid"),
                &RunConfig::new().seed(1),
            )
            .unwrap()
            .0;
        let b = reg
            .solve(
                "le-lists",
                &WorkloadSpec::new(90, 2).shape("grid"),
                &RunConfig::new().seed(1),
            )
            .unwrap()
            .0;
        assert_ne!(a.to_json(), b.to_json(), "grid ignores the workload seed");
        assert!(reg
            .construct("le-lists", &WorkloadSpec::new(100, 3).shape("sideways"))
            .is_err());
        assert!(reg
            .construct("le-lists", &WorkloadSpec::new(100, 3).param(-1.0))
            .is_err());
    }
}
