//! Property-based tests for the parallel primitives: every primitive must
//! agree with an obvious sequential reference on arbitrary inputs.

use proptest::prelude::*;
use ri_pram::{
    exclusive_scan_usize, min_index, pack, radix_sort_by_key, semisort_by_key, ConcurrentPairMap,
    Permutation,
};

proptest! {
    #[test]
    fn scan_matches_reference(values in proptest::collection::vec(0usize..1000, 0..2000)) {
        let (pre, total) = exclusive_scan_usize(&values);
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(pre[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn pack_matches_filter(items in proptest::collection::vec(any::<u32>(), 0..2000),
                           seed in any::<u64>()) {
        let flags: Vec<bool> = items
            .iter()
            .enumerate()
            .map(|(i, _)| (seed.wrapping_mul(i as u64 + 1)) % 3 == 0)
            .collect();
        let got = pack(&items, &flags);
        let want: Vec<u32> = items
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f)
            .map(|(&x, _)| x)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_matches_std_sort(mut items in proptest::collection::vec(any::<u64>(), 0..3000)) {
        let mut want = items.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut items, |&x| x);
        prop_assert_eq!(items, want);
    }

    #[test]
    fn radix_sort_stable_on_duplicates(keys in proptest::collection::vec(0u64..16, 0..2000)) {
        let mut items: Vec<(u64, usize)> = keys.iter().copied().zip(0..).collect();
        radix_sort_by_key(&mut items, |&(k, _)| k);
        for w in items.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn min_index_matches_reference(items in proptest::collection::vec(any::<i64>(), 0..2000)) {
        let want = items
            .iter()
            .enumerate()
            .min_by_key(|&(i, x)| (x, i))
            .map(|(i, _)| i);
        prop_assert_eq!(min_index(&items), want);
    }

    #[test]
    fn semisort_partitions_input(keys in proptest::collection::vec(0u64..64, 0..2000)) {
        let data: Vec<(u64, usize)> = keys.iter().copied().zip(0..).collect();
        let grouped = semisort_by_key(data.clone(), |&(k, _)| k);
        // Same multiset of records.
        let mut got: Vec<(u64, usize)> = grouped.records.clone();
        let mut want = data.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Each group homogeneous, stable, and keys distinct across groups.
        let mut seen = std::collections::HashSet::new();
        for (k, recs) in grouped.iter() {
            prop_assert!(seen.insert(k));
            for r in recs {
                prop_assert_eq!(r.0, k);
            }
            for w in recs.windows(2) {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn permutation_is_bijective(n in 0usize..2000, seed in any::<u64>()) {
        let p = Permutation::uniform(n, seed);
        prop_assert_eq!(p.len(), n);
        for k in 0..n {
            prop_assert_eq!(p.rank[p.order[k]], k);
        }
    }

    #[test]
    fn pair_map_agrees_with_hashmap(ops in proptest::collection::vec((0u64..100, 1u64..1_000_000), 0..300)) {
        // At most two distinct values per key in the op stream.
        let mut ref_map: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        let m = ConcurrentPairMap::with_capacity(256);
        for &(k, v) in &ops {
            let e = ref_map.entry(k).or_default();
            if !e.contains(&v) && e.len() >= 2 {
                continue; // would panic by design; skip
            }
            m.insert(k, v);
            if !e.contains(&v) {
                e.push(v);
            }
        }
        for (k, vs) in &ref_map {
            let mut got: Vec<u64> = m.get(*k).iter().collect();
            let mut want = vs.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
