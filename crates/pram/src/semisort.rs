//! Semisort: group records by key without fully sorting keys.
//!
//! §6.1 of the paper: *"Collecting the contributions to each LE-list can be
//! done with a semisort on the targets."* A semisort clusters equal keys
//! contiguously; the relative order of distinct keys is arbitrary (here:
//! order of hashed keys), which is why it is cheaper than sorting in theory
//! ([Gu–Shun–Sun–Blelloch 2015] achieve linear work). We realise it as a
//! stable radix sort on *hashed* keys — same interface and output contract,
//! O(n) practical behaviour, and stability gives each group's records in
//! input order, which the LE-list combine step relies on.

use rayon::prelude::*;

use crate::hash::hash_u64;
use crate::radix::radix_sort_by_key;

/// Records grouped by key: `records` holds the reordered input, and
/// `groups` holds `(key, start, end)` ranges into it.
#[derive(Debug, Clone)]
pub struct Grouped<T> {
    /// The reordered records: each group's records are contiguous and appear
    /// in their original input order (the grouping is stable).
    pub records: Vec<T>,
    /// `(key, start, end)` — group `key` occupies `records[start..end]`.
    pub groups: Vec<(u64, usize, usize)>,
}

impl<T> Grouped<T> {
    /// Iterate `(key, &records_of_key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[T])> {
        self.groups
            .iter()
            .map(move |&(k, s, e)| (k, &self.records[s..e]))
    }

    /// Number of distinct keys.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// Group `records` by `key`, stably.
///
/// ```
/// let grouped = ri_pram::semisort_by_key(vec![(1u64, 'a'), (2, 'b'), (1, 'c')], |&(k, _)| k);
/// let g1: Vec<char> = grouped
///     .iter()
///     .find(|(k, _)| *k == 1)
///     .unwrap()
///     .1
///     .iter()
///     .map(|&(_, c)| c)
///     .collect();
/// assert_eq!(g1, vec!['a', 'c']); // input order within the group
/// ```
pub fn semisort_by_key<T, F>(mut records: Vec<T>, key: F) -> Grouped<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    if records.is_empty() {
        return Grouped {
            records,
            groups: Vec::new(),
        };
    }
    // Sort by hashed key: clusters equal keys, spreads digits uniformly so
    // every radix pass is balanced regardless of the key distribution.
    radix_sort_by_key(&mut records, |r| hash_u64(key(r)));

    // Group boundaries: positions where the key changes (the boundary
    // index buffer is reused scratch; the group list is returned, so it
    // owns its allocation).
    let n = records.len();
    let mut boundary: Vec<usize> = crate::scratch::take_vec();
    crate::pack::pack_indices_where_into(
        n,
        |i| i == 0 || key(&records[i - 1]) != key(&records[i]),
        &mut boundary,
    );
    let groups: Vec<(u64, usize, usize)> = boundary
        .par_iter()
        .enumerate()
        .map(|(gi, &start)| {
            let end = if gi + 1 < boundary.len() {
                boundary[gi + 1]
            } else {
                n
            };
            (key(&records[start]), start, end)
        })
        .collect();
    crate::scratch::put_vec(boundary);
    Grouped { records, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn groups_cover_input_exactly() {
        let data: Vec<(u64, usize)> = (0..50_000).map(|i| ((i % 97) as u64, i)).collect();
        let grouped = semisort_by_key(data.clone(), |&(k, _)| k);
        assert_eq!(grouped.records.len(), data.len());
        let mut covered = 0;
        for &(_, s, e) in &grouped.groups {
            assert!(s < e);
            covered += e - s;
        }
        assert_eq!(covered, data.len());
        assert_eq!(grouped.num_groups(), 97);
    }

    #[test]
    fn group_contents_match_reference() {
        let data: Vec<(u64, usize)> = (0..10_000).map(|i| ((i % 31) as u64, i)).collect();
        let mut want: HashMap<u64, Vec<usize>> = HashMap::new();
        for &(k, v) in &data {
            want.entry(k).or_default().push(v);
        }
        let grouped = semisort_by_key(data, |&(k, _)| k);
        for (k, recs) in grouped.iter() {
            let got: Vec<usize> = recs.iter().map(|&(_, v)| v).collect();
            assert_eq!(&got, want.get(&k).unwrap(), "group {k} differs");
        }
    }

    #[test]
    fn within_group_order_is_input_order() {
        let data: Vec<(u64, usize)> = (0..100_000).map(|i| ((i % 5) as u64, i)).collect();
        let grouped = semisort_by_key(data, |&(k, _)| k);
        for (_, recs) in grouped.iter() {
            for w in recs.windows(2) {
                assert!(w[0].1 < w[1].1, "stability violated inside group");
            }
        }
    }

    #[test]
    fn all_same_key_single_group() {
        let data = vec![(7u64, 'x'); 1000];
        let grouped = semisort_by_key(data, |&(k, _)| k);
        assert_eq!(grouped.num_groups(), 1);
        assert_eq!(grouped.groups[0], (7, 0, 1000));
    }

    #[test]
    fn all_distinct_keys() {
        let data: Vec<(u64, ())> = (0..5000u64).map(|i| (i, ())).collect();
        let grouped = semisort_by_key(data, |&(k, _)| k);
        assert_eq!(grouped.num_groups(), 5000);
    }

    #[test]
    fn empty_input() {
        let grouped = semisort_by_key(Vec::<(u64, ())>::new(), |&(k, _)| k);
        assert_eq!(grouped.num_groups(), 0);
    }
}
