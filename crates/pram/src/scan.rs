//! Parallel prefix sums (scan).
//!
//! Scan is the PRAM workhorse behind processor allocation and compaction
//! (Preliminaries of the paper; used implicitly by every "filter and keep
//! the survivors" step). The implementation is the standard two-pass blocked
//! scheme: per-block sums, a sequential scan over the (few) block sums, then
//! a parallel fix-up pass. Work O(n), depth O(n / P + log P).

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Exclusive prefix sum over `usize` values.
///
/// Returns `(prefix, total)` where `prefix[i] = sum(values[..i])` and
/// `total = sum(values)`.
///
/// ```
/// let (pre, total) = ri_pram::exclusive_scan_usize(&[3, 1, 4, 1, 5]);
/// assert_eq!(pre, vec![0, 3, 4, 8, 9]);
/// assert_eq!(total, 14);
/// ```
pub fn exclusive_scan_usize(values: &[usize]) -> (Vec<usize>, usize) {
    let mut out = values.to_vec();
    let total = exclusive_scan_inplace(&mut out);
    (out, total)
}

/// In-place exclusive prefix sum; returns the grand total.
pub fn exclusive_scan_inplace(values: &mut [usize]) -> usize {
    let n = values.len();
    if n == 0 {
        return 0;
    }
    if n <= SEQ_THRESHOLD {
        return scan_seq(values);
    }
    let nblocks = rayon::recommended_splits();
    let block = n.div_ceil(nblocks);
    // Pass 1: independent sums per block (the small block-sum array is a
    // reused scratch buffer, so repeated scans allocate nothing).
    let mut block_sums: Vec<usize> = crate::scratch::take_vec();
    values
        .par_chunks(block)
        .map(|c| c.iter().sum::<usize>())
        .collect_into_vec(&mut block_sums);
    // Scan the (small) block-sum array sequentially.
    let total = scan_seq(&mut block_sums);
    // Pass 2: per-block exclusive scan offset by the block prefix.
    values
        .par_chunks_mut(block)
        .zip(block_sums.par_iter())
        .for_each(|(chunk, &offset)| {
            let mut acc = offset;
            for v in chunk {
                let x = *v;
                *v = acc;
                acc += x;
            }
        });
    crate::scratch::put_vec(block_sums);
    total
}

fn scan_seq(values: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for v in values.iter_mut() {
        let x = *v;
        *v = acc;
        acc += x;
    }
    acc
}

/// Exclusive max-scan: `out[i] = max(values[..i])`, with `identity` for
/// `out[0]`. Used by tests validating monotone filtering in the Type 3
/// combine steps (drop entries whose distance is not a running minimum).
pub fn exclusive_scan_max(values: &[u64], identity: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = identity;
    for &v in values {
        out.push(acc);
        acc = acc.max(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(values: &[usize]) -> (Vec<usize>, usize) {
        let mut acc = 0;
        let mut out = Vec::with_capacity(values.len());
        for &v in values {
            out.push(acc);
            acc += v;
        }
        (out, acc)
    }

    #[test]
    fn empty() {
        let (pre, total) = exclusive_scan_usize(&[]);
        assert!(pre.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn singleton() {
        let (pre, total) = exclusive_scan_usize(&[7]);
        assert_eq!(pre, vec![0]);
        assert_eq!(total, 7);
    }

    #[test]
    fn matches_reference_small() {
        let v: Vec<usize> = (0..100).map(|i| (i * 37) % 11).collect();
        assert_eq!(exclusive_scan_usize(&v), reference(&v));
    }

    #[test]
    fn matches_reference_large_parallel_path() {
        let v: Vec<usize> = (0..100_000).map(|i| (i * 2654435761) % 17).collect();
        assert_eq!(exclusive_scan_usize(&v), reference(&v));
    }

    #[test]
    fn all_zeros() {
        let v = vec![0usize; 50_000];
        let (pre, total) = exclusive_scan_usize(&v);
        assert_eq!(total, 0);
        assert!(pre.iter().all(|&x| x == 0));
    }

    #[test]
    fn max_scan() {
        let out = exclusive_scan_max(&[3, 1, 4, 1, 5], 0);
        assert_eq!(out, vec![0, 3, 3, 4, 4]);
    }
}
