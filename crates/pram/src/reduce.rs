//! Parallel reductions: minimum, minimum index, argmin by key.
//!
//! Algorithm 1 of the paper ("l ← minimum true index in F") and every Type 2
//! algorithm's "find the earliest special iteration" step are minimum-index
//! reductions; the paper implements them in O(1) PRAM depth, we implement
//! them as rayon reduce trees (O(log n) depth, same O(n) work).

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Index of the minimum element (first occurrence wins ties). `None` on
/// empty input.
pub fn min_index<T: Ord + Sync>(items: &[T]) -> Option<usize> {
    min_index_by_key(items.len(), |i| &items[i])
}

/// Index `i ∈ 0..n` minimising `key(i)`; ties broken toward the smaller
/// index (so the result is deterministic and matches a sequential scan).
pub fn min_index_by_key<K, F>(n: usize, key: F) -> Option<usize>
where
    K: Ord,
    F: Fn(usize) -> K + Sync,
{
    if n == 0 {
        return None;
    }
    let better = |a: usize, b: usize| -> usize {
        // Prefer strictly smaller key; on equal keys prefer smaller index.
        match key(b).cmp(&key(a)) {
            std::cmp::Ordering::Less => b,
            _ => a,
        }
    };
    if n <= SEQ_THRESHOLD {
        return Some((1..n).fold(0, better));
    }
    Some(
        (0..n)
            .into_par_iter()
            .reduce_with(|a, b| if a < b { better(a, b) } else { better(b, a) })
            .expect("nonempty"),
    )
}

/// Index of the minimum of a float slice (NaNs are treated as +∞; first
/// occurrence wins ties). `None` on empty input.
pub fn min_float_index(values: &[f64]) -> Option<usize> {
    min_index_by_key(values.len(), |i| ordered_float_bits(values[i]))
}

/// Total order on f64 via bit tricks: sorts -∞ < ... < +∞ < NaN.
#[inline]
pub fn ordered_float_bits(x: f64) -> u64 {
    if x.is_nan() {
        return u64::MAX;
    }
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_index_simple() {
        assert_eq!(min_index(&[5, 2, 8, 2, 1, 1]), Some(4));
        assert_eq!(min_index::<u32>(&[]), None);
    }

    #[test]
    fn min_index_first_tie_wins() {
        assert_eq!(min_index(&[3, 1, 1, 1]), Some(1));
    }

    #[test]
    fn min_index_large_parallel() {
        let v: Vec<u64> = (0..300_000)
            .map(|i: u64| (i.wrapping_mul(2654435761)) % 1_000_003)
            .collect();
        let want = v
            .iter()
            .enumerate()
            .min_by_key(|&(i, x)| (x, i))
            .map(|(i, _)| i);
        assert_eq!(min_index(&v), want);
    }

    #[test]
    fn float_order_total() {
        let mut xs = [2.5, -1.0, 0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY];
        xs.sort_by_key(|&x| ordered_float_bits(x));
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert_eq!(*xs.last().unwrap(), f64::INFINITY);
    }

    #[test]
    fn min_float_handles_nan() {
        assert_eq!(min_float_index(&[f64::NAN, 3.0, 1.0]), Some(2));
        assert_eq!(min_float_index(&[f64::NAN]), Some(0));
    }
}
