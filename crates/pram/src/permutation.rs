//! Seeded random permutations — the random insertion orders themselves.
//!
//! A *randomized incremental algorithm* inserts its elements in a uniformly
//! random order (§2 of the paper). Both constructions here are seeded and
//! reproducible:
//!
//! * [`random_permutation`] — sequential Fisher–Yates: exactly uniform.
//! * [`random_permutation_par`] — parallel: assign each index a distinct
//!   pseudorandom 64-bit key and radix-sort by it. The key map is a fixed
//!   bijection of `seed ⊕ i`, so keys never collide and the permutation is
//!   a deterministic function of the seed (statistically uniform, which is
//!   all the paper's expectations need; the Fisher–Yates version is the
//!   default everywhere correctness-of-distribution matters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hash::hash_u64;
use crate::radix::radix_sort_by_key;

/// A permutation of `0..n` with both directions materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `order[k]` = element processed at iteration `k`.
    pub order: Vec<usize>,
    /// `rank[e]` = iteration at which element `e` is processed.
    pub rank: Vec<usize>,
}

impl Permutation {
    /// Build from an explicit order (validates it is a permutation).
    pub fn from_order(order: Vec<usize>) -> Self {
        let n = order.len();
        let mut rank = vec![usize::MAX; n];
        for (k, &e) in order.iter().enumerate() {
            assert!(e < n, "element {e} out of range {n}");
            assert!(rank[e] == usize::MAX, "duplicate element {e}");
            rank[e] = k;
        }
        Permutation { order, rank }
    }

    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        Permutation {
            order: (0..n).collect(),
            rank: (0..n).collect(),
        }
    }

    /// A uniformly random permutation (Fisher–Yates, seeded).
    pub fn uniform(n: usize, seed: u64) -> Self {
        Self::from_order(random_permutation(n, seed))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Sequential Fisher–Yates shuffle of `0..n`, seeded. Exactly uniform over
/// all `n!` orders (given a perfect RNG).
pub fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    order
}

/// Parallel permutation of `0..n`: sort indices by a per-index pseudorandom
/// key. Deterministic given `seed`; distinct keys by construction.
pub fn random_permutation_par(n: usize, seed: u64) -> Vec<usize> {
    let salt = hash_u64(seed ^ 0xABCD_EF01_2345_6789);
    let mut idx: Vec<usize> = (0..n).collect();
    radix_sort_by_key(&mut idx, |&i| hash_u64(salt ^ (i as u64)));
    idx
}

/// The sequential (forward) Knuth shuffle driven by an explicit swap-target
/// array: `for i in 0..n: swap(a[i], a[h[i]])` with `h[i] ∈ [i, n)`.
///
/// With `h` drawn uniformly this is exactly Fisher–Yates; taking `h` as an
/// argument makes the parallel version's *exact-equivalence* testable.
pub fn knuth_shuffle_sequential(h: &[usize]) -> Vec<usize> {
    let n = h.len();
    let mut a: Vec<usize> = (0..n).collect();
    for (i, &hi) in h.iter().enumerate() {
        debug_assert!((i..n).contains(&hi), "h[{i}] out of range");
        a.swap(i, hi);
    }
    a
}

/// The **parallel** Knuth shuffle via reservations — the algorithm of
/// Shun–Gu–Blelloch–Fineman–Gibbons (SODA 2015, reference \[66\] of the
/// paper), whose dependence-depth analysis is the direct ancestor of the
/// paper's framework.
///
/// Each round, every outstanding iteration `i` priority-writes its index
/// into the two array slots it needs (`i` and `h[i]`); an iteration
/// *commits* (performs its swap) when it holds the minimum reservation on
/// both. Committing in that order makes every swap see exactly the values
/// the sequential shuffle would — the output equals
/// [`knuth_shuffle_sequential`] *exactly* — and the number of rounds is the
/// iteration dependence depth, `O(log n)` whp.
///
/// Returns `(permutation, rounds)`.
pub fn knuth_shuffle_parallel(h: &[usize]) -> (Vec<usize>, usize) {
    use crate::priority::MinIndex;
    use rayon::prelude::*;

    let n = h.len();
    let a: Vec<std::sync::atomic::AtomicUsize> =
        (0..n).map(std::sync::atomic::AtomicUsize::new).collect();
    let board = MinIndex::new(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut rounds = 0usize;

    while !remaining.is_empty() {
        rounds += 1;
        // Reserve phase: priority-write the iteration index on both slots.
        remaining.par_iter().for_each(|&i| {
            debug_assert!((i..n).contains(&h[i]));
            board.write_min(i, i as u64);
            board.write_min(h[i], i as u64);
        });
        // Commit phase: winners of both slots swap. Committed iterations
        // own both their slots exclusively (anything else reserving them
        // has a larger index and lost), so the swaps are disjoint.
        let committed: Vec<usize> = remaining
            .par_iter()
            .copied()
            .filter(|&i| board.get(i) == Some(i as u64) && board.get(h[i]) == Some(i as u64))
            .collect();
        committed.par_iter().for_each(|&i| {
            if i != h[i] {
                // Disjointness argument above makes this a plain exchange.
                let x = a[i].load(std::sync::atomic::Ordering::Relaxed);
                let y = a[h[i]].swap(x, std::sync::atomic::Ordering::Relaxed);
                a[i].store(y, std::sync::atomic::Ordering::Relaxed);
            }
        });
        // Clear this round's reservations (slots touched by any survivor
        // or committer), then drop the committed iterations.
        remaining.par_iter().for_each(|&i| {
            board.reset(i);
            board.reset(h[i]);
        });
        remaining = remaining
            .into_par_iter()
            .filter(|&i| !(a_committed_contains(&committed, i)))
            .collect();
    }
    (a.into_iter().map(|x| x.into_inner()).collect(), rounds)
}

/// Membership in the (sorted, since filtered from sorted `remaining`)
/// committed list.
fn a_committed_contains(committed: &[usize], i: usize) -> bool {
    committed.binary_search(&i).is_ok()
}

/// Uniform swap targets `h[i] ∈ [i, n)` for the Knuth shuffle, seeded.
pub fn knuth_targets(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e57);
    (0..n).map(|i| rng.gen_range(i..n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(v: &[usize]) -> bool {
        let mut seen = vec![false; v.len()];
        v.iter().all(|&x| {
            if x < seen.len() && !seen[x] {
                seen[x] = true;
                true
            } else {
                false
            }
        })
    }

    #[test]
    fn fisher_yates_is_permutation_and_seeded() {
        let a = random_permutation(1000, 7);
        let b = random_permutation(1000, 7);
        let c = random_permutation(1000, 8);
        assert!(is_permutation(&a));
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn parallel_is_permutation_and_seeded() {
        let a = random_permutation_par(50_000, 3);
        assert!(is_permutation(&a));
        assert_eq!(a, random_permutation_par(50_000, 3));
        assert_ne!(a, random_permutation_par(50_000, 4));
    }

    #[test]
    fn permutation_ranks_invert_order() {
        let p = Permutation::uniform(500, 11);
        for k in 0..500 {
            assert_eq!(p.rank[p.order[k]], k);
        }
    }

    #[test]
    fn identity_permutation() {
        let p = Permutation::identity(5);
        assert_eq!(p.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.rank, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate element")]
    fn from_order_rejects_duplicates() {
        Permutation::from_order(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_order_rejects_out_of_range() {
        Permutation::from_order(vec![0, 3]);
    }

    #[test]
    fn empty_and_tiny() {
        assert!(random_permutation(0, 1).is_empty());
        assert_eq!(random_permutation(1, 1), vec![0]);
        assert!(Permutation::uniform(0, 1).is_empty());
    }

    #[test]
    fn knuth_parallel_equals_sequential_exactly() {
        for seed in 0..6 {
            let h = knuth_targets(5000, seed);
            let seq = knuth_shuffle_sequential(&h);
            let (par, rounds) = knuth_shuffle_parallel(&h);
            assert_eq!(par, seq, "seed {seed}: shuffles diverge");
            assert!(rounds > 1, "nontrivial instances need several rounds");
        }
    }

    #[test]
    fn knuth_rounds_logarithmic() {
        let n = 1 << 15;
        let h = knuth_targets(n, 3);
        let (_, rounds) = knuth_shuffle_parallel(&h);
        // [66]: dependence depth O(log n) whp; generous factor.
        assert!(rounds < 8 * 15, "rounds {rounds} not O(log n)");
    }

    #[test]
    fn knuth_shuffle_is_permutation() {
        let h = knuth_targets(2000, 9);
        let (p, _) = knuth_shuffle_parallel(&h);
        assert!(is_permutation(&p));
    }

    #[test]
    fn knuth_identity_targets() {
        // h[i] == i for all i: nothing moves, one round.
        let h: Vec<usize> = (0..100).collect();
        let (p, rounds) = knuth_shuffle_parallel(&h);
        assert_eq!(p, (0..100).collect::<Vec<_>>());
        assert_eq!(rounds, 1);
    }

    #[test]
    fn knuth_worst_case_chain() {
        // h[i] = i + 1: iteration i needs slot i+1 which iteration i+1
        // also wants — but reservations by min index resolve a whole
        // prefix per round? No: i reserves {i, i+1}, so only i = 0 wins
        // round one... classic O(n)-depth adversarial chain stays correct.
        let n = 64;
        let mut h: Vec<usize> = (0..n).map(|i| (i + 1).min(n - 1)).collect();
        h[n - 1] = n - 1;
        let seq = knuth_shuffle_sequential(&h);
        let (par, _) = knuth_shuffle_parallel(&h);
        assert_eq!(par, seq);
    }

    #[test]
    fn fisher_yates_first_position_roughly_uniform() {
        // Statistical smoke test: over many seeds, order[0] spreads across
        // all n positions.
        let n = 10;
        let mut counts = vec![0usize; n];
        for seed in 0..2000 {
            counts[random_permutation(n, seed)[0]] += 1;
        }
        for &c in &counts {
            assert!((100..400).contains(&c), "skew: {counts:?}");
        }
    }
}
