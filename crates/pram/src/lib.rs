//! # `ri-pram` — work-depth parallel primitives
//!
//! The paper analyses its algorithms on the CRCW PRAM in the *work-depth*
//! model. This crate is the shared-memory substrate standing in for that
//! model: every primitive the seven algorithms rely on is implemented here on
//! top of [`rayon`]'s work-stealing scheduler and `std::sync::atomic`.
//!
//! Provided primitives and their PRAM counterparts:
//!
//! | Module | Primitive | PRAM role in the paper |
//! |---|---|---|
//! | [`scan`] | parallel prefix sums | processor allocation / compaction |
//! | [`pack`](mod@crate::pack) | filter & pack | compaction after InCircle filtering (§4) |
//! | [`reduce`] | min / min-index reductions | "find earliest violating iteration" (§2.2, §5) |
//! | [`priority`] | priority-write cells | priority-write CRCW (§3, §6.2) |
//! | [`radix`] | stable parallel LSD radix sort | integer sorting for semisort |
//! | [`semisort`] | group-by-key | combine steps of Type 3 algorithms (§6) |
//! | [`conmap`] | concurrent fixed-capacity hash maps | face hashmap of parallel DT (§4) |
//! | [`permutation`] | seeded random permutations | the random insertion order itself |
//! | [`hash`] | fast non-cryptographic hashing | hashing for semisort / hash tables |
//! | [`counters`] | work/round instrumentation | measuring work and depth (rounds) |
//! | [`scratch`] | reusable per-thread scratch buffers | amortising per-round allocation |
//!
//! All primitives are deterministic given their inputs (and seeds), which is
//! what lets the algorithm crates assert *parallel output == sequential
//! output* in their test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conmap;
pub mod counters;
pub mod hash;
pub mod pack;
pub mod permutation;
pub mod priority;
pub mod radix;
pub mod reduce;
pub mod relaxed;
pub mod scan;
pub mod scratch;
pub mod semisort;

pub use conmap::{ConcurrentPairMap, PairSlots};
pub use counters::{RoundLog, WorkCounter};
pub use hash::{hash_u64, FxBuildHasher, FxHasher};
pub use pack::{pack, pack_indices, pack_indices_where, pack_indices_where_into, pack_into};
pub use permutation::{
    knuth_shuffle_parallel, knuth_shuffle_sequential, knuth_targets, random_permutation,
    random_permutation_par, Permutation,
};
pub use priority::{MinIndex, PriorityCell};
pub use radix::{radix_sort_by_key, radix_sort_u64};
pub use reduce::{min_float_index, min_index, min_index_by_key};
pub use relaxed::MultiQueue;
pub use scan::{exclusive_scan_inplace, exclusive_scan_usize};
pub use scratch::{put_vec, take_vec, ScratchStats};
pub use semisort::{semisort_by_key, Grouped};

/// Grain size below which primitives fall back to sequential loops.
///
/// The scheduler has per-region overhead; all primitives in this crate stop
/// going parallel below this many elements. Block counts *within* a
/// parallel primitive come from [`rayon::recommended_splits`], which
/// adapts to the installed pool's width (a few blocks per worker so the
/// crew's dynamic cursor can balance uneven blocks).
pub const SEQ_THRESHOLD: usize = 4096;
