//! Work and round instrumentation.
//!
//! The paper's claims are about *work* (total operations) and *depth*
//! (rounds of the parallel executors). Every algorithm crate reports its
//! measurements through these two small types so the bench harness can print
//! paper-vs-measured tables from one code path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent work counter (relaxed increments; read at phase boundaries).
///
/// Counts "units of work" — comparisons for sorting, InCircle tests for
/// Delaunay, vertex visits for the graph algorithms. Relaxed ordering is
/// fine: totals are only read after the parallel phase has joined.
#[derive(Debug, Default)]
pub struct WorkCounter(AtomicU64);

impl WorkCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` units of work.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one unit of work.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (between experiments).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Per-round log of a parallel execution: how many items ran in each round
/// and how much work the round did. `rounds()` is the measured *depth* in
/// the model sense of the paper's theorems.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RoundLog {
    entries: Vec<(usize, u64)>,
}

impl RoundLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed round.
    pub fn record(&mut self, items: usize, work: u64) {
        self.entries.push((items, work));
    }

    /// Number of rounds executed (the measured depth).
    pub fn rounds(&self) -> usize {
        self.entries.len()
    }

    /// Total work across rounds.
    pub fn total_work(&self) -> u64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Total items across rounds.
    pub fn total_items(&self) -> usize {
        self.entries.iter().map(|&(i, _)| i).sum()
    }

    /// Largest single round (items, work).
    pub fn max_round(&self) -> (usize, u64) {
        self.entries
            .iter()
            .copied()
            .max_by_key(|&(i, _)| i)
            .unwrap_or((0, 0))
    }

    /// The raw `(items, work)` entries, one per round.
    pub fn entries(&self) -> &[(usize, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counter_concurrent_sum() {
        let c = WorkCounter::new();
        (0..100_000u64).into_par_iter().for_each(|_| c.incr());
        assert_eq!(c.get(), 100_000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn round_log_aggregates() {
        let mut log = RoundLog::new();
        log.record(10, 100);
        log.record(20, 50);
        log.record(5, 5);
        assert_eq!(log.rounds(), 3);
        assert_eq!(log.total_work(), 155);
        assert_eq!(log.total_items(), 35);
        assert_eq!(log.max_round(), (20, 50));
    }

    #[test]
    fn empty_log() {
        let log = RoundLog::new();
        assert_eq!(log.rounds(), 0);
        assert_eq!(log.max_round(), (0, 0));
    }
}
