//! Filter-and-pack (compaction).
//!
//! The paper's parallel Delaunay step "applies and filters on the InCircle
//! tests ... using processor allocation and compaction" (§4); Type 2
//! executors compact the surviving iterations of each prefix. `pack` is the
//! deterministic (exact, not approximate) version of that primitive: it
//! preserves input order, so parallel runs remain reproducible.
//!
//! The textbook flag→scan→scatter pipeline is fused here into a **single
//! parallel pass**: each chunk filters its survivors locally and the
//! chunk outputs concatenate in chunk order (order-preserving). The
//! n-sized offset array and its scan — two full passes over the data that
//! existed only to pre-compute scatter positions — are gone entirely, and
//! the `*_into` variants write into a reused, capacity-preserving buffer
//! so round-based callers allocate nothing in steady state.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

/// Keep the elements whose flag is `true`, preserving order.
pub fn pack<T: Clone + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    let mut out = Vec::new();
    pack_into(items, flags, &mut out);
    out
}

/// [`pack`] into a reused buffer: `out` is cleared and filled, keeping
/// its capacity. One fused parallel pass (filter and gather per chunk);
/// short inputs run inline on the caller.
pub fn pack_into<T: Clone + Send + Sync>(items: &[T], flags: &[bool], out: &mut Vec<T>) {
    assert_eq!(items.len(), flags.len(), "pack: length mismatch");
    out.clear();
    if items.len() <= SEQ_THRESHOLD || !rayon::should_parallelize(items.len()) {
        out.extend(
            items
                .iter()
                .zip(flags)
                .filter(|(_, &f)| f)
                .map(|(x, _)| x.clone()),
        );
        return;
    }
    let chunk = items.len().div_ceil(rayon::recommended_splits());
    // Per-chunk local packs, concatenated in chunk order (order preserving).
    let parts: Vec<Vec<T>> = items
        .par_chunks(chunk)
        .zip(flags.par_chunks(chunk))
        .map(|(is, fs)| {
            is.iter()
                .zip(fs)
                .filter(|(_, &f)| f)
                .map(|(x, _)| x.clone())
                .collect::<Vec<T>>()
        })
        .collect();
    out.reserve(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
}

/// Indices `i` with `flags[i] == true`, in increasing order.
pub fn pack_indices(flags: &[bool]) -> Vec<usize> {
    pack_indices_where(flags.len(), |i| flags[i])
}

/// Indices `0..n` satisfying `pred`, in increasing order, evaluated in
/// parallel. `pred` must be pure.
pub fn pack_indices_where<F>(n: usize, pred: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    let mut out = Vec::new();
    pack_indices_where_into(n, pred, &mut out);
    out
}

/// [`pack_indices_where`] into a reused buffer (cleared first, capacity
/// kept).
pub fn pack_indices_where_into<F>(n: usize, pred: F, out: &mut Vec<usize>)
where
    F: Fn(usize) -> bool + Sync,
{
    out.clear();
    if n <= SEQ_THRESHOLD || !rayon::should_parallelize(n) {
        out.extend((0..n).filter(|&i| pred(i)));
        return;
    }
    let nchunks = rayon::recommended_splits();
    let chunk = n.div_ceil(nchunks);
    let parts: Vec<Vec<usize>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            (lo..hi).filter(|&i| pred(i)).collect::<Vec<usize>>()
        })
        .collect();
    out.reserve(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_keeps_order() {
        let items: Vec<u32> = (0..10).collect();
        let flags: Vec<bool> = items.iter().map(|&x| x % 3 == 0).collect();
        assert_eq!(pack(&items, &flags), vec![0, 3, 6, 9]);
    }

    #[test]
    fn pack_empty_and_full() {
        let items: Vec<u32> = (0..100).collect();
        assert_eq!(pack(&items, &[false; 100]), Vec::<u32>::new());
        assert_eq!(pack(&items, &[true; 100]), items);
    }

    #[test]
    fn pack_large_parallel_path() {
        let items: Vec<u64> = (0..200_000).collect();
        let flags: Vec<bool> = items.iter().map(|&x| x % 7 == 0).collect();
        let got = rayon::cached_pool(4).install(|| pack(&items, &flags));
        let want: Vec<u64> = items.iter().copied().filter(|&x| x % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_into_reuses_capacity() {
        let items: Vec<u64> = (0..100_000).collect();
        let flags: Vec<bool> = items.iter().map(|&x| x % 2 == 0).collect();
        let mut out = Vec::new();
        pack_into(&items, &flags, &mut out);
        let want: Vec<u64> = items.iter().copied().filter(|&x| x % 2 == 0).collect();
        assert_eq!(out, want);
        let cap = out.capacity();
        // A second pack into the same buffer must not grow it.
        pack_into(&items, &flags, &mut out);
        assert_eq!(out, want);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn pack_indices_matches_filter() {
        let n = 100_000;
        let got = rayon::cached_pool(4).install(|| pack_indices_where(n, |i| i % 13 == 5));
        let want: Vec<usize> = (0..n).filter(|&i| i % 13 == 5).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_indices_into_matches_direct() {
        let mut out = vec![1, 2, 3]; // stale contents must be cleared
        pack_indices_where_into(10_000, |i| i % 4 == 1, &mut out);
        let want: Vec<usize> = (0..10_000).filter(|&i| i % 4 == 1).collect();
        assert_eq!(out, want);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_length_mismatch_panics() {
        pack(&[1, 2, 3], &[true]);
    }
}
