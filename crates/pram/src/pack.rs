//! Filter-and-pack (compaction).
//!
//! The paper's parallel Delaunay step "applies and filters on the InCircle
//! tests ... using processor allocation and compaction" (§4); Type 2
//! executors compact the surviving iterations of each prefix. `pack` is the
//! deterministic (exact, not approximate) version of that primitive: it
//! preserves input order, so parallel runs remain reproducible.

use rayon::prelude::*;

use crate::scan::exclusive_scan_inplace;
use crate::SEQ_THRESHOLD;

/// Keep the elements whose flag is `true`, preserving order.
pub fn pack<T: Clone + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), flags.len(), "pack: length mismatch");
    if items.len() <= SEQ_THRESHOLD {
        return items
            .iter()
            .zip(flags)
            .filter(|(_, &f)| f)
            .map(|(x, _)| x.clone())
            .collect();
    }
    let mut offsets: Vec<usize> = flags.par_iter().map(|&f| f as usize).collect();
    let total = exclusive_scan_inplace(&mut offsets);
    let chunk = items.len().div_ceil(rayon::recommended_splits());
    // Per-chunk local packs, concatenated in chunk order (order preserving).
    let mut result: Vec<T> = Vec::with_capacity(total);
    let parts: Vec<Vec<T>> = items
        .par_chunks(chunk)
        .zip(flags.par_chunks(chunk))
        .map(|(is, fs)| {
            is.iter()
                .zip(fs)
                .filter(|(_, &f)| f)
                .map(|(x, _)| x.clone())
                .collect::<Vec<T>>()
        })
        .collect();
    for p in parts {
        result.extend(p);
    }
    debug_assert_eq!(result.len(), total);
    result
}

/// Indices `i` with `flags[i] == true`, in increasing order.
pub fn pack_indices(flags: &[bool]) -> Vec<usize> {
    pack_indices_where(flags.len(), |i| flags[i])
}

/// Indices `0..n` satisfying `pred`, in increasing order, evaluated in
/// parallel. `pred` must be pure.
pub fn pack_indices_where<F>(n: usize, pred: F) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    if n <= SEQ_THRESHOLD {
        return (0..n).filter(|&i| pred(i)).collect();
    }
    let nchunks = rayon::recommended_splits();
    let chunk = n.div_ceil(nchunks);
    let parts: Vec<Vec<usize>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            (lo..hi).filter(|&i| pred(i)).collect::<Vec<usize>>()
        })
        .collect();
    let mut out = Vec::new();
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_keeps_order() {
        let items: Vec<u32> = (0..10).collect();
        let flags: Vec<bool> = items.iter().map(|&x| x % 3 == 0).collect();
        assert_eq!(pack(&items, &flags), vec![0, 3, 6, 9]);
    }

    #[test]
    fn pack_empty_and_full() {
        let items: Vec<u32> = (0..100).collect();
        assert_eq!(pack(&items, &[false; 100]), Vec::<u32>::new());
        assert_eq!(pack(&items, &[true; 100]), items);
    }

    #[test]
    fn pack_large_parallel_path() {
        let items: Vec<u64> = (0..200_000).collect();
        let flags: Vec<bool> = items.iter().map(|&x| x % 7 == 0).collect();
        let got = pack(&items, &flags);
        let want: Vec<u64> = items.iter().copied().filter(|&x| x % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_indices_matches_filter() {
        let n = 100_000;
        let got = pack_indices_where(n, |i| i % 13 == 5);
        let want: Vec<usize> = (0..n).filter(|&i| i % 13 == 5).collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_length_mismatch_panics() {
        pack(&[1, 2, 3], &[true]);
    }
}
