//! Priority-write cells.
//!
//! On the priority-write CRCW PRAM, when several processors write the same
//! location in one step, the one with the smallest id wins. The paper uses
//! this for the parallel BST sort (§3, Line 7 of Algorithm 3) and for the
//! SCC combine step (§6.2). On shared-memory hardware the equivalent is an
//! atomic minimum: all writers race with `fetch_min`-style CAS loops, and
//! after a synchronisation point the surviving value is exactly the one the
//! PRAM would have kept.

use std::sync::atomic::{AtomicU64, Ordering};

/// A cell holding the minimum of all values written to it.
///
/// `u64::MAX` is the "empty" sentinel (no write yet). Values written must be
/// `< u64::MAX`.
#[derive(Debug)]
pub struct PriorityCell(AtomicU64);

impl Default for PriorityCell {
    fn default() -> Self {
        Self::new()
    }
}

impl PriorityCell {
    /// An empty cell.
    pub fn new() -> Self {
        PriorityCell(AtomicU64::new(u64::MAX))
    }

    /// Priority-write `value`: the cell keeps the minimum over all writes.
    /// Returns `true` if this write became (or already equalled) the current
    /// minimum.
    #[inline]
    pub fn write_min(&self, value: u64) -> bool {
        debug_assert!(value < u64::MAX, "u64::MAX is the empty sentinel");
        self.0.fetch_min(value, Ordering::AcqRel) >= value
    }

    /// Current minimum, or `None` if never written.
    #[inline]
    pub fn get(&self) -> Option<u64> {
        match self.0.load(Ordering::Acquire) {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Reset to empty (only safe between parallel phases).
    #[inline]
    pub fn reset(&self) {
        self.0.store(u64::MAX, Ordering::Release);
    }
}

/// An array of priority-write slots indexed by location, used as a
/// "min-id per vertex" board (SCC reachability combine) or "min candidate
/// per tree slot" (BST sort rounds).
#[derive(Debug)]
pub struct MinIndex {
    slots: Vec<AtomicU64>,
}

impl MinIndex {
    /// `n` empty slots.
    pub fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || AtomicU64::new(u64::MAX));
        MinIndex { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Priority-write `value` into `slot`; the slot keeps the minimum.
    #[inline]
    pub fn write_min(&self, slot: usize, value: u64) {
        debug_assert!(value < u64::MAX);
        self.slots[slot].fetch_min(value, Ordering::AcqRel);
    }

    /// Read the winner of `slot` (`None` if untouched).
    #[inline]
    pub fn get(&self, slot: usize) -> Option<u64> {
        match self.slots[slot].load(Ordering::Acquire) {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Reset every slot to empty (sequential; call between phases).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s.get_mut() = u64::MAX;
        }
    }

    /// Reset a single slot.
    #[inline]
    pub fn reset(&self, slot: usize) {
        self.slots[slot].store(u64::MAX, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn cell_keeps_minimum() {
        let c = PriorityCell::new();
        assert_eq!(c.get(), None);
        assert!(c.write_min(10));
        assert!(!c.write_min(12));
        assert!(c.write_min(3));
        assert_eq!(c.get(), Some(3));
    }

    #[test]
    fn cell_concurrent_writers_agree_on_min() {
        let c = PriorityCell::new();
        (0..100_000u64).into_par_iter().for_each(|i| {
            c.write_min((i * 7919) % 99_991 + 1);
        });
        // Min of (i*7919)%99991+1 over i in 0..100000: 1 occurs when i*7919 ≡ 0.
        assert_eq!(c.get(), Some(1));
    }

    #[test]
    fn board_priority_writes() {
        let b = MinIndex::new(16);
        (0..10_000u64).into_par_iter().for_each(|i| {
            b.write_min((i % 16) as usize, i / 16 + 1);
        });
        for s in 0..16 {
            assert_eq!(b.get(s), Some(1));
        }
    }

    #[test]
    fn board_reset_and_clear() {
        let mut b = MinIndex::new(4);
        b.write_min(2, 5);
        b.reset(2);
        assert_eq!(b.get(2), None);
        b.write_min(0, 1);
        b.clear();
        assert_eq!(b.get(0), None);
    }

    #[test]
    fn tie_semantics_match_pram() {
        // Many writers of the same minimum: outcome equals that minimum and
        // at least one writer observes success.
        let c = PriorityCell::new();
        let wins: usize = (0..1000u64)
            .into_par_iter()
            .map(|_| c.write_min(42) as usize)
            .sum();
        assert!(wins >= 1);
        assert_eq!(c.get(), Some(42));
    }
}
