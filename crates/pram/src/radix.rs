//! Stable parallel LSD radix sort on `u64` keys.
//!
//! The paper's combine steps need integer sorting (semisort groups by hashed
//! key; LE-lists sort contributions per target by source index). We use the
//! classic stable least-significant-digit scheme. Each pass:
//!
//! 1. every block counting-sorts its chunk locally by the current 8-bit
//!    digit (stable within the block),
//! 2. the global output is the column-major concatenation — for each digit
//!    `d`, block 0's `d`-bucket, then block 1's, ... — which preserves
//!    stability across blocks,
//! 3. the concatenation itself is a parallel order-preserving flat-map.
//!
//! Work O(8 · n), depth O(log n) per pass. Entirely safe code: the only
//! "scatter" is a local write into a block-owned buffer.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

const DIGIT_BITS: usize = 8;
const RADIX: usize = 1 << DIGIT_BITS;

/// Sort items by a `u64` key, stably.
pub fn radix_sort_by_key<T, F>(items: &mut Vec<T>, key: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    if n <= SEQ_THRESHOLD {
        items.sort_by_key(|x| key(x));
        return;
    }
    // Skip passes above the highest set bit of any key (common case: small keys).
    let max_key = items.par_iter().map(&key).reduce(|| 0, u64::max);
    let passes = if max_key == 0 {
        1
    } else {
        (64 - max_key.leading_zeros() as usize).div_ceil(DIGIT_BITS)
    };

    let nblocks = rayon::recommended_splits();
    let block = n.div_ceil(nblocks);
    let mut src: Vec<T> = std::mem::take(items);

    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        let digit = |x: &T| ((key(x) >> shift) as usize) & (RADIX - 1);

        // Per-block local stable counting sort: (sorted buffer, bucket starts).
        let locals: Vec<(Vec<T>, Vec<u32>)> = src
            .par_chunks(block)
            .map(|chunk| {
                let mut hist = [0u32; RADIX];
                for x in chunk {
                    hist[digit(x)] += 1;
                }
                let mut starts = vec![0u32; RADIX + 1];
                for d in 0..RADIX {
                    starts[d + 1] = starts[d] + hist[d];
                }
                let mut cursor: Vec<u32> = starts[..RADIX].to_vec();
                // Pre-fill then overwrite: keeps the placement loop safe.
                let mut buf: Vec<T> = chunk.to_vec();
                for x in chunk {
                    let d = digit(x);
                    buf[cursor[d] as usize] = x.clone();
                    cursor[d] += 1;
                }
                (buf, starts)
            })
            .collect();

        // Column-major concatenation; rayon's collect preserves order.
        let nb = locals.len();
        src = (0..RADIX * nb)
            .into_par_iter()
            .flat_map_iter(|seg| {
                let (d, b) = (seg / nb, seg % nb);
                let (buf, starts) = &locals[b];
                buf[starts[d] as usize..starts[d + 1] as usize]
                    .iter()
                    .cloned()
            })
            .collect();
        debug_assert_eq!(src.len(), n);
    }
    *items = src;
}

/// Sort a `u64` vector in place (stable, parallel).
pub fn radix_sort_u64(items: &mut Vec<u64>) {
    radix_sort_by_key(items, |&x| x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small() {
        let mut v = vec![5u64, 3, 9, 1, 1, 0];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_large_random() {
        let mut v: Vec<u64> = (0..250_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn stability_preserved() {
        // Pairs (key, original index): after sorting by key, equal keys must
        // keep index order.
        let n = 100_000usize;
        let mut v: Vec<(u64, usize)> = (0..n).map(|i| ((i % 16) as u64, i)).collect();
        radix_sort_by_key(&mut v, |&(k, _)| k);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn handles_max_values() {
        let mut v = vec![u64::MAX, 0, u64::MAX - 1, 1];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![0, 1, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u64> = vec![];
        radix_sort_u64(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn sorts_large_small_keyspace() {
        // Exercises the early-pass-exit path (max key fits one digit).
        let mut v: Vec<u64> = (0..200_000u64).map(|i| i % 7).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }
}
