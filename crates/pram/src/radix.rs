//! Stable parallel LSD radix sort on `u64` keys.
//!
//! The paper's combine steps need integer sorting (semisort groups by hashed
//! key; LE-lists sort contributions per target by source index). We use the
//! classic stable least-significant-digit scheme. Each pass:
//!
//! 1. every block counts its chunk's 8-bit-digit histogram (one parallel
//!    pass, histograms land in a reused flat buffer),
//! 2. a small sequential scan over the `RADIX × blocks` histogram matrix
//!    (digit-major, block-minor) yields every *(digit, block)* segment's
//!    start in the output,
//! 3. every block counting-sorts its chunk **directly into its disjoint
//!    output segments** (one parallel pass; each block owns one `&mut`
//!    sub-slice per digit, so the scatter is safe-Rust disjoint writes).
//!
//! The two data buffers ping-pong between passes, so a whole sort touches
//! exactly two `n`-sized allocations (the input itself and one auxiliary
//! clone) instead of the former two *per pass* (per-block local sort
//! buffers plus a fresh output vector); the histogram/offset arrays come
//! from the scratch pool. Digit-major segment order, block order within a
//! digit, and input order within a block make every pass stable — the
//! same placement the old concatenation produced.
//!
//! Work O(8 · n), depth O(log n) per pass. Entirely safe code: the only
//! "scatter" is a write through a block-owned `&mut` segment.

use rayon::prelude::*;

use crate::SEQ_THRESHOLD;

const DIGIT_BITS: usize = 8;
const RADIX: usize = 1 << DIGIT_BITS;

/// Sort items by a `u64` key, stably.
pub fn radix_sort_by_key<T, F>(items: &mut Vec<T>, key: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    if n <= SEQ_THRESHOLD {
        items.sort_by_key(|x| key(x));
        return;
    }
    // Skip passes above the highest set bit of any key (common case: small keys).
    let max_key = items.par_iter().map(&key).reduce(|| 0, u64::max);
    let passes = if max_key == 0 {
        1
    } else {
        (64 - max_key.leading_zeros() as usize).div_ceil(DIGIT_BITS)
    };

    let nblocks = rayon::recommended_splits();
    let block = n.div_ceil(nblocks);
    let nb = n.div_ceil(block); // actual block count (≤ nblocks)

    // Ping-pong buffers: `src` holds the current ordering, `dst` is fully
    // overwritten by the scatter (its initial contents are irrelevant —
    // the clone is just safe-Rust initialisation).
    let mut src: Vec<T> = std::mem::take(items);
    let mut dst: Vec<T> = src.clone();
    // hist[b * RADIX + d] = block b's count of digit d (reused across
    // passes and, via the scratch pool, across calls).
    let mut hist: Vec<u32> = crate::scratch::take_vec();
    hist.resize(nb * RADIX, 0);

    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        let digit = |x: &T| ((key(x) >> shift) as usize) & (RADIX - 1);

        // 1. Per-block digit histograms (one region; rows align with chunks).
        hist.fill(0);
        hist.par_chunks_mut(RADIX)
            .zip(src.par_chunks(block))
            .for_each(|(h, chunk)| {
                for x in chunk {
                    h[digit(x)] += 1;
                }
            });

        // 2. Segment starts, digit-major then block-minor: segment (d, b)
        // holds block b's digit-d elements, so this order is exactly the
        // stable global placement.
        // 3. Carve `dst` into those segments and group them per block.
        let mut groups: Vec<Vec<&mut [T]>> = (0..nb).map(|_| Vec::with_capacity(RADIX)).collect();
        {
            let mut rest: &mut [T] = &mut dst;
            for d in 0..RADIX {
                for (b, group) in groups.iter_mut().enumerate() {
                    let len = hist[b * RADIX + d] as usize;
                    let (seg, tail) = rest.split_at_mut(len);
                    group.push(seg);
                    rest = tail;
                }
            }
            debug_assert!(rest.is_empty(), "segments must tile the output");
        }

        // 4. Scatter: each block counting-sorts its chunk straight into
        // its RADIX owned segments (group index = digit), one region
        // (weighted: each item is a whole block of work).
        let pairs: Vec<(&[T], Vec<&mut [T]>)> = src.chunks(block).zip(groups).collect();
        ParIter::from_vec(pairs)
            .with_weight(block)
            .for_each(|(chunk, mut segs)| {
                let mut cursors = [0u32; RADIX];
                for x in chunk {
                    let d = digit(x);
                    segs[d][cursors[d] as usize] = x.clone();
                    cursors[d] += 1;
                }
            });

        std::mem::swap(&mut src, &mut dst);
    }
    crate::scratch::put_vec(hist);
    *items = src;
}

/// Sort a `u64` vector in place (stable, parallel).
pub fn radix_sort_u64(items: &mut Vec<u64>) {
    radix_sort_by_key(items, |&x| x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small() {
        let mut v = vec![5u64, 3, 9, 1, 1, 0];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_large_random() {
        let mut v: Vec<u64> = (0..250_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17))
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn sorts_large_random_under_installed_pool() {
        let mut v: Vec<u64> = (0..250_000u64)
            .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D).rotate_left(31))
            .collect();
        let mut want = v.clone();
        want.sort_unstable();
        rayon::cached_pool(4).install(|| radix_sort_u64(&mut v));
        assert_eq!(v, want);
    }

    #[test]
    fn stability_preserved() {
        // Pairs (key, original index): after sorting by key, equal keys must
        // keep index order.
        let n = 100_000usize;
        let mut v: Vec<(u64, usize)> = (0..n).map(|i| ((i % 16) as u64, i)).collect();
        radix_sort_by_key(&mut v, |&(k, _)| k);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn stability_preserved_under_installed_pool() {
        let n = 100_000usize;
        let mut v: Vec<(u64, usize)> = (0..n).map(|i| ((i % 5) as u64, i)).collect();
        rayon::cached_pool(4).install(|| radix_sort_by_key(&mut v, |&(k, _)| k));
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn handles_max_values() {
        let mut v = vec![u64::MAX, 0, u64::MAX - 1, 1];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![0, 1, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u64> = vec![];
        radix_sort_u64(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42u64];
        radix_sort_u64(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn sorts_large_small_keyspace() {
        // Exercises the early-pass-exit path (max key fits one digit).
        let mut v: Vec<u64> = (0..200_000u64).map(|i| i % 7).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }
}
