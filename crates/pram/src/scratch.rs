//! Reusable scratch buffers for round-based algorithms.
//!
//! The paper's executors proceed in `O(log n)` prefix-doubling rounds, so
//! the *constant factor* of a round — not the asymptotics — decides wall
//! clock. Allocating fresh `Vec`s every round (ready flags, survivor
//! lists, per-round outputs) makes the allocator a per-round cost. This
//! module is the cure: a **per-thread pool of typed, capacity-preserving
//! vectors**. [`take_vec`] hands out a cleared `Vec<T>` (reusing a
//! previously returned one when available, with whatever capacity it grew
//! to); [`put_vec`] clears a vector and shelves it for the next taker.
//!
//! Lifetime rules (see also the engine docs in `ri-core`):
//!
//! * A taken vector is **always empty** (`len == 0`); only its *capacity*
//!   carries over. Callers can never observe a previous round's contents,
//!   which is what keeps repeated runs byte-identical to fresh-state runs.
//! * The pool is **thread-local**: the round-orchestrating thread (which
//!   is where per-round buffers live) reuses across rounds *and* across
//!   runs; short-lived crew helper threads simply miss and fall back to
//!   plain allocation.
//! * At most [`MAX_POOLED_PER_TYPE`] vectors are shelved per element type;
//!   extra returns are dropped, bounding idle memory.
//!
//! The [`stats`] counters (hits / misses / returns) are what the engine
//! surfaces in its `RunReport` so benches can verify the reuse actually
//! happens.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Upper bound on shelved vectors per element type (per thread). Extra
/// [`put_vec`] calls drop their vector instead of pooling it.
pub const MAX_POOLED_PER_TYPE: usize = 16;

/// Upper bound on shelved *bytes* per element type (per thread): a shelf
/// also stops accepting once its retained capacities sum past this, so a
/// long-lived serving thread that once handled a giant burst cannot pin
/// worst-case buffers forever. Large enough to keep the full working set
/// of the default bench sizes warm.
pub const MAX_POOLED_BYTES_PER_TYPE: usize = 64 << 20;

/// Cumulative counters of one thread's scratch pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// [`take_vec`] calls served from the pool (an allocation avoided,
    /// modulo any later growth past the reused capacity).
    pub hits: u64,
    /// [`take_vec`] calls that found the shelf empty and allocated.
    pub misses: u64,
    /// [`put_vec`] calls that shelved their vector for reuse.
    pub returns: u64,
}

impl ScratchStats {
    /// Counter-wise difference `self - earlier` (for before/after
    /// measurement around a run).
    pub fn since(&self, earlier: &ScratchStats) -> ScratchStats {
        ScratchStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            returns: self.returns - earlier.returns,
        }
    }
}

#[derive(Default)]
struct Shelf {
    vecs: Vec<Box<dyn Any>>,
    /// Sum of the retained capacities, in bytes.
    bytes: usize,
}

#[derive(Default)]
struct Pool {
    shelves: HashMap<TypeId, Shelf>,
    stats: ScratchStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Take a cleared `Vec<T>` from this thread's pool (empty, but with the
/// capacity it had grown to when it was last [`put_vec`]-returned), or a
/// brand-new `Vec` if none is shelved.
pub fn take_vec<T: 'static>() -> Vec<T> {
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let shelved = pool
            .shelves
            .get_mut(&TypeId::of::<Vec<T>>())
            .and_then(|shelf| {
                let v = shelf.vecs.pop()?;
                let v = v
                    .downcast::<Vec<T>>()
                    .expect("shelf is keyed by the vector's TypeId");
                shelf.bytes -= v.capacity() * std::mem::size_of::<T>();
                Some(*v)
            });
        match shelved {
            Some(v) => {
                pool.stats.hits += 1;
                v
            }
            None => {
                pool.stats.misses += 1;
                Vec::new()
            }
        }
    })
}

/// Clear `v` and shelve it for a later [`take_vec`] of the same element
/// type. Dropped instead (still cleared) when the shelf is full — by
/// count ([`MAX_POOLED_PER_TYPE`]) or by retained bytes
/// ([`MAX_POOLED_BYTES_PER_TYPE`]).
pub fn put_vec<T: 'static>(mut v: Vec<T>) {
    v.clear();
    let bytes = v.capacity() * std::mem::size_of::<T>();
    if bytes == 0 {
        return; // nothing worth shelving
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let shelf = pool.shelves.entry(TypeId::of::<Vec<T>>()).or_default();
        if shelf.vecs.len() < MAX_POOLED_PER_TYPE
            && shelf.bytes.saturating_add(bytes) <= MAX_POOLED_BYTES_PER_TYPE
        {
            shelf.vecs.push(Box::new(v));
            shelf.bytes += bytes;
            pool.stats.returns += 1;
        }
    });
}

/// This thread's cumulative pool counters.
pub fn stats() -> ScratchStats {
    POOL.with(|pool| pool.borrow().stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        // Use a locally unique type so concurrently running tests in the
        // same thread cannot interfere with the shelf we observe.
        #[derive(Clone, Copy)]
        struct Marker(#[allow(dead_code)] u128);
        let mut v: Vec<Marker> = take_vec();
        v.reserve(1000);
        let cap = v.capacity();
        assert!(cap >= 1000);
        v.push(Marker(7));
        put_vec(v);
        let reused: Vec<Marker> = take_vec();
        assert!(reused.is_empty(), "taken vectors are always cleared");
        assert_eq!(reused.capacity(), cap, "capacity carries over");
    }

    #[test]
    fn distinct_types_have_distinct_shelves() {
        struct A(#[allow(dead_code)] [u64; 3]);
        struct B(#[allow(dead_code)] [u64; 3]);
        let mut a: Vec<A> = take_vec();
        a.reserve(64);
        put_vec(a);
        let b: Vec<B> = take_vec();
        assert_eq!(b.capacity(), 0, "B must not receive A's buffer");
        let a2: Vec<A> = take_vec();
        assert!(a2.capacity() >= 64, "A's buffer is still shelved for A");
    }

    #[test]
    fn stats_count_hits_and_misses() {
        struct Unique(#[allow(dead_code)] u8);
        let before = stats();
        let v: Vec<Unique> = take_vec(); // miss (nothing shelved yet)
        let mut v = v;
        v.reserve(8);
        put_vec(v); // return
        let _v2: Vec<Unique> = take_vec(); // hit
        let d = stats().since(&before);
        assert!(d.misses >= 1);
        assert!(d.returns >= 1);
        assert!(d.hits >= 1);
    }

    #[test]
    fn empty_vectors_are_not_shelved() {
        struct Zero(#[allow(dead_code)] u8);
        let before = stats();
        put_vec(Vec::<Zero>::new());
        let d = stats().since(&before);
        assert_eq!(d.returns, 0, "capacity-0 vectors are dropped, not pooled");
    }

    #[test]
    fn shelf_is_bounded_by_count() {
        struct Cap(#[allow(dead_code)] u64);
        for _ in 0..(2 * MAX_POOLED_PER_TYPE) {
            put_vec(Vec::<Cap>::with_capacity(4));
        }
        let shelved = POOL.with(|p| {
            p.borrow()
                .shelves
                .get(&TypeId::of::<Vec<Cap>>())
                .map_or(0, |s| s.vecs.len())
        });
        assert!(shelved <= MAX_POOLED_PER_TYPE);
    }

    #[test]
    fn shelf_is_bounded_by_bytes() {
        struct Big(#[allow(dead_code)] [u64; 128]); // 1 KiB per element
        let per_vec = MAX_POOLED_BYTES_PER_TYPE / (4 * std::mem::size_of::<Big>());
        for _ in 0..8 {
            put_vec(Vec::<Big>::with_capacity(per_vec));
        }
        let (count, bytes) = POOL.with(|p| {
            p.borrow()
                .shelves
                .get(&TypeId::of::<Vec<Big>>())
                .map_or((0, 0), |s| (s.vecs.len(), s.bytes))
        });
        assert!(bytes <= MAX_POOLED_BYTES_PER_TYPE, "bytes {bytes}");
        assert!(count < 8, "byte cap must reject some returns, kept {count}");
        assert!(count >= 1, "cap must still keep the first returns");
    }
}
