//! k-relaxed priority scheduling: the MultiQueue.
//!
//! A [`MultiQueue`] spreads its elements over `k` internal priority
//! queues and pops by **randomized two-choice**: sample two queues,
//! dequeue the smaller of their minima. Alistarh, Koval & Nadiradze
//! ("Efficiency Guarantees for Parallel Incremental Algorithms under
//! Relaxed Schedulers") prove that driving an incremental algorithm from
//! such a scheduler costs only O(k·poly-log) extra work over the exact
//! priority order: each pop returns an element whose rank among the
//! remaining elements is O(k) in expectation, because an element smaller
//! than the popped one must sit at (or above) the top of one of the
//! other `k - 1` queues.
//!
//! The structure is deliberately deterministic: all randomness (queue
//! choice on push, two-choice sampling on pop) comes from one seeded
//! xorshift stream, so a fixed `(k, seed)` fixes the entire pop order —
//! the engine's relaxed executors inherit reproducibility per
//! `RunConfig` seed, independent of pool width. Internally each queue is
//! mutex-wrapped and the counters are atomic, so `&self` access is safe
//! from concurrent workers too.
//!
//! Pop-order quality is self-measured: [`rank_inversions`]
//! (pops that returned a priority *below* the running maximum already
//! popped — the out-of-order events exact scheduling would never emit)
//! accumulate across the queue's lifetime; [`begin_epoch`] resets the
//! running maximum when a caller reuses one queue for independent
//! rounds. A `k = 1` MultiQueue degenerates to an exact priority queue
//! and reports zero inversions.
//!
//! [`rank_inversions`]: MultiQueue::rank_inversions
//! [`begin_epoch`]: MultiQueue::begin_epoch

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One queued element: priority, push sequence number (FIFO tiebreak),
/// payload. Ordered **inverted** on `(prio, seq)` so Rust's max-heap
/// `BinaryHeap` pops the minimum priority first; the payload never
/// participates in comparisons.
struct Entry<T> {
    prio: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the heap's max is the smallest (prio, seq).
        other
            .prio
            .cmp(&self.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A k-relaxed concurrent priority queue (see the module docs).
pub struct MultiQueue<T> {
    queues: Vec<Mutex<BinaryHeap<Entry<T>>>>,
    rng: Mutex<u64>,
    seq: AtomicU64,
    len: AtomicUsize,
    /// Largest priority popped since the last [`begin_epoch`].
    ///
    /// [`begin_epoch`]: MultiQueue::begin_epoch
    max_popped: AtomicU64,
    inversions: AtomicU64,
    pops: AtomicU64,
}

impl<T> MultiQueue<T> {
    /// A queue with relaxation `k` (clamped to at least 1) seeded for a
    /// deterministic pop order.
    pub fn new(k: usize, seed: u64) -> Self {
        let k = k.max(1);
        // SplitMix64 finalizer: spreads adjacent seeds over the state
        // space; `| 1` keeps the xorshift state nonzero.
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        s = (s ^ (s >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        MultiQueue {
            queues: (0..k).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            rng: Mutex::new((s ^ (s >> 31)) | 1),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            max_popped: AtomicU64::new(0),
            inversions: AtomicU64::new(0),
            pops: AtomicU64::new(0),
        }
    }

    /// The relaxation factor `k` (number of internal queues).
    pub fn relaxation(&self) -> usize {
        self.queues.len()
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops that returned a priority strictly below the running maximum
    /// of previously popped priorities — the out-of-order events an
    /// exact scheduler would never emit. Always 0 at `k = 1`.
    pub fn rank_inversions(&self) -> u64 {
        self.inversions.load(Ordering::Acquire)
    }

    /// Total successful pops over the queue's lifetime.
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Acquire)
    }

    /// Reset the running popped-priority maximum (not the totals). Call
    /// before refilling a reused queue with a fresh, independent batch
    /// whose priorities restart below previously popped ones — otherwise
    /// every pop of the new batch would count as an inversion.
    pub fn begin_epoch(&self) {
        self.max_popped.store(0, Ordering::Release);
    }

    fn next_rand(&self) -> u64 {
        let mut s = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    /// Queue `item` under `prio` on a randomly chosen internal queue.
    pub fn push(&self, prio: u64, item: T) {
        let q = if self.queues.len() == 1 {
            0
        } else {
            (self.next_rand() % self.queues.len() as u64) as usize
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.queues[q]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Entry { prio, seq, item });
        self.len.fetch_add(1, Ordering::AcqRel);
    }

    /// Pop by randomized two-choice: sample two queues, dequeue the
    /// smaller of their minima; scan every queue before conceding
    /// emptiness (two empty samples must not report an empty MultiQueue).
    /// Returns the element's priority alongside it.
    pub fn pop(&self) -> Option<(u64, T)> {
        let k = self.queues.len();
        let (a, b) = if k == 1 {
            (0, 0)
        } else {
            let r = self.next_rand();
            ((r % k as u64) as usize, ((r >> 32) % k as u64) as usize)
        };
        let peek = |q: usize| -> Option<(u64, u64)> {
            self.queues[q]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .peek()
                .map(|e| (e.prio, e.seq))
        };
        let choice = match (peek(a), peek(b)) {
            (Some(pa), Some(pb)) => Some(if pa <= pb { a } else { b }),
            (Some(_), None) => Some(a),
            (None, Some(_)) => Some(b),
            (None, None) => {
                // Both samples empty: fall back to a full scan for the
                // globally smallest top.
                let mut best: Option<(u64, u64, usize)> = None;
                for q in 0..k {
                    if let Some((p, s)) = peek(q) {
                        if best.map(|(bp, bs, _)| (p, s) < (bp, bs)).unwrap_or(true) {
                            best = Some((p, s, q));
                        }
                    }
                }
                best.map(|(_, _, q)| q)
            }
        };
        let q = choice?;
        let entry = self.queues[q]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()?;
        self.len.fetch_sub(1, Ordering::AcqRel);
        self.pops.fetch_add(1, Ordering::AcqRel);
        let prev_max = self.max_popped.fetch_max(entry.prio, Ordering::AcqRel);
        if entry.prio < prev_max {
            self.inversions.fetch_add(1, Ordering::AcqRel);
        }
        Some((entry.prio, entry.item))
    }

    /// Pop up to `max` elements into `out` (appended in pop order).
    /// Returns how many were popped.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<(u64, T)>) -> usize {
        let mut popped = 0usize;
        while popped < max {
            match self.pop() {
                Some(pair) => {
                    out.push(pair);
                    popped += 1;
                }
                None => break,
            }
        }
        popped
    }
}

impl<T> std::fmt::Debug for MultiQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueue")
            .field("relaxation", &self.relaxation())
            .field("len", &self.len())
            .field("pops", &self.pops())
            .field("rank_inversions", &self.rank_inversions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_permutation;

    #[test]
    fn k1_is_an_exact_priority_queue() {
        let mq = MultiQueue::new(1, 7);
        for &p in &random_permutation(512, 3) {
            mq.push(p as u64, p);
        }
        let mut prev = None;
        while let Some((prio, item)) = mq.pop() {
            assert_eq!(prio, item as u64);
            if let Some(prev) = prev {
                assert!(prio > prev, "k=1 must pop in exact priority order");
            }
            prev = Some(prio);
        }
        assert_eq!(mq.rank_inversions(), 0);
        assert_eq!(mq.pops(), 512);
        assert!(mq.is_empty());
    }

    #[test]
    fn zero_relaxation_clamps_to_one() {
        let mq = MultiQueue::new(0, 1);
        assert_eq!(mq.relaxation(), 1);
        mq.push(5, "x");
        assert_eq!(mq.pop(), Some((5, "x")));
    }

    #[test]
    fn empty_pops_are_none_and_len_tracks() {
        let mq: MultiQueue<u32> = MultiQueue::new(4, 0);
        assert!(mq.pop().is_none());
        assert!(mq.is_empty());
        mq.push(2, 20);
        mq.push(1, 10);
        assert_eq!(mq.len(), 2);
        let mut out = Vec::new();
        assert_eq!(mq.pop_batch(10, &mut out), 2);
        assert!(mq.pop().is_none());
        // Refill after drain works (queues are reusable).
        mq.push(3, 30);
        assert_eq!(mq.pop(), Some((3, 30)));
    }

    #[test]
    fn two_empty_samples_still_find_a_buried_element() {
        // With many queues and one element, random two-choice usually
        // samples two empty queues; the full-scan fallback must find the
        // element every time.
        let mq = MultiQueue::new(64, 9);
        for round in 0..100u64 {
            mq.push(round, round);
            assert_eq!(mq.pop(), Some((round, round)), "lost at round {round}");
        }
    }

    #[test]
    fn pop_order_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mq = MultiQueue::new(8, seed);
            for &p in &random_permutation(256, 1) {
                mq.push(p as u64, ());
            }
            let mut order = Vec::new();
            while let Some((p, ())) = mq.pop() {
                order.push(p);
            }
            order
        };
        assert_eq!(run(5), run(5), "same seed, same pop order");
        assert_ne!(run(5), run(6), "different seeds relax differently");
    }

    #[test]
    fn rank_error_stays_small_at_modest_relaxation() {
        // The O(k) rank bound, measured: at every pop, count how many
        // remaining elements have a smaller priority. Deterministic
        // (seeded), so the asserted ceiling cannot flake.
        for seed in 0..3u64 {
            let k = 4;
            let mq = MultiQueue::new(k, seed);
            let n = 2048usize;
            let mut remaining = std::collections::BTreeSet::new();
            for &p in &random_permutation(n, seed + 10) {
                mq.push(p as u64, ());
                remaining.insert(p as u64);
            }
            let mut max_rank = 0usize;
            while let Some((p, ())) = mq.pop() {
                let rank = remaining.range(..p).count();
                max_rank = max_rank.max(rank);
                remaining.remove(&p);
            }
            assert!(
                max_rank <= 16 * k,
                "seed {seed}: max pop rank {max_rank} far above O(k={k})"
            );
        }
    }

    #[test]
    fn inversions_count_out_of_order_pops_and_epochs_reset() {
        let mq = MultiQueue::new(16, 2);
        for &p in &random_permutation(1024, 4) {
            mq.push(p as u64, ());
        }
        while mq.pop().is_some() {}
        let first = mq.rank_inversions();
        assert!(first > 0, "k=16 over 1024 elements must relax somewhere");
        assert!(first <= mq.pops());
        // Reusing the queue for a fresh batch whose priorities restart:
        // without an epoch reset every pop would count as an inversion.
        mq.begin_epoch();
        for p in 0..64u64 {
            mq.push(p, ());
        }
        let mut expected = 0u64;
        let mut max = 0u64;
        while let Some((p, ())) = mq.pop() {
            if p < max {
                expected += 1;
            } else {
                max = p;
            }
        }
        let second = mq.rank_inversions() - first;
        assert_eq!(second, expected, "epoch counts only its own batch");
    }
}
