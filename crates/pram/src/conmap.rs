//! A concurrent fixed-capacity hash map with **two value slots per key**.
//!
//! This is exactly the structure the parallel Delaunay algorithm needs
//! (§4): *"a hashmap that maps faces to their up to two neighboring
//! triangles."* Keys are inserted with CAS linear probing (never removed
//! mid-phase); each key owns two value slots filled/replaced with CAS.
//! Concurrent inserts of the same face from two adjacent triangles land in
//! the two slots in either order — the algorithm never cares which side is
//! "first".
//!
//! Capacity is fixed during a parallel phase; [`ConcurrentPairMap::grow`]
//! rebuilds into a larger table between rounds (rounds are synchronisation
//! points in all our executors).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::hash::hash_u64;

const KEY_EMPTY: u64 = 0; // keys stored as key+1, so 0 means vacant
const VAL_EMPTY: u64 = u64::MAX;

/// The up-to-two values currently registered under a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairSlots {
    /// First slot (if filled).
    pub a: Option<u64>,
    /// Second slot (if filled).
    pub b: Option<u64>,
}

impl PairSlots {
    /// Both slots filled?
    pub fn is_full(&self) -> bool {
        self.a.is_some() && self.b.is_some()
    }

    /// Iterate over the filled values.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.a.into_iter().chain(self.b)
    }

    /// Given one of the two values, the other one (if present).
    pub fn other(&self, v: u64) -> Option<u64> {
        match (self.a, self.b) {
            (Some(x), o) if x == v => o,
            (o, Some(y)) if y == v => o,
            _ => None,
        }
    }
}

/// Concurrent hash map `u64 key -> (up to two u64 values)`.
pub struct ConcurrentPairMap {
    keys: Vec<AtomicU64>,
    vals: Vec<[AtomicU64; 2]>,
    mask: usize,
    occupied: AtomicUsize,
}

impl ConcurrentPairMap {
    /// Create a map able to hold `capacity` keys comfortably (the table is
    /// sized to the next power of two ≥ 2·capacity to keep probes short).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (2 * capacity.max(8)).next_power_of_two();
        let mut keys = Vec::with_capacity(slots);
        keys.resize_with(slots, || AtomicU64::new(KEY_EMPTY));
        let mut vals = Vec::with_capacity(slots);
        vals.resize_with(slots, || {
            [AtomicU64::new(VAL_EMPTY), AtomicU64::new(VAL_EMPTY)]
        });
        ConcurrentPairMap {
            keys,
            vals,
            mask: slots - 1,
            occupied: AtomicUsize::new(0),
        }
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.occupied.load(Ordering::Acquire)
    }

    /// True if no key was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table slot count (for load-factor decisions).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// True when the caller should [`grow`](Self::grow) before the next
    /// parallel phase (load factor above 1/2).
    pub fn should_grow(&self) -> bool {
        2 * self.len() >= self.slots()
    }

    fn probe_start(&self, key: u64) -> usize {
        (hash_u64(key) as usize) & self.mask
    }

    fn find_or_claim(&self, key: u64) -> usize {
        assert!(key != u64::MAX, "u64::MAX key is reserved");
        let stored = key.wrapping_add(1);
        let mut i = self.probe_start(key);
        loop {
            let cur = self.keys[i].load(Ordering::Acquire);
            if cur == stored {
                return i;
            }
            if cur == KEY_EMPTY {
                match self.keys[i].compare_exchange(
                    KEY_EMPTY,
                    stored,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        let used = self.occupied.fetch_add(1, Ordering::AcqRel) + 1;
                        assert!(
                            used * 10 <= self.slots() * 9,
                            "ConcurrentPairMap over 90% full: grow between rounds"
                        );
                        return i;
                    }
                    Err(now) if now == stored => return i,
                    Err(_) => { /* someone claimed a different key; keep probing */ }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    fn find(&self, key: u64) -> Option<usize> {
        let stored = key.wrapping_add(1);
        let mut i = self.probe_start(key);
        loop {
            match self.keys[i].load(Ordering::Acquire) {
                c if c == stored => return Some(i),
                KEY_EMPTY => return None,
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Register `value` under `key`, filling the first free slot.
    ///
    /// Panics if both slots are already filled with *different* values — in
    /// the Delaunay use-case a face can only ever be claimed by two
    /// triangles, so a third insert is a logic error worth failing loudly on.
    pub fn insert(&self, key: u64, value: u64) {
        debug_assert!(value != VAL_EMPTY, "u64::MAX value is reserved");
        let idx = self.find_or_claim(key);
        for slot in &self.vals[idx] {
            match slot.compare_exchange(VAL_EMPTY, value, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(existing) if existing == value => return,
                Err(_) => { /* slot taken by the other side; try next */ }
            }
        }
        panic!("ConcurrentPairMap: third distinct value inserted for key {key}");
    }

    /// Read the (up to two) values under `key`.
    pub fn get(&self, key: u64) -> PairSlots {
        match self.find(key) {
            None => PairSlots::default(),
            Some(idx) => {
                let read = |s: &AtomicU64| match s.load(Ordering::Acquire) {
                    VAL_EMPTY => None,
                    v => Some(v),
                };
                PairSlots {
                    a: read(&self.vals[idx][0]),
                    b: read(&self.vals[idx][1]),
                }
            }
        }
    }

    /// Atomically replace value `old` with `new` under `key`. Returns
    /// whether a slot holding `old` was found and swapped.
    pub fn replace(&self, key: u64, old: u64, new: u64) -> bool {
        if let Some(idx) = self.find(key) {
            for slot in &self.vals[idx] {
                if slot
                    .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return true;
                }
            }
        }
        false
    }

    /// Snapshot all `(key, slots)` entries (sequential; call between phases).
    pub fn entries(&self) -> Vec<(u64, PairSlots)> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.keys.len() {
            let k = self.keys[i].load(Ordering::Acquire);
            if k != KEY_EMPTY {
                let read = |s: &AtomicU64| match s.load(Ordering::Acquire) {
                    VAL_EMPTY => None,
                    v => Some(v),
                };
                out.push((
                    k.wrapping_sub(1),
                    PairSlots {
                        a: read(&self.vals[i][0]),
                        b: read(&self.vals[i][1]),
                    },
                ));
            }
        }
        out
    }

    /// Rebuild into a table with twice the slots (call between phases; takes
    /// `&mut self` so no concurrent access can exist).
    pub fn grow(&mut self) {
        let bigger = ConcurrentPairMap::with_capacity(self.slots());
        for (k, slots) in self.entries() {
            for v in slots.iter() {
                bigger.insert(k, v);
            }
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn insert_get_two_sides() {
        let m = ConcurrentPairMap::with_capacity(16);
        m.insert(42, 1);
        m.insert(42, 2);
        let s = m.get(42);
        assert!(s.is_full());
        let mut vs: Vec<u64> = s.iter().collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![1, 2]);
        assert_eq!(s.other(1), Some(2));
        assert_eq!(s.other(2), Some(1));
        assert_eq!(s.other(3), None);
    }

    #[test]
    fn missing_key_is_empty() {
        let m = ConcurrentPairMap::with_capacity(16);
        assert_eq!(m.get(7), PairSlots::default());
    }

    #[test]
    fn replace_swaps_matching_slot() {
        let m = ConcurrentPairMap::with_capacity(16);
        m.insert(5, 10);
        m.insert(5, 20);
        assert!(m.replace(5, 10, 30));
        assert!(!m.replace(5, 10, 40)); // 10 already gone
        let mut vs: Vec<u64> = m.get(5).iter().collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![20, 30]);
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let m = ConcurrentPairMap::with_capacity(100_000);
        (0..100_000u64).into_par_iter().for_each(|k| {
            m.insert(k, k * 2);
        });
        assert_eq!(m.len(), 100_000);
        for k in (0..100_000u64).step_by(997) {
            assert_eq!(m.get(k).a, Some(k * 2));
        }
    }

    #[test]
    fn concurrent_pair_inserts_same_key() {
        let m = ConcurrentPairMap::with_capacity(10_000);
        // Two writers per key racing for the two slots.
        (0..20_000u64).into_par_iter().for_each(|i| {
            let key = i / 2;
            m.insert(key, i + 1);
        });
        for key in 0..10_000u64 {
            let s = m.get(key);
            let mut vs: Vec<u64> = s.iter().collect();
            vs.sort_unstable();
            assert_eq!(vs, vec![2 * key + 1, 2 * key + 2]);
        }
    }

    #[test]
    fn grow_preserves_entries() {
        let mut m = ConcurrentPairMap::with_capacity(8);
        for k in 0..8u64 {
            m.insert(k, k + 100);
        }
        m.grow();
        for k in 0..8u64 {
            assert_eq!(m.get(k).a, Some(k + 100));
        }
    }

    #[test]
    #[should_panic(expected = "third distinct value")]
    fn third_value_panics() {
        let m = ConcurrentPairMap::with_capacity(8);
        m.insert(1, 10);
        m.insert(1, 20);
        m.insert(1, 30);
    }

    #[test]
    fn zero_key_supported() {
        let m = ConcurrentPairMap::with_capacity(8);
        m.insert(0, 9);
        assert_eq!(m.get(0).a, Some(9));
    }
}
