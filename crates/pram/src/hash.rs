//! Fast non-cryptographic hashing.
//!
//! The paper's algorithms use hash tables as constant-time dictionaries
//! (face maps in §4, grid cells in §5.2) and hashing to spread keys for
//! semisort (§6). HashDoS resistance is irrelevant here, so we use the
//! FxHash mixing function (a multiply-and-rotate scheme originating in
//! Firefox and used by rustc) implemented from scratch.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Mix a single `u64` into a well-distributed `u64`.
///
/// This is the finalizer used throughout the crate for hashing integer keys
/// (cell coordinates, face ids, vertex ids). It is bijective, so distinct
/// keys never collide at this stage; collisions only arise from table
/// reduction.
#[inline]
pub fn hash_u64(mut x: u64) -> u64 {
    // splitmix64 finalizer: bijective, passes statistical tests, 3 multiplies.
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combine two hashed words (for composite keys such as directed edges).
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash_u64(a ^ b.rotate_left(32).wrapping_mul(SEED))
}

/// An FxHash-style streaming hasher.
///
/// Drop-in replacement for the default SipHash hasher via
/// [`FxBuildHasher`]; used wherever a `HashMap`/`HashSet` appears on a hot
/// path.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The Fx mixing step alone distributes low bits poorly; run the
        // splitmix finalizer so HashMap's 7-bit control bytes stay useful.
        hash_u64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; use as
/// `HashMap::with_hasher(FxBuildHasher::default())`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hash_u64_is_bijective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash_u64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_u64_spreads_low_bits() {
        // Sequential keys must not map to sequential buckets.
        let mut buckets = [0usize; 16];
        for i in 0..16_000u64 {
            buckets[(hash_u64(i) & 15) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }

    #[test]
    fn fx_hasher_distinguishes_field_order() {
        let bh = FxBuildHasher::default();
        let h = |a: u64, b: u64| bh.hash_one((a, b));
        assert_ne!(h(1, 2), h(2, 1));
    }

    #[test]
    fn hash_combine_is_order_sensitive() {
        assert_ne!(hash_combine(3, 9), hash_combine(9, 3));
    }

    #[test]
    fn fx_hashmap_basic_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * i)));
        }
    }
}
