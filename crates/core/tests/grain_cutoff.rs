//! Adaptive grain control: rounds below the engine's sequential cutoff
//! must execute inline on the caller — no crew regions, no helper-thread
//! spawns — while rounds above it take the parallel path. The counters
//! here are per-calling-thread (see `rayon::crew_regions` /
//! `rayon::helper_threads_spawned`), so concurrently running tests cannot
//! interfere.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ri_core::engine::{execute_type1, execute_type2, execute_type3, grain, RunConfig};
use ri_core::{Type1Algorithm, Type2Algorithm, Type3Algorithm};

/// Counter snapshot on the calling thread.
fn counters() -> (usize, usize) {
    (rayon::crew_regions(), rayon::helper_threads_spawned())
}

/// All-independent Type 1 toy: one round of `n` iterations.
struct Independent {
    done: Vec<AtomicBool>,
}

impl Independent {
    fn new(n: usize) -> Self {
        Independent {
            done: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

impl Type1Algorithm for Independent {
    fn len(&self) -> usize {
        self.done.len()
    }
    fn ready(&self, _k: usize) -> bool {
        true
    }
    fn run(&mut self, k: usize) {
        self.done[k].store(true, Ordering::Relaxed);
    }
}

/// Type 2 toy: only iteration 0 is special, so every prefix is scanned
/// end to end in one sub-round.
struct OneSpecial {
    n: usize,
    seen: AtomicU64,
}

impl Type2Algorithm for OneSpecial {
    fn len(&self) -> usize {
        self.n
    }
    fn is_special(&self, k: usize) -> bool {
        self.seen.fetch_add(1, Ordering::Relaxed);
        k == 0
    }
    fn run_regular(&mut self, _k: usize) {}
    fn run_special(&mut self, _k: usize) {}
}

/// Type 3 toy: prefix minimum (order-insensitive combine).
struct MinToy {
    values: Vec<u64>,
    current: u64,
}

impl Type3Algorithm for MinToy {
    type Output = u64;
    fn len(&self) -> usize {
        self.values.len()
    }
    fn run_iteration(&self, k: usize) -> u64 {
        self.values[k]
    }
    fn combine(&mut self, _lo: usize, outputs: &mut Vec<u64>) -> u64 {
        let work = outputs.len() as u64;
        for v in outputs.drain(..) {
            self.current = self.current.min(v);
        }
        work
    }
}

/// A size that the *combinators* would have parallelised (it is above
/// `rayon::MIN_PAR_LEN`) but the engine's round cutoff keeps inline at
/// width 4 — proving the cutoff, not the combinator floor, is in charge.
fn between_floor_and_cutoff() -> usize {
    let cutoff = rayon::cached_pool(4).install(grain::sequential_cutoff);
    assert!(
        cutoff > rayon::MIN_PAR_LEN,
        "cutoff {cutoff} must exceed the combinator floor"
    );
    (rayon::MIN_PAR_LEN + cutoff) / 2
}

#[test]
fn type1_small_rounds_stay_inline() {
    let n = between_floor_and_cutoff();
    let mut algo = Independent::new(n);
    rayon::cached_pool(4).install(|| {
        let before = counters();
        let report = execute_type1(&mut algo, &RunConfig::new().parallel());
        assert_eq!(report.total_items(), n);
        assert_eq!(counters(), before, "sub-cutoff round must spawn nothing");
    });
}

#[test]
fn type1_large_rounds_go_parallel() {
    let n = 8 * rayon::cached_pool(4).install(grain::sequential_cutoff);
    let mut algo = Independent::new(n);
    rayon::cached_pool(4).install(|| {
        let (regions0, helpers0) = counters();
        execute_type1(&mut algo, &RunConfig::new().parallel());
        let (regions1, helpers1) = counters();
        assert!(regions1 > regions0, "above-cutoff round must form a crew");
        assert!(helpers1 > helpers0, "crew members are scoped helpers");
    });
}

#[test]
fn type2_small_prefixes_stay_inline() {
    let n = between_floor_and_cutoff();
    let mut algo = OneSpecial {
        n,
        seen: AtomicU64::new(0),
    };
    rayon::cached_pool(4).install(|| {
        let before = counters();
        let report = execute_type2(&mut algo, &RunConfig::new().parallel());
        assert_eq!(report.items, n);
        assert_eq!(counters(), before, "sub-cutoff prefix must spawn nothing");
    });
}

#[test]
fn type2_large_prefixes_go_parallel() {
    let n = 8 * rayon::cached_pool(4).install(grain::sequential_cutoff);
    let mut algo = OneSpecial {
        n,
        seen: AtomicU64::new(0),
    };
    rayon::cached_pool(4).install(|| {
        let (regions0, _) = counters();
        execute_type2(&mut algo, &RunConfig::new().parallel());
        assert!(rayon::crew_regions() > regions0);
    });
}

#[test]
fn type3_small_rounds_stay_inline_and_large_do_not() {
    let small = between_floor_and_cutoff();
    let mut algo = MinToy {
        values: (0..small as u64).rev().collect(),
        current: u64::MAX,
    };
    rayon::cached_pool(4).install(|| {
        let before = counters();
        execute_type3(&mut algo, &RunConfig::new().parallel());
        assert_eq!(counters(), before, "sub-cutoff rounds must spawn nothing");
    });
    assert_eq!(algo.current, 0);

    let large = 8 * rayon::cached_pool(4).install(grain::sequential_cutoff);
    let mut algo = MinToy {
        values: (0..large as u64).rev().collect(),
        current: u64::MAX,
    };
    rayon::cached_pool(4).install(|| {
        let (regions0, _) = counters();
        execute_type3(&mut algo, &RunConfig::new().parallel());
        assert!(rayon::crew_regions() > regions0);
    });
    assert_eq!(algo.current, 0);
}

#[test]
fn one_thread_runs_are_always_inline() {
    // Width 1 means the cutoff is infinite: even a huge round stays on
    // the caller with zero scheduler involvement.
    let n = 100_000;
    let mut algo = Independent::new(n);
    rayon::run_sequential(|| {
        assert_eq!(grain::sequential_cutoff(), usize::MAX);
        let before = counters();
        execute_type1(&mut algo, &RunConfig::new().parallel());
        assert_eq!(counters(), before);
    });
}

#[test]
fn runner_reports_regions_and_scratch_counters() {
    use ri_core::engine::{Runner, Type1Adapter};
    let cfg = RunConfig::new().parallel().threads(2);

    // First run on this thread warms the scratch pool...
    let mut algo = Independent::new(1000);
    let first = Runner::new(cfg.clone()).run(&mut Type1Adapter(&mut algo));
    assert_eq!(first.regions, 0, "1000-item round is far below the cutoff");
    assert_eq!(first.helper_spawns, 0);

    // ...so a second run is served from it. (Only `remaining` and `flags`
    // grow capacity here — `next` stays empty in an all-ready single
    // round and capacity-0 buffers are not pooled.)
    let mut algo = Independent::new(1000);
    let second = Runner::new(cfg).run(&mut Type1Adapter(&mut algo));
    assert!(
        second.scratch_hits >= 2,
        "remaining/flags buffers must be reused, got {} hits",
        second.scratch_hits
    );
}
