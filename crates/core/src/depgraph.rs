//! Iteration dependence graphs (Definition 1 of the paper).
//!
//! *"An iteration dependence graph for an iterative computation is a DAG
//! G(I, E) such that if every iteration i ∈ I runs after all predecessor
//! iterations in G have completed, then every iteration will do the same
//! computation as in the sequential order."*
//!
//! Algorithm crates record the dependences they actually generate (e.g. the
//! BST parent links in §3, the triangle-creation arcs of §4) into this
//! structure; its [`depth`](DependenceGraph::depth) is the quantity the
//! paper's Theorem 2.1 bounds by `O(log n)` whp.

/// A dependence DAG over iterations `0..n` (or sub-iterations), where every
/// arc points from an earlier-created node to a later-created node.
#[derive(Debug, Default, Clone)]
pub struct DependenceGraph {
    preds: Vec<Vec<u32>>,
}

impl DependenceGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        DependenceGraph {
            preds: vec![Vec::new(); n],
        }
    }

    /// Append a node with the given predecessors (all must be earlier
    /// nodes); returns its id.
    pub fn add_node(&mut self, preds: impl IntoIterator<Item = usize>) -> usize {
        let id = self.preds.len();
        let ps: Vec<u32> = preds
            .into_iter()
            .inspect(|&p| assert!(p < id, "dependence must point backwards: {p} >= {id}"))
            .map(|p| p as u32)
            .collect();
        self.preds.push(ps);
        id
    }

    /// Add an arc `from -> to` between existing nodes (`from < to`).
    pub fn add_dep(&mut self, from: usize, to: usize) {
        assert!(from < to, "dependence must point backwards: {from} -> {to}");
        assert!(to < self.preds.len());
        self.preds[to].push(from as u32);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Total number of dependence arcs.
    pub fn num_deps(&self) -> usize {
        self.preds.iter().map(|p| p.len()).sum()
    }

    /// Longest-path length counted in *nodes* (so a single node has depth 1
    /// and depth 0 means the graph is empty). This is `D(G)` of the paper.
    ///
    /// Nodes are created in a topological order (arcs point backwards), so
    /// one forward dynamic-programming pass suffices: O(V + E).
    pub fn depth(&self) -> usize {
        let mut level = vec![0u32; self.preds.len()];
        let mut best = 0u32;
        for (v, ps) in self.preds.iter().enumerate() {
            let l = ps.iter().map(|&p| level[p as usize]).max().unwrap_or(0) + 1;
            level[v] = l;
            best = best.max(l);
        }
        best as usize
    }

    /// Per-node levels (longest path ending at each node, in nodes).
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.preds.len()];
        for (v, ps) in self.preds.iter().enumerate() {
            level[v] = ps.iter().map(|&p| level[p as usize]).max().unwrap_or(0) + 1;
        }
        level
    }

    /// Histogram of in-degrees (index = in-degree). Used by the experiments
    /// checking the geometric tail of Lemma 2.5.
    pub fn indegree_histogram(&self) -> Vec<usize> {
        let max = self.preds.iter().map(|p| p.len()).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for p in &self.preds {
            hist[p.len()] += 1;
        }
        hist
    }

    /// Predecessors of a node.
    pub fn preds(&self, v: usize) -> &[u32] {
        &self.preds[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_depth() {
        let mut g = DependenceGraph::new();
        let a = g.add_node([]);
        let b = g.add_node([a]);
        let c = g.add_node([b]);
        let _ = c;
        assert_eq!(g.depth(), 3);
        assert_eq!(g.num_deps(), 2);
    }

    #[test]
    fn diamond_depth() {
        let mut g = DependenceGraph::new();
        let a = g.add_node([]);
        let b = g.add_node([a]);
        let c = g.add_node([a]);
        let d = g.add_node([b, c]);
        let _ = d;
        assert_eq!(g.depth(), 3);
        assert_eq!(g.levels(), vec![1, 2, 2, 3]);
    }

    #[test]
    fn isolated_nodes() {
        let g = DependenceGraph::with_nodes(5);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.num_deps(), 0);
        assert_eq!(g.indegree_histogram(), vec![5]);
    }

    #[test]
    fn empty_graph_depth_zero() {
        assert_eq!(DependenceGraph::new().depth(), 0);
    }

    #[test]
    fn add_dep_after_creation() {
        let mut g = DependenceGraph::with_nodes(3);
        g.add_dep(0, 2);
        g.add_dep(1, 2);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.preds(2), &[0, 1]);
        assert_eq!(g.indegree_histogram(), vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn forward_dep_rejected() {
        let mut g = DependenceGraph::with_nodes(3);
        g.add_dep(2, 1);
    }
}
