//! # Deterministic fault injection
//!
//! A [`FaultPlan`] is a seeded schedule of per-request faults for the
//! serving tier: added latency, stalled response writes, connection
//! drops mid-response, spurious retryable 503s, and crash-after-N
//! requests. The fault (if any) for request `i` is chosen by a
//! splitmix64 draw keyed on `(seed, i)` — **no global RNG state** — so
//! the schedule is a pure function of the plan: the same seed always
//! injects the same fault at the same request index, independent of
//! thread interleaving, pool width, or wall-clock time. That is what
//! makes a chaos soak replayable: a failing run names a `(spec, index)`
//! pair that reproduces the exact fault.
//!
//! The plan is parsed from a compact spec string (the `--chaos` flag
//! and the `POST /admin/chaos` body both carry one):
//!
//! ```text
//! seed=42,latency=0.3:25,stall=0.1:150,drop=0.1,error=0.2,crash-after=500
//! ```
//!
//! * `seed=S` — schedule seed (default 0).
//! * `latency=P:MS` — with probability `P`, sleep `MS` before serving.
//! * `stall=P:MS` — with probability `P`, write the response head, hold
//!   the body for `MS`, then complete (a stalled read from the client's
//!   point of view).
//! * `drop=P` — with probability `P`, write a truncated response body
//!   and sever the connection (a mid-response drop).
//! * `error=P` — with probability `P`, answer a spurious `503` marked
//!   `retryable` without executing the request.
//! * `crash-after=N` — serve `N` requests normally (modulo the faults
//!   above), then go dark: every later request — and the whole shard —
//!   behaves as a crashed process.
//!
//! Probabilities are cumulative slices of one uniform draw per request
//! (at most one fault fires per request), so they must sum to ≤ 1.

use std::fmt;

use super::json::Value;

/// Request header carrying the remaining end-to-end deadline budget in
/// milliseconds. Set at router ingress, decremented per hop and per
/// retry; a shard clamps its own queue deadline to it.
pub const DEADLINE_HEADER: &str = "x-ri-deadline-ms";

/// Response header carrying a millisecond-precision retry hint
/// alongside the coarse (whole-second) `Retry-After`. Emitted on `503`
/// from actual queue pressure; honored by the router's backoff and by
/// `loadgen`.
pub const RETRY_AFTER_MS_HEADER: &str = "x-ri-retry-after-ms";

/// One injected fault, chosen for a single request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep before serving the request.
    Latency {
        /// Injected delay in milliseconds.
        ms: u64,
    },
    /// Write the response head, hold the body, then complete the write.
    Stall {
        /// Mid-write hold in milliseconds.
        ms: u64,
    },
    /// Write a truncated response body, then sever the connection.
    DropMidResponse,
    /// Answer a spurious retryable `503` without executing.
    Err503,
    /// The shard has passed its `crash-after` budget: drop the
    /// connection without a byte and refuse all further work.
    Crash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Latency { ms } => write!(f, "latency:{ms}"),
            FaultKind::Stall { ms } => write!(f, "stall:{ms}"),
            FaultKind::DropMidResponse => write!(f, "drop"),
            FaultKind::Err503 => write!(f, "error"),
            FaultKind::Crash => write!(f, "crash"),
        }
    }
}

/// A seeded per-request fault schedule. See the module docs for the
/// spec grammar. The plan itself is immutable; the request counter
/// lives with the server that applies it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Schedule seed: same seed ⇒ same fault at every request index.
    pub seed: u64,
    /// `latency=P:MS` — probability and injected delay.
    pub latency: Option<(f64, u64)>,
    /// `stall=P:MS` — probability and mid-write hold.
    pub stall: Option<(f64, u64)>,
    /// `drop=P` — probability of a mid-response connection drop.
    pub drop: f64,
    /// `error=P` — probability of a spurious retryable 503.
    pub error: f64,
    /// `crash-after=N` — requests served before the shard goes dark.
    pub crash_after: Option<u64>,
}

impl FaultPlan {
    /// Parse a spec string (see module docs). `""`, `"off"`, and
    /// `"none"` parse to `Ok(None)` — they clear an active plan.
    pub fn parse(spec: &str) -> Result<Option<FaultPlan>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" || spec == "none" {
            return Ok(None);
        }
        let mut plan = FaultPlan {
            seed: 0,
            latency: None,
            stall: None,
            drop: 0.0,
            error: 0.0,
            crash_after: None,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: `{part}` is not key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("chaos spec: bad seed `{value}`"))?;
                }
                "latency" => plan.latency = Some(parse_prob_ms("latency", value)?),
                "stall" => plan.stall = Some(parse_prob_ms("stall", value)?),
                "drop" => plan.drop = parse_prob("drop", value)?,
                "error" => plan.error = parse_prob("error", value)?,
                "crash-after" => {
                    plan.crash_after = Some(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|_| format!("chaos spec: bad crash-after `{value}`"))?,
                    );
                }
                other => return Err(format!("chaos spec: unknown key `{other}`")),
            }
        }
        let total = plan.latency.map_or(0.0, |(p, _)| p)
            + plan.stall.map_or(0.0, |(p, _)| p)
            + plan.drop
            + plan.error;
        if total > 1.0 + 1e-9 {
            return Err(format!(
                "chaos spec: fault probabilities sum to {total:.3} > 1"
            ));
        }
        Ok(Some(plan))
    }

    /// The fault injected at request `index` (0-based arrival order at
    /// the shard), or `None` for a clean request. Pure: depends only on
    /// `(self, index)`.
    pub fn fault_for(&self, index: u64) -> Option<FaultKind> {
        if let Some(n) = self.crash_after {
            if index >= n {
                return Some(FaultKind::Crash);
            }
        }
        let u = unit(splitmix64(self.seed ^ splitmix64(index.wrapping_add(1))));
        let mut edge = 0.0;
        if let Some((p, ms)) = self.latency {
            edge += p;
            if u < edge {
                return Some(FaultKind::Latency { ms });
            }
        }
        if let Some((p, ms)) = self.stall {
            edge += p;
            if u < edge {
                return Some(FaultKind::Stall { ms });
            }
        }
        edge += self.drop;
        if u < edge {
            return Some(FaultKind::DropMidResponse);
        }
        edge += self.error;
        if u < edge {
            return Some(FaultKind::Err503);
        }
        None
    }

    /// The first `n` entries of the fault schedule — what a soak
    /// harness diffs to assert same-seed ⇒ same-schedule.
    pub fn schedule(&self, n: u64) -> Vec<Option<FaultKind>> {
        (0..n).map(|i| self.fault_for(i)).collect()
    }

    /// The canonical spec string — `parse(plan.spec())` round-trips.
    pub fn spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if let Some((p, ms)) = self.latency {
            parts.push(format!("latency={p}:{ms}"));
        }
        if let Some((p, ms)) = self.stall {
            parts.push(format!("stall={p}:{ms}"));
        }
        if self.drop > 0.0 {
            parts.push(format!("drop={}", self.drop));
        }
        if self.error > 0.0 {
            parts.push(format!("error={}", self.error));
        }
        if let Some(n) = self.crash_after {
            parts.push(format!("crash-after={n}"));
        }
        parts.join(",")
    }

    /// The plan as a JSON document (the `/admin/chaos` echo and the
    /// `/healthz` `chaos.plan` member).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("spec".into(), Value::Str(self.spec())),
            ("seed".into(), Value::Num(self.seed as f64)),
        ];
        if let Some((p, ms)) = self.latency {
            members.push(("latency_p".into(), Value::Num(p)));
            members.push(("latency_ms".into(), Value::Num(ms as f64)));
        }
        if let Some((p, ms)) = self.stall {
            members.push(("stall_p".into(), Value::Num(p)));
            members.push(("stall_ms".into(), Value::Num(ms as f64)));
        }
        if self.drop > 0.0 {
            members.push(("drop_p".into(), Value::Num(self.drop)));
        }
        if self.error > 0.0 {
            members.push(("error_p".into(), Value::Num(self.error)));
        }
        if let Some(n) = self.crash_after {
            members.push(("crash_after".into(), Value::Num(n as f64)));
        }
        Value::Obj(members)
    }
}

fn parse_prob(key: &str, value: &str) -> Result<f64, String> {
    let p = value
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("chaos spec: bad {key} probability `{value}`"))?;
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(format!("chaos spec: {key} probability {p} not in [0, 1]"));
    }
    Ok(p)
}

fn parse_prob_ms(key: &str, value: &str) -> Result<(f64, u64), String> {
    let (p, ms) = value
        .split_once(':')
        .ok_or_else(|| format!("chaos spec: {key} wants P:MS, got `{value}`"))?;
    let ms = ms
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("chaos spec: bad {key} milliseconds `{ms}`"))?;
    Ok((parse_prob(key, p)?, ms))
}

/// splitmix64: the standard 64-bit finalizer-style mixer. Good enough
/// as a stateless per-index RNG and already the hashing idiom used by
/// the router ring.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a mixed word onto [0, 1) with 53 bits of precision.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic backoff jitter for retry attempt `attempt` of the
/// request identified by `key_hash`: a value in `[0, span)` that is a
/// pure function of its inputs, so a replayed run backs off by the
/// same amounts. Shared by the router's retry loop and `loadgen`.
pub fn backoff_jitter_ms(key_hash: u64, attempt: u32, span: u64) -> u64 {
    if span == 0 {
        return 0;
    }
    splitmix64(key_hash ^ splitmix64(attempt as u64)) % span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_off_clear() {
        assert_eq!(FaultPlan::parse("").unwrap(), None);
        assert_eq!(FaultPlan::parse("off").unwrap(), None);
        assert_eq!(FaultPlan::parse(" none ").unwrap(), None);
    }

    #[test]
    fn parse_full_spec_round_trips() {
        let plan = FaultPlan::parse(
            "seed=42,latency=0.3:25,stall=0.1:150,drop=0.1,error=0.2,crash-after=500",
        )
        .unwrap()
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.latency, Some((0.3, 25)));
        assert_eq!(plan.stall, Some((0.1, 150)));
        assert_eq!(plan.drop, 0.1);
        assert_eq!(plan.error, 0.2);
        assert_eq!(plan.crash_after, Some(500));
        let again = FaultPlan::parse(&plan.spec()).unwrap().unwrap();
        assert_eq!(again, plan);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("latency=0.5").is_err()); // wants P:MS
        assert!(FaultPlan::parse("drop=1.5").is_err()); // p > 1
        assert!(FaultPlan::parse("drop=-0.1").is_err());
        assert!(FaultPlan::parse("drop=nan").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("seed").is_err()); // not key=value
        assert!(FaultPlan::parse("drop=0.6,error=0.6").is_err()); // sum > 1
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::parse("seed=7,latency=0.2:10,drop=0.2,error=0.2")
            .unwrap()
            .unwrap();
        let b = FaultPlan::parse("seed=7,latency=0.2:10,drop=0.2,error=0.2")
            .unwrap()
            .unwrap();
        assert_eq!(a.schedule(4096), b.schedule(4096));
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = FaultPlan::parse("seed=1,drop=0.5").unwrap().unwrap();
        let b = FaultPlan::parse("seed=2,drop=0.5").unwrap().unwrap();
        assert_ne!(a.schedule(4096), b.schedule(4096));
    }

    #[test]
    fn probabilities_land_near_their_slices() {
        let plan = FaultPlan::parse("seed=9,latency=0.25:5,drop=0.25,error=0.25")
            .unwrap()
            .unwrap();
        let sched = plan.schedule(8192);
        let count = |want: fn(&FaultKind) -> bool| {
            sched
                .iter()
                .filter(|f| f.as_ref().is_some_and(want))
                .count() as f64
                / 8192.0
        };
        let latency = count(|f| matches!(f, FaultKind::Latency { .. }));
        let drop = count(|f| matches!(f, FaultKind::DropMidResponse));
        let error = count(|f| matches!(f, FaultKind::Err503));
        for observed in [latency, drop, error] {
            assert!(
                (observed - 0.25).abs() < 0.03,
                "slice off: {observed} vs 0.25"
            );
        }
    }

    #[test]
    fn crash_after_dominates_past_budget() {
        let plan = FaultPlan::parse("seed=3,drop=0.9,crash-after=10")
            .unwrap()
            .unwrap();
        for i in 0..10 {
            assert_ne!(plan.fault_for(i), Some(FaultKind::Crash));
        }
        for i in 10..100 {
            assert_eq!(plan.fault_for(i), Some(FaultKind::Crash));
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for attempt in 0..8 {
            let a = backoff_jitter_ms(0xdead_beef, attempt, 100);
            let b = backoff_jitter_ms(0xdead_beef, attempt, 100);
            assert_eq!(a, b);
            assert!(a < 100);
        }
        assert_eq!(backoff_jitter_ms(1, 1, 0), 0);
        assert_ne!(
            backoff_jitter_ms(1, 1, 1 << 30),
            backoff_jitter_ms(2, 1, 1 << 30)
        );
    }

    #[test]
    fn to_value_names_the_active_faults() {
        let plan = FaultPlan::parse("seed=5,error=0.5,crash-after=3")
            .unwrap()
            .unwrap();
        let v = plan.to_value();
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(5));
        assert_eq!(v.get("error_p").and_then(|s| s.as_f64()), Some(0.5));
        assert_eq!(v.get("crash_after").and_then(|s| s.as_u64()), Some(3));
        assert!(v.get("latency_p").is_none());
    }
}
