//! Deterministic witness records: persist, replay, and verify any served
//! response.
//!
//! The paper's central determinism property — a fixed seed fully
//! determines the insertion order, and with it the rounds, dependences
//! and answer of every Type 1/2/3 algorithm — means a `{problem,
//! workload, config}` request is a *complete* recipe for its own
//! response: any process holding the registry can re-execute it and must
//! reproduce the answer **and** the round structure bit-identically.
//! This module turns that property into infrastructure:
//!
//! * [`RoundTrace`] — the deterministic subset of a [`RunReport`]
//!   (per-round items/work, depth, specials, sub-rounds, checks). It
//!   deliberately excludes everything machine- or schedule-dependent:
//!   wall times, phases, scratch/region counters, thread counts. Two
//!   runs of the same request in the same [`ExecMode`] produce equal
//!   traces on any machine at any pool width.
//! * [`WitnessRecord`] — one served response, reduced to what replay
//!   needs: the echoed request (which replays the run exactly), the
//!   shard that served it, the mode-invariant answer, and the trace.
//! * [`WitnessLog`] — an append-only JSONL log of records (the router
//!   writes one line per routed solve) plus [`read_log`] to load it back.
//! * [`replay`] — re-execute a record through a local [`Registry`] and
//!   assert answer + trace equality: the cross-shard / cross-process
//!   answer-equality gate. A divergence means a broken build, a
//!   non-deterministic code path, or a corrupted log — all things a
//!   serving fleet wants to catch loudly.
//! * [`StreamBatchRecord`] / [`replay_stream`] — the same property for
//!   streaming sessions: one record per served batch (tagged
//!   `"kind":"stream-batch"` so both kinds share a log file, loaded via
//!   [`read_any_log`]), and a replay that reconstructs the session from
//!   its spec, re-feeds the exact batch sequence, and asserts every
//!   [`BatchDelta`] comes back bit-identical — answer, problem-specific
//!   delta and per-batch trace alike.
//!
//! The record's canonical JSON shape is one line of
//! `{"request": {...}, "seed": {"workload": W, "config": C},
//! "shard": "s0", "answer": {...}, "trace": {...}}` — `seed` is
//! denormalized out of the request so log consumers that only care about
//! the determinism key need not parse the request body.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::envelope::{ServeRequest, ServeResponse};
use super::json::{self, Value};
use super::registry::{Registry, RegistryError, WorkloadSpec};
use super::report::RunReport;
use super::runner::{ExecMode, RunConfig};
use super::session::{BatchDelta, StreamSpec};

/// The deterministic subset of a [`RunReport`]: equal across machines,
/// pool widths and repetitions for a fixed request (problem, workload,
/// config seed and mode); excludes wall times, phases and scheduler
/// counters, which are not.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoundTrace {
    /// Per-round `(items, work)` entries.
    pub rounds: Vec<(usize, u64)>,
    /// Measured dependence depth.
    pub depth: usize,
    /// Special-iteration trace (Type 2; empty otherwise).
    pub specials: Vec<usize>,
    /// Sub-rounds per prefix (Type 2 parallel; empty otherwise).
    pub sub_rounds: Vec<usize>,
    /// The algorithm's scalar work measure.
    pub checks: u64,
}

impl RoundTrace {
    /// Extract the deterministic trace from a full report.
    pub fn from_report(report: &RunReport) -> Self {
        RoundTrace {
            rounds: report.rounds.entries().to_vec(),
            depth: report.depth,
            specials: report.specials.clone(),
            sub_rounds: report.sub_rounds.clone(),
            checks: report.checks,
        }
    }

    /// The trace as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "rounds".into(),
                Value::Arr(
                    self.rounds
                        .iter()
                        .map(|&(items, work)| {
                            Value::Arr(vec![Value::Num(items as f64), Value::Num(work as f64)])
                        })
                        .collect(),
                ),
            ),
            ("depth".into(), Value::Num(self.depth as f64)),
            (
                "specials".into(),
                Value::Arr(
                    self.specials
                        .iter()
                        .map(|&s| Value::Num(s as f64))
                        .collect(),
                ),
            ),
            (
                "sub_rounds".into(),
                Value::Arr(
                    self.sub_rounds
                        .iter()
                        .map(|&s| Value::Num(s as f64))
                        .collect(),
                ),
            ),
            ("checks".into(), Value::Num(self.checks as f64)),
        ])
    }

    /// Parse a trace from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<RoundTrace, json::ParseError> {
        let bad = |key: &str| json::ParseError {
            message: format!("malformed trace field `{key}`"),
            at: 0,
        };
        let field = |key: &str| {
            v.get(key).ok_or_else(|| json::ParseError {
                message: format!("trace missing field `{key}`"),
                at: 0,
            })
        };
        let mut trace = RoundTrace::default();
        for entry in field("rounds")?.as_arr().ok_or_else(|| bad("rounds"))? {
            let pair = entry
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("rounds"))?;
            trace.rounds.push((
                pair[0].as_usize().ok_or_else(|| bad("rounds"))?,
                pair[1].as_u64().ok_or_else(|| bad("rounds"))?,
            ));
        }
        trace.depth = field("depth")?.as_usize().ok_or_else(|| bad("depth"))?;
        for s in field("specials")?.as_arr().ok_or_else(|| bad("specials"))? {
            trace
                .specials
                .push(s.as_usize().ok_or_else(|| bad("specials"))?);
        }
        for s in field("sub_rounds")?
            .as_arr()
            .ok_or_else(|| bad("sub_rounds"))?
        {
            trace
                .sub_rounds
                .push(s.as_usize().ok_or_else(|| bad("sub_rounds"))?);
        }
        trace.checks = field("checks")?.as_u64().ok_or_else(|| bad("checks"))?;
        Ok(trace)
    }
}

/// The determinism key of a request: everything that fixes the answer
/// and the trace. Problem name, the full workload (its seed included),
/// the run-time seed, the mode (traces are mode-dependent) and the
/// instrument flag (cached response bodies embed phase timings when it is
/// set). Thread count is deliberately **excluded** — answers and traces
/// are width-invariant, which is exactly what makes cross-shard caching
/// and replay sound.
pub fn witness_key(problem: &str, workload: &WorkloadSpec, config: &RunConfig) -> String {
    format!(
        "{}|{}|{}|{}|{}",
        problem,
        workload.to_value().write(),
        config.seed,
        config.mode.as_str(),
        config.instrument
    )
}

/// One served response, reduced to what deterministic replay needs.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessRecord {
    /// The echoed request — problem, workload and the config the backend
    /// actually ran (its `threads` may carry the serving pool's clamp;
    /// replay reuses it verbatim).
    pub request: ServeRequest,
    /// Which shard served the response.
    pub shard: String,
    /// The mode-invariant answer members of the response's summary.
    pub answer: Vec<(String, Value)>,
    /// The deterministic round trace of the run.
    pub trace: RoundTrace,
}

impl WitnessRecord {
    /// Build a record from a served response (`resp` echoes the request
    /// that produced it) and the shard that served it.
    pub fn from_response(resp: &ServeResponse, shard: impl Into<String>) -> Self {
        WitnessRecord {
            request: ServeRequest {
                problem: resp.problem.clone(),
                workload: resp.workload.clone(),
                config: resp.config.clone(),
            },
            shard: shard.into(),
            answer: resp.summary.answer().to_vec(),
            trace: RoundTrace::from_report(&resp.report),
        }
    }

    /// This record's [`witness_key`] (the cache key the router uses).
    pub fn key(&self) -> String {
        witness_key(
            &self.request.problem,
            &self.request.workload,
            &self.request.config,
        )
    }

    /// The record as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("request".into(), self.request.to_value()),
            (
                "seed".into(),
                Value::Obj(vec![
                    (
                        "workload".into(),
                        Value::Num(self.request.workload.seed as f64),
                    ),
                    ("config".into(), Value::Num(self.request.config.seed as f64)),
                ]),
            ),
            ("shard".into(), Value::Str(self.shard.clone())),
            ("answer".into(), Value::Obj(self.answer.clone())),
            ("trace".into(), self.trace.to_value()),
        ])
    }

    /// Serialize to a single-line JSON object (one log line).
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse a record back from its JSON form.
    pub fn from_json(text: &str) -> Result<WitnessRecord, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a record from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<WitnessRecord, json::ParseError> {
        let bad = |what: &str| json::ParseError {
            message: format!("malformed witness record: {what}"),
            at: 0,
        };
        let request =
            ServeRequest::from_value(v.get("request").ok_or_else(|| bad("missing `request`"))?)
                .map_err(|e| bad(&format!("bad `request`: {e}")))?;
        let shard = v
            .get("shard")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `shard`"))?
            .to_string();
        let answer = match v.get("answer") {
            Some(Value::Obj(members)) => members.clone(),
            _ => return Err(bad("missing `answer` object")),
        };
        let trace = RoundTrace::from_value(v.get("trace").ok_or_else(|| bad("missing `trace`"))?)?;
        // The denormalized `seed` member is a convenience copy; when
        // present it must agree with the request, or the record has been
        // corrupted or hand-edited inconsistently.
        if let Some(seed) = v.get("seed") {
            let agree = seed.get("workload").and_then(Value::as_u64) == Some(request.workload.seed)
                && seed.get("config").and_then(Value::as_u64) == Some(request.config.seed);
            if !agree {
                return Err(bad("`seed` disagrees with the request's seeds"));
            }
        }
        Ok(WitnessRecord {
            request,
            shard,
            answer,
            trace,
        })
    }
}

/// One served **stream batch**, reduced to what deterministic replay
/// needs: the session's opening spec (problem, workload whose `n` is the
/// capacity, config), the session id, the shard that served the batch,
/// and the full [`BatchDelta`] the batch returned. A session's records,
/// in batch order, are a complete recipe for rebuilding it anywhere.
///
/// Serialized with a `"kind":"stream-batch"` tag so stream and one-shot
/// records can share one JSONL log file.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBatchRecord {
    /// The session id the batch belongs to.
    pub session: String,
    /// The session's opening spec: problem, full-capacity workload and
    /// the run config every batch solves under.
    pub spec: StreamSpec,
    /// Which shard served the batch.
    pub shard: String,
    /// The delta the batch returned (carries its own batch index and
    /// count — replay re-feeds `delta.count` and compares the whole
    /// delta with `==`).
    pub delta: BatchDelta,
}

impl StreamBatchRecord {
    /// The record as a JSON [`Value`]. Mirrors [`WitnessRecord`]'s shape
    /// (`request` + denormalized `seed` + `shard`) with the stream tag,
    /// session id and delta on top.
    pub fn to_value(&self) -> Value {
        let mut spec = self.spec.clone();
        spec.session_id = None; // the top-level `session` member is canonical
        Value::Obj(vec![
            ("kind".into(), Value::Str("stream-batch".into())),
            ("session".into(), Value::Str(self.session.clone())),
            ("request".into(), spec.to_value()),
            (
                "seed".into(),
                Value::Obj(vec![
                    (
                        "workload".into(),
                        Value::Num(self.spec.workload.seed as f64),
                    ),
                    ("config".into(), Value::Num(self.spec.config.seed as f64)),
                ]),
            ),
            ("shard".into(), Value::Str(self.shard.clone())),
            ("delta".into(), self.delta.to_value()),
        ])
    }

    /// Serialize to a single-line JSON object (one log line).
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse a record back from its JSON form.
    pub fn from_json(text: &str) -> Result<StreamBatchRecord, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a record from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<StreamBatchRecord, json::ParseError> {
        let bad = |what: &str| json::ParseError {
            message: format!("malformed stream-batch record: {what}"),
            at: 0,
        };
        if v.get("kind").and_then(Value::as_str) != Some("stream-batch") {
            return Err(bad("missing `\"kind\":\"stream-batch\"` tag"));
        }
        let session = v
            .get("session")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `session`"))?
            .to_string();
        let mut spec =
            StreamSpec::from_value(v.get("request").ok_or_else(|| bad("missing `request`"))?)
                .map_err(|e| bad(&format!("bad `request`: {}", e.message)))?;
        spec.session_id = None;
        let shard = v
            .get("shard")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `shard`"))?
            .to_string();
        let delta = BatchDelta::from_value(v.get("delta").ok_or_else(|| bad("missing `delta`"))?)?;
        if let Some(seed) = v.get("seed") {
            let agree = seed.get("workload").and_then(Value::as_u64) == Some(spec.workload.seed)
                && seed.get("config").and_then(Value::as_u64) == Some(spec.config.seed);
            if !agree {
                return Err(bad("`seed` disagrees with the request's seeds"));
            }
        }
        Ok(StreamBatchRecord {
            session,
            spec,
            shard,
            delta,
        })
    }
}

/// One line of a witness log: a one-shot solve record or a stream batch.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// A routed one-shot `/solve` record.
    Solve(WitnessRecord),
    /// One served batch of a streaming session.
    Stream(StreamBatchRecord),
}

/// An append-only JSONL witness log: one [`WitnessRecord`] per line.
/// Appends are serialized through a mutex and flushed per record, so a
/// log captured from a killed process is whole-line truncated at worst.
#[derive(Debug)]
pub struct WitnessLog {
    path: PathBuf,
    file: Mutex<std::fs::File>,
    appended: AtomicU64,
}

impl WitnessLog {
    /// Open `path` for appending (creating it if absent).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<WitnessLog> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(WitnessLog {
            path,
            file: Mutex::new(file),
            appended: AtomicU64::new(0),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this handle (not lines already in the
    /// file when it was opened).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::SeqCst)
    }

    /// Append one record as one JSON line and flush it.
    pub fn append(&self, record: &WitnessRecord) -> io::Result<()> {
        self.append_line(record.to_json())
    }

    /// Append one stream-batch record as one JSON line and flush it.
    pub fn append_stream(&self, record: &StreamBatchRecord) -> io::Result<()> {
        self.append_line(record.to_json())
    }

    fn append_line(&self, line: String) -> io::Result<()> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(file, "{line}")?;
        file.flush()?;
        self.appended.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

/// Load every record from a JSONL witness log. Blank lines are skipped;
/// a malformed line fails the whole load (a witness log is an integrity
/// artifact — partial reads would hide corruption).
pub fn read_log(path: impl AsRef<Path>) -> io::Result<Vec<WitnessRecord>> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = WitnessRecord::from_json(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("witness log line {}: {e}", i + 1),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Load every entry from a JSONL witness log that may mix one-shot
/// [`WitnessRecord`] lines and `"kind":"stream-batch"` lines. Blank
/// lines are skipped; a malformed line fails the whole load, like
/// [`read_log`].
pub fn read_any_log(path: impl AsRef<Path>) -> io::Result<Vec<LogEntry>> {
    let text = std::fs::read_to_string(path.as_ref())?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fail = |e: json::ParseError| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("witness log line {}: {e}", i + 1),
            )
        };
        let v = json::parse(line).map_err(fail)?;
        let entry = if v.get("kind").and_then(Value::as_str) == Some("stream-batch") {
            LogEntry::Stream(StreamBatchRecord::from_value(&v).map_err(fail)?)
        } else {
            LogEntry::Solve(WitnessRecord::from_value(&v).map_err(fail)?)
        };
        entries.push(entry);
    }
    Ok(entries)
}

/// Why a replay did not reproduce its record.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The local registry could not solve the recorded request at all.
    Solve(RegistryError),
    /// The re-executed answer differs from the recorded one.
    AnswerMismatch {
        /// The recorded answer.
        expected: Value,
        /// The re-executed answer.
        got: Value,
    },
    /// The re-executed round trace differs from the recorded one.
    TraceMismatch {
        /// Which trace field diverged first.
        field: &'static str,
        /// Recorded vs re-executed, rendered for humans.
        detail: String,
    },
    /// A streamed session's records are not replayable as recorded:
    /// mixed sessions, non-contiguous batch indices, inconsistent specs,
    /// or a batch the reconstructed session refused to absorb.
    BadStream {
        /// What was wrong.
        detail: String,
    },
    /// A re-fed batch produced a different delta than recorded.
    DeltaMismatch {
        /// The diverging batch's 0-based index.
        batch: usize,
        /// The recorded delta, as JSON.
        expected: Value,
        /// The re-fed delta, as JSON.
        got: Value,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Solve(e) => write!(f, "replay could not solve: {e}"),
            ReplayError::AnswerMismatch { expected, got } => write!(
                f,
                "answer diverged: recorded {} but replay produced {}",
                expected.write(),
                got.write()
            ),
            ReplayError::TraceMismatch { field, detail } => {
                write!(f, "round trace diverged at `{field}`: {detail}")
            }
            ReplayError::BadStream { detail } => {
                write!(f, "stream records not replayable: {detail}")
            }
            ReplayError::DeltaMismatch {
                batch,
                expected,
                got,
            } => write!(
                f,
                "batch {batch} delta diverged: recorded {} but replay produced {}",
                expected.write(),
                got.write()
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Re-execute `record`'s request through `registry` and assert that the
/// answer **and** the deterministic round trace come back bit-identical.
///
/// Relaxed-mode records (`"relaxed:k"`) are gated on **answer equality
/// only**: their answers must still equal the exact runs', but the round
/// trace is a property of the relaxed schedule, which the determinism
/// contract deliberately does not pin down.
pub fn replay(registry: &Registry, record: &WitnessRecord) -> Result<(), ReplayError> {
    let req = &record.request;
    let (summary, report) = registry
        .solve(&req.problem, &req.workload, &req.config)
        .map_err(ReplayError::Solve)?;
    let got = Value::Obj(summary.answer().to_vec());
    let expected = Value::Obj(record.answer.clone());
    if got != expected {
        return Err(ReplayError::AnswerMismatch { expected, got });
    }
    if matches!(req.config.mode, ExecMode::Relaxed { .. }) {
        return Ok(());
    }
    let trace = RoundTrace::from_report(&report);
    if trace != record.trace {
        let (field, detail): (&'static str, String) = if trace.rounds != record.trace.rounds {
            (
                "rounds",
                format!(
                    "recorded {} rounds, replay ran {}",
                    record.trace.rounds.len(),
                    trace.rounds.len()
                ),
            )
        } else if trace.depth != record.trace.depth {
            (
                "depth",
                format!("recorded {}, replay {}", record.trace.depth, trace.depth),
            )
        } else if trace.specials != record.trace.specials {
            (
                "specials",
                format!(
                    "recorded {} specials, replay {}",
                    record.trace.specials.len(),
                    trace.specials.len()
                ),
            )
        } else if trace.sub_rounds != record.trace.sub_rounds {
            ("sub_rounds", "per-prefix sub-round counts differ".into())
        } else {
            (
                "checks",
                format!("recorded {}, replay {}", record.trace.checks, trace.checks),
            )
        };
        return Err(ReplayError::TraceMismatch { field, detail });
    }
    Ok(())
}

/// Re-feed one streamed session from its witness records and assert
/// every [`BatchDelta`] comes back bit-identical.
///
/// `records` must be **one** session's records in batch order (batch
/// indices contiguous from 0, identical spec throughout) — group a mixed
/// log by session id first. The session is reconstructed through
/// [`Registry::construct_incremental`], so a native adapter replays
/// natively and a fallback problem replays through the same
/// re-solve-prefix path that served it.
pub fn replay_stream(
    registry: &Registry,
    records: &[StreamBatchRecord],
) -> Result<(), ReplayError> {
    let bad = |detail: String| ReplayError::BadStream { detail };
    let first = records
        .first()
        .ok_or_else(|| bad("no records for session".into()))?;
    for (i, r) in records.iter().enumerate() {
        if r.session != first.session {
            return Err(bad(format!(
                "mixed sessions `{}` and `{}`; group by session before replay",
                first.session, r.session
            )));
        }
        if r.spec != first.spec {
            return Err(bad(format!(
                "session `{}` changes spec at batch {}",
                r.session, r.delta.batch
            )));
        }
        if r.delta.batch != i {
            return Err(bad(format!(
                "session `{}` batches not contiguous: expected index {i}, found {}",
                r.session, r.delta.batch
            )));
        }
    }
    let mut inc = registry
        .construct_incremental(&first.spec.problem, &first.spec.workload)
        .map_err(ReplayError::Solve)?;
    // Relaxed sessions are gated on everything *except* the round trace:
    // the answers and deltas must come back bit-identical, but the trace
    // reflects the relaxed schedule, which the contract leaves free.
    let relaxed = matches!(first.spec.config.mode, ExecMode::Relaxed { .. });
    for r in records {
        let (delta, _) = inc
            .feed(r.delta.count, &first.spec.config)
            .map_err(|e| bad(format!("batch {} refused on replay: {e}", r.delta.batch)))?;
        let matches = if relaxed {
            delta.batch == r.delta.batch
                && delta.count == r.delta.count
                && delta.cumulative == r.delta.cumulative
                && delta.capacity == r.delta.capacity
                && delta.complete == r.delta.complete
                && delta.pending == r.delta.pending
                && delta.delta == r.delta.delta
                && delta.answer == r.delta.answer
        } else {
            delta == r.delta
        };
        if !matches {
            return Err(ReplayError::DeltaMismatch {
                batch: r.delta.batch,
                expected: r.delta.to_value(),
                got: delta.to_value(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::registry::{ErasedProblem, OutputSummary};
    use crate::engine::ExecMode;

    /// A deterministic toy problem: the "answer" and the trace are pure
    /// functions of (n, workload seed, config seed, mode) — exactly the
    /// determinism contract real problems satisfy.
    struct Toy {
        n: usize,
        wseed: u64,
    }

    impl ErasedProblem for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
            let mut report = RunReport::new("toy");
            report.mode = cfg.mode;
            report.items = self.n;
            let mix = self.wseed.wrapping_mul(31).wrapping_add(cfg.seed);
            match cfg.mode {
                ExecMode::Sequential => {
                    report.record_round(self.n, mix % 97);
                    report.depth = self.n;
                }
                ExecMode::Parallel => {
                    report.record_round(self.n / 2, mix % 89);
                    report.record_round(self.n - self.n / 2, mix % 83);
                    report.depth = 2;
                    report.specials.push((mix % self.n.max(1) as u64) as usize);
                }
                // Same answer as parallel (the relaxed contract), but a
                // deliberately different, k-dependent trace.
                ExecMode::Relaxed { k } => {
                    report.record_round(self.n, mix % 79);
                    report.depth = 1;
                    report.rank_inversions = (k as u64).wrapping_add(mix) % 13;
                    report.wasted_retries = mix % 7;
                }
            }
            report.checks = mix % 1009;
            // Non-deterministic-looking noise the trace must ignore.
            report.wall_seconds = 0.123;
            report.scratch_hits = 42;
            report.regions = 7;
            let mut summary = OutputSummary::new();
            summary.answer_num("mix", (mix % 100003) as f64);
            summary.metric_num("noise", 0.5);
            (summary, report)
        }
    }

    fn toy_registry() -> Registry {
        let mut reg = Registry::new();
        reg.register("toy", "deterministic toy", |spec| {
            Ok(Box::new(Toy {
                n: spec.n,
                wseed: spec.seed,
            }))
        });
        reg
    }

    fn toy_response(reg: &Registry, n: usize, wseed: u64, cseed: u64) -> ServeResponse {
        toy_response_cfg(reg, n, wseed, RunConfig::new().seed(cseed))
    }

    fn toy_response_cfg(reg: &Registry, n: usize, wseed: u64, config: RunConfig) -> ServeResponse {
        let workload = WorkloadSpec::new(n, wseed);
        let (summary, report) = reg.solve("toy", &workload, &config).unwrap();
        ServeResponse {
            problem: "toy".into(),
            workload,
            config,
            summary,
            report,
        }
    }

    #[test]
    fn trace_is_the_deterministic_subset() {
        let reg = toy_registry();
        let resp = toy_response(&reg, 16, 3, 9);
        let trace = RoundTrace::from_report(&resp.report);
        assert_eq!(trace.rounds.len(), 2);
        assert_eq!(trace.depth, 2);
        // Wall time / scratch counters are not part of the trace.
        assert_eq!(RoundTrace::from_value(&trace.to_value()).unwrap(), trace);
    }

    #[test]
    fn record_round_trips_through_json() {
        let reg = toy_registry();
        let record = WitnessRecord::from_response(&toy_response(&reg, 12, 5, 2), "s1");
        let back = WitnessRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back, record);
        // The denormalized seed member is present and checked.
        assert!(record
            .to_json()
            .contains("\"seed\":{\"workload\":5,\"config\":2}"));
        let tampered = record.to_json().replace(
            "\"seed\":{\"workload\":5,\"config\":2}",
            "\"seed\":{\"workload\":6,\"config\":2}",
        );
        assert!(WitnessRecord::from_json(&tampered).is_err());
    }

    #[test]
    fn replay_accepts_faithful_records_and_rejects_tampered_ones() {
        let reg = toy_registry();
        let record = WitnessRecord::from_response(&toy_response(&reg, 20, 7, 11), "s0");
        assert!(replay(&reg, &record).is_ok());

        // Tampered answer → AnswerMismatch.
        let mut bad = record.clone();
        bad.answer[0].1 = Value::Num(-1.0);
        assert!(matches!(
            replay(&reg, &bad),
            Err(ReplayError::AnswerMismatch { .. })
        ));

        // Tampered trace → TraceMismatch.
        let mut bad = record.clone();
        bad.trace.checks += 1;
        assert!(matches!(
            replay(&reg, &bad),
            Err(ReplayError::TraceMismatch {
                field: "checks",
                ..
            })
        ));

        // A record for an unknown problem → Solve.
        let mut bad = record;
        bad.request.problem = "nope".into();
        assert!(matches!(replay(&reg, &bad), Err(ReplayError::Solve(_))));
    }

    #[test]
    fn relaxed_replay_gates_on_answer_only() {
        let reg = toy_registry();
        let cfg = RunConfig::new().seed(11).relaxed(8);
        let record = WitnessRecord::from_response(&toy_response_cfg(&reg, 20, 7, cfg), "s0");
        assert!(replay(&reg, &record).is_ok());

        // A tampered trace is NOT a divergence for a relaxed record: the
        // schedule (and hence the trace) is deliberately unpinned.
        let mut loose = record.clone();
        loose.trace.checks += 1;
        loose.trace.depth += 3;
        assert!(replay(&reg, &loose).is_ok());

        // The answer still is.
        let mut bad = record;
        bad.answer[0].1 = Value::Num(-1.0);
        assert!(matches!(
            replay(&reg, &bad),
            Err(ReplayError::AnswerMismatch { .. })
        ));
    }

    #[test]
    fn log_appends_and_reads_back() {
        let reg = toy_registry();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ri-witness-test-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let log = WitnessLog::open(&path).unwrap();
        let records: Vec<WitnessRecord> = (0..5)
            .map(|i| WitnessRecord::from_response(&toy_response(&reg, 8 + i, i as u64, 1), "s0"))
            .collect();
        for r in &records {
            log.append(r).unwrap();
        }
        assert_eq!(log.appended(), 5);
        let loaded = read_log(&path).unwrap();
        assert_eq!(loaded, records);
        for r in &loaded {
            assert!(replay(&reg, r).is_ok());
        }
        // A corrupted line fails the whole load.
        std::fs::write(&path, "not json\n").unwrap();
        assert!(read_log(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    /// Serve a toy session of `counts` batches through the registry's
    /// fallback incremental path, producing one record per batch.
    fn toy_stream(reg: &Registry, counts: &[usize]) -> Vec<StreamBatchRecord> {
        toy_stream_cfg(reg, counts, RunConfig::new().seed(9))
    }

    fn toy_stream_cfg(
        reg: &Registry,
        counts: &[usize],
        config: RunConfig,
    ) -> Vec<StreamBatchRecord> {
        let spec = StreamSpec {
            problem: "toy".into(),
            workload: WorkloadSpec::new(counts.iter().sum(), 3),
            config,
            session_id: None,
        };
        let mut inc = reg
            .construct_incremental(&spec.problem, &spec.workload)
            .unwrap();
        counts
            .iter()
            .map(|&count| {
                let (delta, _) = inc.feed(count, &spec.config).unwrap();
                StreamBatchRecord {
                    session: "rs-1".into(),
                    spec: spec.clone(),
                    shard: "s0".into(),
                    delta,
                }
            })
            .collect()
    }

    #[test]
    fn stream_record_round_trips_and_tags() {
        let reg = toy_registry();
        let records = toy_stream(&reg, &[4, 3, 5]);
        for r in &records {
            assert!(r.to_json().starts_with("{\"kind\":\"stream-batch\""));
            assert_eq!(StreamBatchRecord::from_json(&r.to_json()).unwrap(), *r);
        }
        // The tag is required; a solve record does not parse as a stream one.
        let solve = WitnessRecord::from_response(&toy_response(&reg, 8, 1, 2), "s0");
        assert!(StreamBatchRecord::from_json(&solve.to_json()).is_err());
        // The denormalized seed member is checked, as for solve records.
        let tampered = records[0].to_json().replace(
            "\"seed\":{\"workload\":3,\"config\":9}",
            "\"seed\":{\"workload\":4,\"config\":9}",
        );
        assert!(StreamBatchRecord::from_json(&tampered).is_err());
    }

    #[test]
    fn mixed_log_reads_back_both_kinds() {
        let reg = toy_registry();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ri-witness-mixed-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let log = WitnessLog::open(&path).unwrap();
        let solve = WitnessRecord::from_response(&toy_response(&reg, 8, 1, 2), "s0");
        let stream = toy_stream(&reg, &[2, 2]);
        log.append(&solve).unwrap();
        log.append_stream(&stream[0]).unwrap();
        log.append_stream(&stream[1]).unwrap();
        assert_eq!(log.appended(), 3);
        let entries = read_any_log(&path).unwrap();
        assert_eq!(
            entries,
            vec![
                LogEntry::Solve(solve),
                LogEntry::Stream(stream[0].clone()),
                LogEntry::Stream(stream[1].clone()),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_replay_accepts_faithful_records_and_rejects_tampered_ones() {
        let reg = toy_registry();
        let records = toy_stream(&reg, &[4, 3, 5]);
        assert!(replay_stream(&reg, &records).is_ok());

        // Tampered delta → DeltaMismatch at the right batch.
        let mut bad = records.clone();
        bad[1].delta.trace.checks += 1;
        assert!(matches!(
            replay_stream(&reg, &bad),
            Err(ReplayError::DeltaMismatch { batch: 1, .. })
        ));

        // A gap in the batch sequence → BadStream.
        let gappy = vec![records[0].clone(), records[2].clone()];
        assert!(matches!(
            replay_stream(&reg, &gappy),
            Err(ReplayError::BadStream { .. })
        ));

        // Mixed sessions → BadStream.
        let mut mixed = records;
        mixed[2].session = "rs-2".into();
        assert!(matches!(
            replay_stream(&reg, &mixed),
            Err(ReplayError::BadStream { .. })
        ));

        // Empty input → BadStream.
        assert!(matches!(
            replay_stream(&reg, &[]),
            Err(ReplayError::BadStream { .. })
        ));
    }

    #[test]
    fn relaxed_stream_replay_ignores_traces_but_not_answers() {
        let reg = toy_registry();
        let cfg = RunConfig::new().seed(9).relaxed(4);
        let records = toy_stream_cfg(&reg, &[4, 3, 5], cfg);
        assert!(replay_stream(&reg, &records).is_ok());

        // A relaxed session's trace is free; only non-trace fields gate.
        let mut loose = records.clone();
        loose[1].delta.trace.checks += 1;
        assert!(replay_stream(&reg, &loose).is_ok());

        let mut bad = records;
        bad[2].delta.answer.push(("extra".into(), Value::Num(1.0)));
        assert!(matches!(
            replay_stream(&reg, &bad),
            Err(ReplayError::DeltaMismatch { batch: 2, .. })
        ));
    }

    #[test]
    fn witness_key_covers_the_determinism_inputs_only() {
        let w = WorkloadSpec::new(64, 3);
        let base = RunConfig::new().seed(5);
        let k = witness_key("sort", &w, &base);
        // Seeds, mode, problem and workload all key.
        assert_ne!(k, witness_key("scc", &w, &base));
        assert_ne!(k, witness_key("sort", &WorkloadSpec::new(64, 4), &base));
        assert_ne!(k, witness_key("sort", &w, &base.clone().seed(6)));
        assert_ne!(k, witness_key("sort", &w, &base.clone().sequential()));
        assert_ne!(k, witness_key("sort", &w, &base.clone().instrument(false)));
        // Thread width does not: answers and traces are width-invariant.
        assert_eq!(k, witness_key("sort", &w, &base.threads(8)));
    }
}
