//! The streaming-session envelope: the typed shapes every online
//! transport speaks.
//!
//! The paper's algorithms are randomized *incremental* constructions —
//! the instance is fixed up front, a random permutation of it is drawn,
//! and elements are absorbed prefix by prefix. One-shot `/solve` throws
//! that structure away at the API boundary; this module keeps it:
//!
//! * [`StreamSpec`] — opens a session: problem name + [`WorkloadSpec`]
//!   (whose `n` is the session's **capacity**, the size of the full,
//!   fixed instance) + [`RunConfig`], with the same JSON defaulting
//!   rules as [`ServeRequest`](super::envelope::ServeRequest). The full
//!   instance is constructed at open; batches then reveal successive
//!   *prefixes* of it. That is what makes streaming deterministic: the
//!   state after absorbing `k` elements is exactly the one-shot solve of
//!   the first `k`, whatever the batch partition — the batch-split
//!   invariance the proptests assert.
//! * [`BatchRequest`] — appends the next `count` elements of the
//!   instance to the session.
//! * [`BatchDelta`] — what one batch changed: a problem-specific delta
//!   object, the current mode-invariant answer, and the deterministic
//!   per-batch [`RoundTrace`] — everything the witness log needs to
//!   replay the batch bit-identically.
//! * [`FeedState`] — the bookkeeping every incremental adapter shares
//!   (capacity, absorbed prefix, batch numbering, overfeed rejection).
//!
//! The object-safe [`ErasedIncremental`](super::registry::ErasedIncremental)
//! trait these types feed lives in the registry module, next to its
//! one-shot sibling [`ErasedProblem`](super::registry::ErasedProblem).

use super::envelope::{ServeError, ServeRequest};
use super::json::{self, Value};
use super::registry::{OutputSummary, WorkloadSpec};
use super::report::RunReport;
use super::runner::RunConfig;
use super::witness::RoundTrace;

/// Opens a streaming session: which problem, the full instance the
/// session will reveal batch by batch (`workload.n` is the capacity),
/// and the config every batch solves under.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// The registered problem name.
    pub problem: String,
    /// The full instance's generator parameters; `n` is the session
    /// capacity (total elements the stream will ever absorb).
    pub workload: WorkloadSpec,
    /// Execution configuration for every batch.
    pub config: RunConfig,
    /// Optional caller-chosen session id (a router assigns one so it can
    /// consistent-hash the session before the backend exists; replay
    /// reuses one to rebuild a session under its original name). `None`
    /// lets the server pick.
    pub session_id: Option<String>,
}

impl StreamSpec {
    /// A spec for `problem` with default workload and config.
    pub fn new(problem: impl Into<String>) -> Self {
        let req = ServeRequest::new(problem);
        StreamSpec {
            problem: req.problem,
            workload: req.workload,
            config: req.config,
            session_id: None,
        }
    }

    /// Parse from JSON text with the envelope's shared defaulting rules
    /// (absent sections take their defaults, seeds must stay below 2⁵³)
    /// plus one stream-specific check: capacity must be positive — a
    /// session that can never absorb anything is a caller error.
    pub fn from_json(text: &str) -> Result<StreamSpec, ServeError> {
        let v = json::parse(text).map_err(|e| ServeError::bad_request(format!("bad JSON: {e}")))?;
        Self::from_value(&v)
    }

    /// Parse from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<StreamSpec, ServeError> {
        let req = ServeRequest::from_value(v)?;
        let session_id = match v.get("session_id") {
            None | Some(Value::Null) => None,
            Some(Value::Str(s)) if !s.is_empty() && s.len() <= 128 => Some(s.clone()),
            Some(Value::Str(_)) => {
                return Err(ServeError::bad_request(
                    "`session_id` must be 1..=128 characters",
                ))
            }
            Some(_) => return Err(ServeError::bad_request("`session_id` must be a string")),
        };
        if req.workload.n == 0 {
            return Err(ServeError::bad_request(
                "a stream needs capacity: workload.n must be positive",
            ));
        }
        Ok(StreamSpec {
            problem: req.problem,
            workload: req.workload,
            config: req.config,
            session_id,
        })
    }

    /// The spec as a JSON [`Value`] (`session_id` omitted when unset).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("problem".to_string(), Value::Str(self.problem.clone())),
            ("workload".to_string(), self.workload.to_value()),
            ("config".to_string(), self.config.to_value()),
        ];
        if let Some(id) = &self.session_id {
            members.push(("session_id".into(), Value::Str(id.clone())));
        }
        Value::Obj(members)
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }
}

/// Appends the next `count` elements of the session's fixed instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRequest {
    /// How many elements to absorb (must be positive and fit in the
    /// remaining capacity).
    pub count: usize,
}

impl BatchRequest {
    /// A request absorbing `count` elements.
    pub fn new(count: usize) -> Self {
        BatchRequest { count }
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<BatchRequest, ServeError> {
        let v = json::parse(text).map_err(|e| ServeError::bad_request(format!("bad JSON: {e}")))?;
        Self::from_value(&v)
    }

    /// Parse from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<BatchRequest, ServeError> {
        let count = v
            .get("count")
            .and_then(Value::as_usize)
            .ok_or_else(|| ServeError::bad_request("batch needs a non-negative `count` field"))?;
        if count == 0 {
            return Err(ServeError::bad_request("batch `count` must be positive"));
        }
        Ok(BatchRequest { count })
    }

    /// The request as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![("count".into(), Value::Num(self.count as f64))])
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }
}

/// What one batch changed: position in the stream, a problem-specific
/// delta, the current answer, and the deterministic per-batch trace.
///
/// Deltas are part of the determinism contract: for a fixed
/// [`StreamSpec`] and batch sequence, every field here is bit-identical
/// across machines, pool widths and repetitions — which is what lets the
/// witness log record them and `ri witness replay` re-feed the exact
/// batch sequence and compare with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDelta {
    /// 0-based batch index within the session.
    pub batch: usize,
    /// Elements absorbed by this batch.
    pub count: usize,
    /// Total elements absorbed after this batch.
    pub cumulative: usize,
    /// The session's capacity (the full instance size).
    pub capacity: usize,
    /// Whether the stream is complete (`cumulative == capacity`); the
    /// answer then equals the one-shot solve of the full instance.
    pub complete: bool,
    /// Whether the prefix is still below the problem's minimum instance
    /// size — nothing was solved and `delta`/`answer`/`trace` are empty.
    pub pending: bool,
    /// Problem-specific delta object (sorted-rank insertions, Delaunay
    /// edge diffs, the running closest pair, SCC relabel counts, or the
    /// generic fallback's changed-answer-keys digest).
    pub delta: Value,
    /// The current mode-invariant answer fields (the one-shot answer of
    /// the absorbed prefix).
    pub answer: Vec<(String, Value)>,
    /// The deterministic round trace of this batch's advance.
    pub trace: RoundTrace,
}

impl BatchDelta {
    /// A delta for a prefix still below the problem's minimum size:
    /// nothing ran, the batch was absorbed into the pending prefix.
    pub fn pending(batch: usize, count: usize, cumulative: usize, capacity: usize) -> Self {
        BatchDelta {
            batch,
            count,
            cumulative,
            capacity,
            complete: cumulative == capacity,
            pending: true,
            delta: Value::Obj(Vec::new()),
            answer: Vec::new(),
            trace: RoundTrace::default(),
        }
    }

    /// A delta for a solved prefix: problem-specific `delta` plus the
    /// prefix's answer and the batch's deterministic trace.
    pub fn solved(
        batch: usize,
        count: usize,
        cumulative: usize,
        capacity: usize,
        delta: Value,
        summary: &OutputSummary,
        report: &RunReport,
    ) -> Self {
        BatchDelta {
            batch,
            count,
            cumulative,
            capacity,
            complete: cumulative == capacity,
            pending: false,
            delta,
            answer: summary.answer().to_vec(),
            trace: RoundTrace::from_report(report),
        }
    }

    /// The delta as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("batch".into(), Value::Num(self.batch as f64)),
            ("count".into(), Value::Num(self.count as f64)),
            ("cumulative".into(), Value::Num(self.cumulative as f64)),
            ("capacity".into(), Value::Num(self.capacity as f64)),
            ("complete".into(), Value::Bool(self.complete)),
            ("pending".into(), Value::Bool(self.pending)),
            ("delta".into(), self.delta.clone()),
            ("answer".into(), Value::Obj(self.answer.clone())),
            ("trace".into(), self.trace.to_value()),
        ])
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse a delta back from its JSON form.
    pub fn from_json(text: &str) -> Result<BatchDelta, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a delta from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<BatchDelta, json::ParseError> {
        let bad = |key: &str| json::ParseError {
            message: format!("malformed batch delta field `{key}`"),
            at: 0,
        };
        let field = |key: &str| {
            v.get(key).ok_or_else(|| json::ParseError {
                message: format!("batch delta missing field `{key}`"),
                at: 0,
            })
        };
        let num = |key: &str| field(key)?.as_usize().ok_or_else(|| bad(key));
        let flag = |key: &str| match field(key)? {
            Value::Bool(b) => Ok(*b),
            _ => Err(bad(key)),
        };
        let answer = match field("answer")? {
            Value::Obj(members) => members.clone(),
            _ => return Err(bad("answer")),
        };
        Ok(BatchDelta {
            batch: num("batch")?,
            count: num("count")?,
            cumulative: num("cumulative")?,
            capacity: num("capacity")?,
            complete: flag("complete")?,
            pending: flag("pending")?,
            delta: field("delta")?.clone(),
            answer,
            trace: RoundTrace::from_value(field("trace")?)?,
        })
    }
}

/// The prefix bookkeeping every incremental adapter shares: capacity,
/// elements absorbed so far, and batch numbering — with the overfeed and
/// empty-batch rejections standardized in one place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedState {
    capacity: usize,
    absorbed: usize,
    batches: usize,
}

impl FeedState {
    /// A fresh state for a session of `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        FeedState {
            capacity,
            absorbed: 0,
            batches: 0,
        }
    }

    /// The session's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements absorbed so far.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Batches fed so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Absorb `count` elements: returns `(batch_index, lo, hi)` — the
    /// 0-based batch number and the revealed half-open prefix range —
    /// or an error for an empty batch or one past the capacity.
    pub fn advance(&mut self, count: usize) -> Result<(usize, usize, usize), String> {
        if count == 0 {
            return Err("batch count must be positive".into());
        }
        let lo = self.absorbed;
        let hi = lo.checked_add(count).filter(|&hi| hi <= self.capacity);
        let hi = hi.ok_or_else(|| {
            format!(
                "batch of {count} overruns the stream: {lo} of {} absorbed, {} remain",
                self.capacity,
                self.capacity - lo
            )
        })?;
        let batch = self.batches;
        self.absorbed = hi;
        self.batches += 1;
        Ok((batch, lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;

    #[test]
    fn stream_spec_round_trips_and_validates() {
        let mut spec = StreamSpec::new("sort");
        spec.workload = WorkloadSpec::new(96, 5).shape("uniform-disk");
        spec.config = RunConfig::new().seed(3).threads(2);
        spec.session_id = Some("rs-1".into());
        let back = StreamSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        // session_id is optional and omitted when unset.
        spec.session_id = None;
        assert!(!spec.to_json().contains("session_id"));
        assert_eq!(StreamSpec::from_json(&spec.to_json()).unwrap(), spec);

        // Zero capacity and malformed ids are rejected.
        let err =
            StreamSpec::from_json("{\"problem\":\"sort\",\"workload\":{\"n\":0}}").unwrap_err();
        assert!(err.message.contains("capacity"));
        assert!(
            StreamSpec::from_json("{\"problem\":\"sort\",\"session_id\":7}").is_err(),
            "non-string id"
        );
        assert!(
            StreamSpec::from_json("{\"problem\":\"sort\",\"session_id\":\"\"}").is_err(),
            "empty id"
        );
    }

    #[test]
    fn batch_request_parses_and_rejects() {
        let req = BatchRequest::from_json("{\"count\":8}").unwrap();
        assert_eq!(req, BatchRequest::new(8));
        assert_eq!(BatchRequest::from_json(&req.to_json()).unwrap(), req);
        assert!(BatchRequest::from_json("{\"count\":0}").is_err());
        assert!(BatchRequest::from_json("{\"count\":-3}").is_err());
        assert!(BatchRequest::from_json("{}").is_err());
    }

    #[test]
    fn batch_delta_round_trips() {
        let mut summary = OutputSummary::new();
        summary
            .answer_num("items", 24.0)
            .answer_bool("sorted", true);
        summary.metric_num("noise", 1.0);
        let mut report = RunReport::new("demo");
        report.mode = ExecMode::Parallel;
        report.record_round(8, 31);
        report.depth = 4;
        report.checks = 31;
        report.wall_seconds = 0.5; // must not leak into the trace
        let delta = BatchDelta::solved(
            2,
            8,
            24,
            24,
            Value::Obj(vec![("inserted".into(), Value::Num(8.0))]),
            &summary,
            &report,
        );
        assert!(delta.complete);
        assert!(!delta.pending);
        assert_eq!(delta.answer.len(), 2, "metrics stay out of the answer");
        let back = BatchDelta::from_json(&delta.to_json()).unwrap();
        assert_eq!(back, delta);

        let pending = BatchDelta::pending(0, 1, 1, 24);
        assert!(pending.pending && !pending.complete);
        assert_eq!(BatchDelta::from_json(&pending.to_json()).unwrap(), pending);
        assert!(BatchDelta::from_json("{}").is_err());
    }

    #[test]
    fn feed_state_numbers_batches_and_rejects_overfeed() {
        let mut state = FeedState::new(10);
        assert_eq!(state.advance(4).unwrap(), (0, 0, 4));
        assert_eq!(state.advance(5).unwrap(), (1, 4, 9));
        assert!(state.advance(0).is_err(), "empty batch");
        assert!(state.advance(2).is_err(), "overfeed");
        assert_eq!(state.advance(1).unwrap(), (2, 9, 10));
        assert_eq!(state.absorbed(), 10);
        assert_eq!(state.batches(), 3);
        assert!(state.advance(1).is_err(), "stream already complete");
    }
}
