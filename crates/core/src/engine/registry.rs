//! The object-safe problem registry.
//!
//! The typed [`Problem`](super::Problem) trait is the right API *inside* an
//! algorithm crate — each problem has its own output type — but every
//! cross-algorithm consumer (the `ri` CLI driver, the bench report
//! binaries, a serving endpoint) needs the opposite: pick a problem **by
//! name at runtime**, build a workload for it, solve it under a
//! [`RunConfig`], and get back something uniform. This module provides that
//! layer:
//!
//! * [`WorkloadSpec`] — generator parameters (size, seed, shape, numeric
//!   parameter) each algorithm crate knows how to turn into an instance;
//! * [`ErasedProblem`] — the object-safe problem trait: `solve_erased`
//!   returns an [`OutputSummary`] (a small JSON-able digest of the
//!   algorithm's answer) plus the unified [`RunReport`];
//! * [`Registry`] — an ordered name → constructor map. Each algorithm
//!   crate contributes a `register(&mut Registry)` function; the root
//!   `parallel-ri` crate assembles them all into `parallel_ri::registry()`
//!   (a crate that cannot depend on the algorithm crates cannot construct
//!   their problems, so the fully-populated registry lives one layer up).
//!
//! ```
//! use ri_core::engine::registry::{
//!     ErasedProblem, OutputSummary, Registry, WorkloadSpec,
//! };
//! use ri_core::engine::{RunConfig, RunReport};
//!
//! struct CountUp(usize);
//! impl ErasedProblem for CountUp {
//!     fn name(&self) -> &str {
//!         "count-up"
//!     }
//!     fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
//!         let mut report = RunReport::new("count-up");
//!         report.items = self.0;
//!         let mut summary = OutputSummary::new();
//!         summary.answer_num("sum", (0..self.0).sum::<usize>() as f64);
//!         (summary, report)
//!     }
//! }
//!
//! let mut reg = Registry::new();
//! reg.register("count-up", "sums 0..n", |spec| Ok(Box::new(CountUp(spec.n))));
//! let spec = WorkloadSpec::new(10, 1);
//! let (summary, report) = reg.solve("count-up", &spec, &RunConfig::new()).unwrap();
//! assert_eq!(report.items, 10);
//! assert!(summary.to_json().contains("\"sum\":45"));
//! ```

use super::json::{self, Value};
use super::report::RunReport;
use super::runner::RunConfig;

/// Generator parameters for one workload instance: everything an algorithm
/// crate needs to construct a problem of its kind. The same spec given to
/// the same constructor always builds the same instance (all generators
/// are seeded).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Instance size (keys, points, constraints, vertices — the problem's
    /// natural item count).
    pub n: usize,
    /// Workload seed: drives the input generator (distinct from
    /// [`RunConfig::seed`], which drives run-time randomness such as
    /// insertion orders drawn at solve time).
    pub seed: u64,
    /// Input shape: a point-distribution name (`"uniform-square"`,
    /// `"near-circle"`, ...), an LP workload (`"tangent"`, `"shrinking"`,
    /// `"infeasible"`) or a graph family (`"gnm"`, `"gnm-weighted"`,
    /// `"dag"`, `"rmat"`, `"grid"`). `None` picks the problem's default.
    pub shape: Option<String>,
    /// Shape-specific numeric parameter: average degree for graph
    /// workloads, dimension for `lp-d`. `None` picks the default.
    pub param: Option<f64>,
}

impl WorkloadSpec {
    /// A spec of size `n` with workload seed `seed` and default shape.
    pub fn new(n: usize, seed: u64) -> Self {
        WorkloadSpec {
            n,
            seed,
            shape: None,
            param: None,
        }
    }

    /// Set the input shape name.
    pub fn shape(mut self, shape: impl Into<String>) -> Self {
        self.shape = Some(shape.into());
        self
    }

    /// Set the shape-specific numeric parameter.
    pub fn param(mut self, param: f64) -> Self {
        self.param = Some(param);
        self
    }

    /// The shape name, or `default` when unset.
    pub fn shape_or<'a>(&'a self, default: &'a str) -> &'a str {
        self.shape.as_deref().unwrap_or(default)
    }

    /// The numeric parameter, or `default` when unset.
    pub fn param_or(&self, default: f64) -> f64 {
        self.param.unwrap_or(default)
    }

    /// Serialize to a single-line JSON object (unset fields are omitted).
    ///
    /// JSON numbers are f64, so seeds at or above 2⁵³ may not round-trip
    /// exactly; the envelope layer rejects them at the door.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// The spec as a JSON [`Value`] (unset fields are omitted).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("n".to_string(), Value::Num(self.n as f64)),
            ("seed".to_string(), Value::Num(self.seed as f64)),
        ];
        if let Some(shape) = &self.shape {
            members.push(("shape".into(), Value::Str(shape.clone())));
        }
        if let Some(param) = self.param {
            members.push(("param".into(), Value::Num(param)));
        }
        Value::Obj(members)
    }

    /// Parse a spec from JSON; missing fields fall back to
    /// `WorkloadSpec::new(default_n, default_seed)` defaults, mirroring
    /// [`RunConfig::from_json`]'s tolerance.
    pub fn from_json(text: &str) -> Result<WorkloadSpec, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a spec from an already-parsed JSON object.
    pub fn from_value(v: &Value) -> Result<WorkloadSpec, json::ParseError> {
        let bad = |key: &str| json::ParseError {
            message: format!("malformed workload field `{key}`"),
            at: 0,
        };
        let mut spec = WorkloadSpec::new(0, 0);
        if let Some(n) = v.get("n") {
            spec.n = n.as_usize().ok_or_else(|| bad("n"))?;
        }
        if let Some(seed) = v.get("seed") {
            spec.seed = seed.as_u64().ok_or_else(|| bad("seed"))?;
        }
        match v.get("shape") {
            None | Some(Value::Null) => {}
            Some(shape) => {
                spec.shape = Some(shape.as_str().ok_or_else(|| bad("shape"))?.to_string());
            }
        }
        match v.get("param") {
            None | Some(Value::Null) => {}
            Some(param) => {
                spec.param = Some(param.as_f64().ok_or_else(|| bad("param"))?);
            }
        }
        Ok(spec)
    }
}

/// A small JSON-able digest of an algorithm's answer, split into two
/// sections:
///
/// * **answer** fields digest the output itself (triangle count, SCC
///   count, optimum value, a checksum of the sorted order, ...). The
///   paper's executors reproduce the sequential output exactly, so answer
///   fields are **mode-invariant**: a sequential and a parallel run of the
///   same instance must produce equal answer sections — the registry
///   equivalence tests assert exactly this.
/// * **metric** fields carry work measures that legitimately vary between
///   modes (e.g. the Type 3 redundant work).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSummary {
    answer: Vec<(String, Value)>,
    metrics: Vec<(String, Value)>,
}

impl OutputSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric answer field (mode-invariant).
    pub fn answer_num(&mut self, key: &str, x: f64) -> &mut Self {
        self.answer.push((key.to_string(), Value::Num(x)));
        self
    }

    /// Add a boolean answer field (mode-invariant).
    pub fn answer_bool(&mut self, key: &str, b: bool) -> &mut Self {
        self.answer.push((key.to_string(), Value::Bool(b)));
        self
    }

    /// Add a string answer field (mode-invariant).
    pub fn answer_str(&mut self, key: &str, s: impl Into<String>) -> &mut Self {
        self.answer.push((key.to_string(), Value::Str(s.into())));
        self
    }

    /// Add a numeric metric field (may vary between modes).
    pub fn metric_num(&mut self, key: &str, x: f64) -> &mut Self {
        self.metrics.push((key.to_string(), Value::Num(x)));
        self
    }

    /// The answer section (mode-invariant digest fields).
    pub fn answer(&self) -> &[(String, Value)] {
        &self.answer
    }

    /// The metrics section (mode-dependent work measures).
    pub fn metrics(&self) -> &[(String, Value)] {
        &self.metrics
    }

    /// The summary as a JSON [`Value`]:
    /// `{"answer": {...}, "metrics": {...}}`.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("answer".into(), Value::Obj(self.answer.clone())),
            ("metrics".into(), Value::Obj(self.metrics.clone())),
        ])
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse a summary back from its [`OutputSummary::to_value`] shape
    /// (`{"answer": {...}, "metrics": {...}}`) — what lets a serve client
    /// reconstruct a typed response from the wire.
    pub fn from_value(v: &Value) -> Result<OutputSummary, json::ParseError> {
        let section = |key: &str| match v.get(key) {
            Some(Value::Obj(members)) => Ok(members.clone()),
            _ => Err(json::ParseError {
                message: format!("summary needs an object `{key}` section"),
                at: 0,
            }),
        };
        Ok(OutputSummary {
            answer: section("answer")?,
            metrics: section("metrics")?,
        })
    }
}

/// The object-safe problem trait: what the registry, the `ri` CLI driver,
/// and any serving layer program against. Implementations own their input
/// (they are constructed from a [`WorkloadSpec`]) and typically delegate
/// `solve_erased` to the crate's typed [`Problem`](super::Problem),
/// digesting its output into an [`OutputSummary`].
pub trait ErasedProblem: Send + Sync {
    /// The registered problem name (`"sort"`, `"delaunay"`, ...).
    fn name(&self) -> &str;

    /// Solve under `cfg`, returning the output digest and the unified
    /// report.
    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport);
}

/// Why a registry lookup or construction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No problem registered under the requested name; carries the known
    /// names for the error message.
    UnknownProblem {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in registration order.
        known: Vec<String>,
    },
    /// The constructor rejected the workload spec (bad shape name, size
    /// below the problem's minimum, ...).
    BadWorkload {
        /// The problem whose constructor rejected the spec.
        name: String,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownProblem { name, known } => {
                write!(f, "unknown problem `{name}`; known: {}", known.join(", "))
            }
            RegistryError::BadWorkload { name, message } => {
                write!(f, "bad workload for `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Shorthand for a constructor's result.
pub type ConstructResult = Result<Box<dyn ErasedProblem>, String>;

type Constructor = Box<dyn Fn(&WorkloadSpec) -> ConstructResult + Send + Sync>;

struct RegistryEntry {
    name: &'static str,
    description: &'static str,
    ctor: Constructor,
}

/// An ordered problem-name → constructor map. Names are unique;
/// registration order is preserved (it is the order `names()` lists and
/// the CLI's `--list` prints).
#[derive(Default)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` with a workload constructor.
    ///
    /// Panics on a duplicate name — registrations are static per-crate
    /// lists, so a clash is a programming error, not an input error.
    pub fn register(
        &mut self,
        name: &'static str,
        description: &'static str,
        ctor: impl Fn(&WorkloadSpec) -> ConstructResult + Send + Sync + 'static,
    ) {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "problem `{name}` registered twice"
        );
        self.entries.push(RegistryEntry {
            name,
            description,
            ctor: Box::new(ctor),
        });
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// `(name, description)` pairs, in registration order.
    pub fn descriptions(&self) -> Vec<(&'static str, &'static str)> {
        self.entries
            .iter()
            .map(|e| (e.name, e.description))
            .collect()
    }

    /// Number of registered problems.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no problems are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Construct `name`'s problem instance from `spec`.
    pub fn construct(
        &self,
        name: &str,
        spec: &WorkloadSpec,
    ) -> Result<Box<dyn ErasedProblem>, RegistryError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| RegistryError::UnknownProblem {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })?;
        (entry.ctor)(spec).map_err(|message| RegistryError::BadWorkload {
            name: name.to_string(),
            message,
        })
    }

    /// Construct and solve in one step.
    pub fn solve(
        &self,
        name: &str,
        spec: &WorkloadSpec,
        cfg: &RunConfig,
    ) -> Result<(OutputSummary, RunReport), RegistryError> {
        Ok(self.construct(name, spec)?.solve_erased(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl ErasedProblem for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn solve_erased(&self, _cfg: &RunConfig) -> (OutputSummary, RunReport) {
            let mut s = OutputSummary::new();
            s.answer_num("x", 1.0).metric_num("work", 9.0);
            (s, RunReport::new("fixed"))
        }
    }

    fn reg() -> Registry {
        let mut r = Registry::new();
        r.register("fixed", "a fixed answer", |spec| {
            if spec.n == 0 {
                Err("n must be positive".into())
            } else {
                Ok(Box::new(Fixed))
            }
        });
        r
    }

    #[test]
    fn lookup_and_solve() {
        let r = reg();
        assert_eq!(r.names(), vec!["fixed"]);
        let (summary, report) = r
            .solve("fixed", &WorkloadSpec::new(4, 0), &RunConfig::new())
            .unwrap();
        assert_eq!(report.algorithm, "fixed");
        assert_eq!(summary.answer().len(), 1);
        assert_eq!(
            summary.to_json(),
            "{\"answer\":{\"x\":1},\"metrics\":{\"work\":9}}"
        );
    }

    #[test]
    fn unknown_name_lists_known() {
        let r = reg();
        let err = r
            .solve("nope", &WorkloadSpec::new(4, 0), &RunConfig::new())
            .unwrap_err();
        assert!(err.to_string().contains("unknown problem `nope`"));
        assert!(err.to_string().contains("fixed"));
    }

    #[test]
    fn constructor_errors_surface() {
        let r = reg();
        let err = r
            .construct("fixed", &WorkloadSpec::new(0, 0))
            .err()
            .unwrap();
        assert_eq!(
            err.to_string(),
            "bad workload for `fixed`: n must be positive"
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = reg();
        r.register("fixed", "again", |_| Ok(Box::new(Fixed)));
    }

    #[test]
    fn workload_spec_json_round_trip() {
        let spec = WorkloadSpec::new(1000, 7).shape("near-circle").param(4.0);
        let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let sparse = WorkloadSpec::from_json("{\"n\":32}").unwrap();
        assert_eq!(sparse, WorkloadSpec::new(32, 0));
        assert!(WorkloadSpec::from_json("{\"n\":-3}").is_err());
        assert!(WorkloadSpec::from_json("{\"shape\":7}").is_err());
    }
}
