//! The object-safe problem registry.
//!
//! The typed [`Problem`](super::Problem) trait is the right API *inside* an
//! algorithm crate — each problem has its own output type — but every
//! cross-algorithm consumer (the `ri` CLI driver, the bench report
//! binaries, a serving endpoint) needs the opposite: pick a problem **by
//! name at runtime**, build a workload for it, solve it under a
//! [`RunConfig`], and get back something uniform. This module provides that
//! layer:
//!
//! * [`WorkloadSpec`] — generator parameters (size, seed, shape, numeric
//!   parameter) each algorithm crate knows how to turn into an instance;
//! * [`ErasedProblem`] — the object-safe problem trait: `solve_erased`
//!   returns an [`OutputSummary`] (a small JSON-able digest of the
//!   algorithm's answer) plus the unified [`RunReport`];
//! * [`Registry`] — an ordered name → constructor map. Each algorithm
//!   crate contributes a `register(&mut Registry)` function; the root
//!   `parallel-ri` crate assembles them all into `parallel_ri::registry()`
//!   (a crate that cannot depend on the algorithm crates cannot construct
//!   their problems, so the fully-populated registry lives one layer up).
//!
//! ```
//! use ri_core::engine::registry::{
//!     ErasedProblem, OutputSummary, Registry, WorkloadSpec,
//! };
//! use ri_core::engine::{RunConfig, RunReport};
//!
//! struct CountUp(usize);
//! impl ErasedProblem for CountUp {
//!     fn name(&self) -> &str {
//!         "count-up"
//!     }
//!     fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
//!         let mut report = RunReport::new("count-up");
//!         report.items = self.0;
//!         let mut summary = OutputSummary::new();
//!         summary.answer_num("sum", (0..self.0).sum::<usize>() as f64);
//!         (summary, report)
//!     }
//! }
//!
//! let mut reg = Registry::new();
//! reg.register("count-up", "sums 0..n", |spec| Ok(Box::new(CountUp(spec.n))));
//! let spec = WorkloadSpec::new(10, 1);
//! let (summary, report) = reg.solve("count-up", &spec, &RunConfig::new()).unwrap();
//! assert_eq!(report.items, 10);
//! assert!(summary.to_json().contains("\"sum\":45"));
//! ```

use super::json::{self, Value};
use super::report::RunReport;
use super::runner::RunConfig;
use super::session::{BatchDelta, FeedState};
use std::sync::Arc;

/// Generator parameters for one workload instance: everything an algorithm
/// crate needs to construct a problem of its kind. The same spec given to
/// the same constructor always builds the same instance (all generators
/// are seeded).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Instance size (keys, points, constraints, vertices — the problem's
    /// natural item count).
    pub n: usize,
    /// Workload seed: drives the input generator (distinct from
    /// [`RunConfig::seed`], which drives run-time randomness such as
    /// insertion orders drawn at solve time).
    pub seed: u64,
    /// Input shape: a point-distribution name (`"uniform-square"`,
    /// `"near-circle"`, ...), an LP workload (`"tangent"`, `"shrinking"`,
    /// `"infeasible"`) or a graph family (`"gnm"`, `"gnm-weighted"`,
    /// `"dag"`, `"rmat"`, `"grid"`). `None` picks the problem's default.
    pub shape: Option<String>,
    /// Shape-specific numeric parameter: average degree for graph
    /// workloads, dimension for `lp-d`. `None` picks the default.
    pub param: Option<f64>,
}

impl WorkloadSpec {
    /// A spec of size `n` with workload seed `seed` and default shape.
    pub fn new(n: usize, seed: u64) -> Self {
        WorkloadSpec {
            n,
            seed,
            shape: None,
            param: None,
        }
    }

    /// Set the input shape name.
    pub fn shape(mut self, shape: impl Into<String>) -> Self {
        self.shape = Some(shape.into());
        self
    }

    /// Set the shape-specific numeric parameter.
    pub fn param(mut self, param: f64) -> Self {
        self.param = Some(param);
        self
    }

    /// The shape name, or `default` when unset.
    pub fn shape_or<'a>(&'a self, default: &'a str) -> &'a str {
        self.shape.as_deref().unwrap_or(default)
    }

    /// The numeric parameter, or `default` when unset.
    pub fn param_or(&self, default: f64) -> f64 {
        self.param.unwrap_or(default)
    }

    /// Serialize to a single-line JSON object (unset fields are omitted).
    ///
    /// JSON numbers are f64, so seeds at or above 2⁵³ may not round-trip
    /// exactly; the envelope layer rejects them at the door.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// The spec as a JSON [`Value`] (unset fields are omitted).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("n".to_string(), Value::Num(self.n as f64)),
            ("seed".to_string(), Value::Num(self.seed as f64)),
        ];
        if let Some(shape) = &self.shape {
            members.push(("shape".into(), Value::Str(shape.clone())));
        }
        if let Some(param) = self.param {
            members.push(("param".into(), Value::Num(param)));
        }
        Value::Obj(members)
    }

    /// Parse a spec from JSON; missing fields fall back to
    /// `WorkloadSpec::new(default_n, default_seed)` defaults, mirroring
    /// [`RunConfig::from_json`]'s tolerance.
    pub fn from_json(text: &str) -> Result<WorkloadSpec, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a spec from an already-parsed JSON object.
    pub fn from_value(v: &Value) -> Result<WorkloadSpec, json::ParseError> {
        let bad = |key: &str| json::ParseError {
            message: format!("malformed workload field `{key}`"),
            at: 0,
        };
        let mut spec = WorkloadSpec::new(0, 0);
        if let Some(n) = v.get("n") {
            spec.n = n.as_usize().ok_or_else(|| bad("n"))?;
        }
        if let Some(seed) = v.get("seed") {
            spec.seed = seed.as_u64().ok_or_else(|| bad("seed"))?;
        }
        match v.get("shape") {
            None | Some(Value::Null) => {}
            Some(shape) => {
                spec.shape = Some(shape.as_str().ok_or_else(|| bad("shape"))?.to_string());
            }
        }
        match v.get("param") {
            None | Some(Value::Null) => {}
            Some(param) => {
                let x = param.as_f64().ok_or_else(|| bad("param"))?;
                // The hand-rolled number parser accepts overflowing
                // literals like 1e999 as ±inf; a non-finite param must
                // never reach the constructors' casts (or the response
                // echo, which asserts finiteness when serializing).
                if !x.is_finite() {
                    return Err(json::ParseError {
                        message: format!("malformed workload field `param`: {x} is not finite"),
                        at: 0,
                    });
                }
                spec.param = Some(x);
            }
        }
        Ok(spec)
    }
}

/// A small JSON-able digest of an algorithm's answer, split into two
/// sections:
///
/// * **answer** fields digest the output itself (triangle count, SCC
///   count, optimum value, a checksum of the sorted order, ...). The
///   paper's executors reproduce the sequential output exactly, so answer
///   fields are **mode-invariant**: a sequential and a parallel run of the
///   same instance must produce equal answer sections — the registry
///   equivalence tests assert exactly this.
/// * **metric** fields carry work measures that legitimately vary between
///   modes (e.g. the Type 3 redundant work).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputSummary {
    answer: Vec<(String, Value)>,
    metrics: Vec<(String, Value)>,
}

impl OutputSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric answer field (mode-invariant).
    pub fn answer_num(&mut self, key: &str, x: f64) -> &mut Self {
        self.answer.push((key.to_string(), Value::Num(x)));
        self
    }

    /// Add a boolean answer field (mode-invariant).
    pub fn answer_bool(&mut self, key: &str, b: bool) -> &mut Self {
        self.answer.push((key.to_string(), Value::Bool(b)));
        self
    }

    /// Add a string answer field (mode-invariant).
    pub fn answer_str(&mut self, key: &str, s: impl Into<String>) -> &mut Self {
        self.answer.push((key.to_string(), Value::Str(s.into())));
        self
    }

    /// Add a numeric metric field (may vary between modes).
    pub fn metric_num(&mut self, key: &str, x: f64) -> &mut Self {
        self.metrics.push((key.to_string(), Value::Num(x)));
        self
    }

    /// The answer section (mode-invariant digest fields).
    pub fn answer(&self) -> &[(String, Value)] {
        &self.answer
    }

    /// The metrics section (mode-dependent work measures).
    pub fn metrics(&self) -> &[(String, Value)] {
        &self.metrics
    }

    /// The summary as a JSON [`Value`]:
    /// `{"answer": {...}, "metrics": {...}}`.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("answer".into(), Value::Obj(self.answer.clone())),
            ("metrics".into(), Value::Obj(self.metrics.clone())),
        ])
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse a summary back from its [`OutputSummary::to_value`] shape
    /// (`{"answer": {...}, "metrics": {...}}`) — what lets a serve client
    /// reconstruct a typed response from the wire.
    pub fn from_value(v: &Value) -> Result<OutputSummary, json::ParseError> {
        let section = |key: &str| match v.get(key) {
            Some(Value::Obj(members)) => Ok(members.clone()),
            _ => Err(json::ParseError {
                message: format!("summary needs an object `{key}` section"),
                at: 0,
            }),
        };
        Ok(OutputSummary {
            answer: section("answer")?,
            metrics: section("metrics")?,
        })
    }
}

/// The object-safe problem trait: what the registry, the `ri` CLI driver,
/// and any serving layer program against. Implementations own their input
/// (they are constructed from a [`WorkloadSpec`]) and typically delegate
/// `solve_erased` to the crate's typed [`Problem`](super::Problem),
/// digesting its output into an [`OutputSummary`].
pub trait ErasedProblem: Send + Sync {
    /// The registered problem name (`"sort"`, `"delaunay"`, ...).
    fn name(&self) -> &str;

    /// Solve under `cfg`, returning the output digest and the unified
    /// report.
    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport);
}

/// The object-safe **incremental** problem trait: a session-owned
/// instance that absorbs element batches online and advances its
/// randomized-incremental rounds prefix by prefix.
///
/// The contract mirrors the paper's setting: the full instance is fixed
/// at construction (the [`WorkloadSpec`]'s `n` is the **capacity**), and
/// each [`feed`](ErasedIncremental::feed) reveals the next `count`
/// elements of that fixed instance. Because the instance never changes —
/// only how much of it is visible — the state after absorbing `k`
/// elements is exactly the one-shot solve of the first `k`, whatever the
/// batch partition. That is the batch-split invariance the streaming
/// proptests assert, and it must hold bit-identically: same spec + same
/// batch sequence ⇒ equal [`BatchDelta`]s everywhere.
///
/// `Send` but not `Sync`: a session serializes its own batches (the
/// serving layer holds one instance behind a mutex), so implementations
/// keep plain mutable state.
pub trait ErasedIncremental: Send {
    /// The registered problem name (`"sort"`, `"delaunay"`, ...).
    fn name(&self) -> &str;

    /// The full instance size fixed at construction.
    fn capacity(&self) -> usize;

    /// Elements absorbed so far.
    fn absorbed(&self) -> usize;

    /// Whether this is a native incremental adapter (`true`) or the
    /// generic re-solve-prefix fallback (`false`).
    fn native(&self) -> bool;

    /// A conservative estimate of the session's resident bytes — what
    /// the serving layer's per-session byte cap is enforced against.
    fn approx_bytes(&self) -> usize;

    /// Absorb the next `count` elements and advance the incremental
    /// construction under `cfg`, returning the batch's delta and the
    /// run report of the work this batch performed. Errors on an empty
    /// batch or one overrunning the capacity; prefixes still below the
    /// problem's minimum instance size yield a
    /// [`pending`](BatchDelta::pending) delta, not an error.
    fn feed(&mut self, count: usize, cfg: &RunConfig) -> Result<(BatchDelta, RunReport), String>;
}

/// Why a registry lookup or construction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No problem registered under the requested name; carries the known
    /// names for the error message.
    UnknownProblem {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in registration order.
        known: Vec<String>,
    },
    /// The constructor rejected the workload spec (bad shape name, size
    /// below the problem's minimum, ...).
    BadWorkload {
        /// The problem whose constructor rejected the spec.
        name: String,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownProblem { name, known } => {
                write!(f, "unknown problem `{name}`; known: {}", known.join(", "))
            }
            RegistryError::BadWorkload { name, message } => {
                write!(f, "bad workload for `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Shorthand for a constructor's result.
pub type ConstructResult = Result<Box<dyn ErasedProblem>, String>;

/// Shorthand for an incremental constructor's result.
pub type IncrementalResult = Result<Box<dyn ErasedIncremental>, String>;

// `Arc` rather than `Box` so the generic fallback can carry a clone of
// the one-shot constructor into its re-solve loop.
type Constructor = Arc<dyn Fn(&WorkloadSpec) -> ConstructResult + Send + Sync>;

type IncrementalCtor = Arc<dyn Fn(&WorkloadSpec) -> IncrementalResult + Send + Sync>;

struct RegistryEntry {
    name: &'static str,
    description: &'static str,
    ctor: Constructor,
    incremental: Option<IncrementalCtor>,
}

/// An ordered problem-name → constructor map. Names are unique;
/// registration order is preserved (it is the order `names()` lists and
/// the CLI's `--list` prints).
#[derive(Default)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` with a workload constructor.
    ///
    /// Panics on a duplicate name — registrations are static per-crate
    /// lists, so a clash is a programming error, not an input error.
    pub fn register(
        &mut self,
        name: &'static str,
        description: &'static str,
        ctor: impl Fn(&WorkloadSpec) -> ConstructResult + Send + Sync + 'static,
    ) {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "problem `{name}` registered twice"
        );
        self.entries.push(RegistryEntry {
            name,
            description,
            ctor: Arc::new(ctor),
            incremental: None,
        });
    }

    /// Attach a native incremental constructor to the already-registered
    /// `name`. Problems without one still stream through the generic
    /// re-solve-prefix fallback of
    /// [`construct_incremental`](Registry::construct_incremental).
    ///
    /// Panics on an unknown name or a second attachment — like
    /// [`register`](Registry::register), this is a static per-crate list
    /// and a clash is a programming error.
    pub fn register_incremental(
        &mut self,
        name: &'static str,
        ctor: impl Fn(&WorkloadSpec) -> IncrementalResult + Send + Sync + 'static,
    ) {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("incremental ctor for unregistered problem `{name}`"));
        assert!(
            entry.incremental.is_none(),
            "incremental ctor for `{name}` registered twice"
        );
        entry.incremental = Some(Arc::new(ctor));
    }

    /// Whether `name` has a native incremental adapter.
    pub fn has_incremental(&self, name: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.name == name && e.incremental.is_some())
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// `(name, description)` pairs, in registration order.
    pub fn descriptions(&self) -> Vec<(&'static str, &'static str)> {
        self.entries
            .iter()
            .map(|e| (e.name, e.description))
            .collect()
    }

    /// Number of registered problems.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no problems are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Construct `name`'s problem instance from `spec`.
    pub fn construct(
        &self,
        name: &str,
        spec: &WorkloadSpec,
    ) -> Result<Box<dyn ErasedProblem>, RegistryError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| RegistryError::UnknownProblem {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })?;
        (entry.ctor)(spec).map_err(|message| RegistryError::BadWorkload {
            name: name.to_string(),
            message,
        })
    }

    /// Construct `name`'s **streaming** instance from `spec` (whose `n`
    /// is the session capacity). Problems with a native incremental
    /// adapter get it; the rest get the generic re-solve-prefix
    /// fallback, validated here against the full-capacity spec so a bad
    /// shape or parameter fails at open time rather than mid-stream.
    pub fn construct_incremental(
        &self,
        name: &str,
        spec: &WorkloadSpec,
    ) -> Result<Box<dyn ErasedIncremental>, RegistryError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| RegistryError::UnknownProblem {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })?;
        let bad = |message: String| RegistryError::BadWorkload {
            name: name.to_string(),
            message,
        };
        if let Some(inc) = &entry.incremental {
            return inc(spec).map_err(bad);
        }
        // Fallback path: prove the full-capacity instance constructs, then
        // stream by re-solving ever-longer prefixes of the same spec.
        (entry.ctor)(spec).map_err(bad)?;
        Ok(Box::new(PrefixResolve {
            name: name.to_string(),
            ctor: Arc::clone(&entry.ctor),
            spec: spec.clone(),
            state: FeedState::new(spec.n),
            prev_answer: Vec::new(),
        }))
    }

    /// Construct and solve in one step.
    pub fn solve(
        &self,
        name: &str,
        spec: &WorkloadSpec,
        cfg: &RunConfig,
    ) -> Result<(OutputSummary, RunReport), RegistryError> {
        Ok(self.construct(name, spec)?.solve_erased(cfg))
    }
}

/// The generic incremental fallback: every batch re-solves the absorbed
/// prefix from scratch by constructing the problem at `n = cumulative`
/// with the session's original seed/shape/param. Asymptotically wasteful
/// next to a native adapter, but it keeps the whole registry streamable,
/// and its **final** batch (at `cumulative == capacity`) constructs the
/// exact one-shot instance — so the last delta's answer and trace equal
/// the one-shot solve by construction.
///
/// Constructor rejections while the prefix is still short (below the
/// problem's minimum instance size) yield a pending delta; at full
/// capacity they are real errors (though `construct_incremental` already
/// vetted the full spec at open time).
struct PrefixResolve {
    name: String,
    ctor: Constructor,
    spec: WorkloadSpec,
    state: FeedState,
    prev_answer: Vec<(String, Value)>,
}

impl ErasedIncremental for PrefixResolve {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> usize {
        self.state.capacity()
    }

    fn absorbed(&self) -> usize {
        self.state.absorbed()
    }

    fn native(&self) -> bool {
        false
    }

    fn approx_bytes(&self) -> usize {
        // The fallback holds no instance between batches; the dominant
        // transient is the re-constructed prefix. Estimate generously.
        self.state.capacity() * 64
    }

    fn feed(&mut self, count: usize, cfg: &RunConfig) -> Result<(BatchDelta, RunReport), String> {
        let (batch, _lo, hi) = self.state.advance(count)?;
        let capacity = self.state.capacity();
        let mut prefix = self.spec.clone();
        prefix.n = hi;
        let problem = match (self.ctor)(&prefix) {
            Ok(p) => p,
            Err(_) if hi < capacity => {
                // Prefix below the problem's minimum size: absorb quietly.
                return Ok((
                    BatchDelta::pending(batch, count, hi, capacity),
                    RunReport::new(&self.name),
                ));
            }
            Err(e) => return Err(e),
        };
        let (summary, report) = problem.solve_erased(cfg);
        let changed: Vec<Value> = summary
            .answer()
            .iter()
            .filter(|(key, value)| {
                self.prev_answer
                    .iter()
                    .find(|(k, _)| k == key)
                    .is_none_or(|(_, prev)| prev != value)
            })
            .map(|(key, _)| Value::Str(key.clone()))
            .collect();
        let delta = Value::Obj(vec![
            ("resolve".into(), Value::Bool(true)),
            ("changed".into(), Value::Arr(changed)),
        ]);
        let out = BatchDelta::solved(batch, count, hi, capacity, delta, &summary, &report);
        self.prev_answer = summary.answer().to_vec();
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl ErasedProblem for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn solve_erased(&self, _cfg: &RunConfig) -> (OutputSummary, RunReport) {
            let mut s = OutputSummary::new();
            s.answer_num("x", 1.0).metric_num("work", 9.0);
            (s, RunReport::new("fixed"))
        }
    }

    fn reg() -> Registry {
        let mut r = Registry::new();
        r.register("fixed", "a fixed answer", |spec| {
            if spec.n == 0 {
                Err("n must be positive".into())
            } else {
                Ok(Box::new(Fixed))
            }
        });
        r
    }

    #[test]
    fn lookup_and_solve() {
        let r = reg();
        assert_eq!(r.names(), vec!["fixed"]);
        let (summary, report) = r
            .solve("fixed", &WorkloadSpec::new(4, 0), &RunConfig::new())
            .unwrap();
        assert_eq!(report.algorithm, "fixed");
        assert_eq!(summary.answer().len(), 1);
        assert_eq!(
            summary.to_json(),
            "{\"answer\":{\"x\":1},\"metrics\":{\"work\":9}}"
        );
    }

    #[test]
    fn unknown_name_lists_known() {
        let r = reg();
        let err = r
            .solve("nope", &WorkloadSpec::new(4, 0), &RunConfig::new())
            .unwrap_err();
        assert!(err.to_string().contains("unknown problem `nope`"));
        assert!(err.to_string().contains("fixed"));
    }

    #[test]
    fn constructor_errors_surface() {
        let r = reg();
        let err = r
            .construct("fixed", &WorkloadSpec::new(0, 0))
            .err()
            .unwrap();
        assert_eq!(
            err.to_string(),
            "bad workload for `fixed`: n must be positive"
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = reg();
        r.register("fixed", "again", |_| Ok(Box::new(Fixed)));
    }

    // A registry whose one problem needs at least 3 items, answering the
    // prefix sum — enough to exercise the fallback's pending → solved →
    // complete progression.
    fn min3_reg() -> Registry {
        struct Sum(usize);
        impl ErasedProblem for Sum {
            fn name(&self) -> &str {
                "sum"
            }
            fn solve_erased(&self, _cfg: &RunConfig) -> (OutputSummary, RunReport) {
                let mut s = OutputSummary::new();
                s.answer_num("sum", (0..self.0).sum::<usize>() as f64);
                s.answer_num("items", self.0 as f64);
                let mut report = RunReport::new("sum");
                report.items = self.0;
                (s, report)
            }
        }
        let mut r = Registry::new();
        r.register("sum", "prefix sums", |spec| {
            if spec.n < 3 {
                Err("need at least 3 items".into())
            } else {
                Ok(Box::new(Sum(spec.n)))
            }
        });
        r
    }

    #[test]
    fn fallback_streams_any_problem() {
        let r = min3_reg();
        assert!(!r.has_incremental("sum"));
        let spec = WorkloadSpec::new(6, 0);
        let mut inc = r.construct_incremental("sum", &spec).unwrap();
        assert!(!inc.native());
        assert_eq!((inc.capacity(), inc.absorbed()), (6, 0));
        let cfg = RunConfig::new();

        // Two items: below the minimum, absorbed as pending.
        let (d0, _) = inc.feed(2, &cfg).unwrap();
        assert!(d0.pending && !d0.complete);
        assert_eq!((d0.batch, d0.cumulative), (0, 2));

        // Three more: solvable now, and `changed` lists every answer key.
        let (d1, _) = inc.feed(3, &cfg).unwrap();
        assert!(!d1.pending && !d1.complete);
        assert_eq!(d1.delta.get("resolve"), Some(&Value::Bool(true)));
        let changed = match d1.delta.get("changed") {
            Some(Value::Arr(keys)) => keys.len(),
            other => panic!("bad changed section: {other:?}"),
        };
        assert_eq!(changed, 2);

        // Final batch: complete, and its answer equals the one-shot solve.
        let (d2, _) = inc.feed(1, &cfg).unwrap();
        assert!(d2.complete && !d2.pending);
        let (one_shot, _) = r.solve("sum", &spec, &cfg).unwrap();
        assert_eq!(d2.answer, one_shot.answer().to_vec());
        assert!(inc.feed(1, &cfg).is_err(), "stream complete");
    }

    #[test]
    fn construct_incremental_vets_spec_and_name() {
        let r = min3_reg();
        assert!(matches!(
            r.construct_incremental("nope", &WorkloadSpec::new(6, 0)),
            Err(RegistryError::UnknownProblem { .. })
        ));
        // The full-capacity spec is vetted at open time.
        assert!(matches!(
            r.construct_incremental("sum", &WorkloadSpec::new(2, 0)),
            Err(RegistryError::BadWorkload { .. })
        ));
    }

    #[test]
    fn native_incremental_ctor_takes_precedence() {
        struct Native(FeedState);
        impl ErasedIncremental for Native {
            fn name(&self) -> &str {
                "sum"
            }
            fn capacity(&self) -> usize {
                self.0.capacity()
            }
            fn absorbed(&self) -> usize {
                self.0.absorbed()
            }
            fn native(&self) -> bool {
                true
            }
            fn approx_bytes(&self) -> usize {
                64
            }
            fn feed(
                &mut self,
                count: usize,
                _cfg: &RunConfig,
            ) -> Result<(BatchDelta, RunReport), String> {
                let (batch, _, hi) = self.0.advance(count)?;
                Ok((
                    BatchDelta::pending(batch, count, hi, self.0.capacity()),
                    RunReport::new("sum"),
                ))
            }
        }
        let mut r = min3_reg();
        r.register_incremental("sum", |spec| Ok(Box::new(Native(FeedState::new(spec.n)))));
        assert!(r.has_incremental("sum"));
        let inc = r
            .construct_incremental("sum", &WorkloadSpec::new(4, 0))
            .unwrap();
        assert!(inc.native());
    }

    #[test]
    #[should_panic(expected = "unregistered problem")]
    fn incremental_for_unknown_name_panics() {
        let mut r = min3_reg();
        r.register_incremental("nope", |_| Err("unused".into()));
    }

    #[test]
    fn workload_spec_json_round_trip() {
        let spec = WorkloadSpec::new(1000, 7).shape("near-circle").param(4.0);
        let back = WorkloadSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let sparse = WorkloadSpec::from_json("{\"n\":32}").unwrap();
        assert_eq!(sparse, WorkloadSpec::new(32, 0));
        assert!(WorkloadSpec::from_json("{\"n\":-3}").is_err());
        assert!(WorkloadSpec::from_json("{\"shape\":7}").is_err());
    }

    #[test]
    fn workload_spec_rejects_non_finite_param() {
        // 1e999 overflows to +inf in the number parser; it must fail
        // here, not flow into constructor casts or the response echo.
        for text in ["{\"param\":1e999}", "{\"param\":-1e999}"] {
            let err = WorkloadSpec::from_json(text).unwrap_err();
            assert!(err.to_string().contains("not finite"), "{text}: {err}");
        }
        assert_eq!(
            WorkloadSpec::from_json("{\"param\":4.0}").unwrap().param,
            Some(4.0)
        );
    }
}
