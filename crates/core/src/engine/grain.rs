//! Adaptive grain control for executor rounds.
//!
//! Prefix-doubling schedules have a long tail of small rounds (the first
//! `log n` rounds of a Type 3 run together hold fewer items than the last
//! one). Dispatching such a round through the data-parallel combinators
//! costs a parallel-region setup (scoped crew spawns in the vendored
//! scheduler) that dwarfs the round's actual work. The executors
//! therefore consult [`parallel_round`] per round: below the cutoff the
//! round body runs inline on the calling thread — same results, zero
//! scheduler involvement (`RunReport::{regions, helper_spawns}` stay 0).
//!
//! The cutoff derives from the installed pool: a region is only worth
//! starting when every one of [`rayon::recommended_splits`] chunks gets
//! at least [`rayon::MIN_CHUNK`] items, and never below the combinators'
//! own [`rayon::MIN_PAR_LEN`] floor. It is also clamped from above
//! ([`MAX_SEQUENTIAL_CUTOFF`]): the executors cannot see per-item cost,
//! and an unclamped cutoff at wide pools would serialise mid-size rounds
//! of *expensive* iterations (a Delaunay activity check does geometry
//! per item) that are well worth a crew. With 1 ambient thread
//! (sequential mode, `threads == 1` configs) every round is inline by
//! definition.

/// Ceiling on [`sequential_cutoff`] at any pool width (4 ×
/// [`rayon::MIN_PAR_LEN`]): past this many items a round goes parallel
/// regardless of how many splits the pool would prefer.
pub const MAX_SEQUENTIAL_CUTOFF: usize = 4 * rayon::MIN_PAR_LEN;

/// Round sizes strictly below this run inline on the caller. Depends on
/// the ambient thread count, so evaluate it *inside* the installed pool.
pub fn sequential_cutoff() -> usize {
    if rayon::current_num_threads() <= 1 {
        return usize::MAX;
    }
    (rayon::recommended_splits() * rayon::MIN_CHUNK)
        .clamp(rayon::MIN_PAR_LEN, MAX_SEQUENTIAL_CUTOFF)
}

/// Should a round over `len` items use the parallel path?
pub fn parallel_round(len: usize) -> bool {
    len >= sequential_cutoff()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_is_always_inline() {
        rayon::run_sequential(|| {
            assert_eq!(sequential_cutoff(), usize::MAX);
            assert!(!parallel_round(usize::MAX - 1));
        });
    }

    #[test]
    fn cutoff_scales_with_installed_width_up_to_the_clamp() {
        let narrow = rayon::cached_pool(2).install(sequential_cutoff);
        let wide = rayon::cached_pool(8).install(sequential_cutoff);
        assert!(narrow >= rayon::MIN_PAR_LEN);
        assert!(wide >= narrow, "wider pools need larger rounds to pay off");
        assert!(
            wide <= MAX_SEQUENTIAL_CUTOFF,
            "the clamp bounds serialisation at any width"
        );
        assert!(rayon::cached_pool(8).install(|| parallel_round(wide)));
        assert!(!rayon::cached_pool(8).install(|| parallel_round(wide - 1)));
    }
}
