//! The round-scoped scratch workspace of the engine.
//!
//! Every executor round used to allocate its working vectors fresh —
//! ready flags, survivor lists, per-round output batches — so allocator
//! traffic grew with the *round count times the round size*, dominating
//! the long tail of small prefix-doubling rounds. [`RoundScratch`] is the
//! engine-level face of the per-thread buffer pool in
//! [`ri_pram::scratch`]: executors and algorithm hot paths [`take_vec`] a
//! cleared, capacity-preserving buffer at the start of a run, reuse it
//! every round, and [`put_vec`] it back at the end, so a run's steady
//! state allocates nothing per round and *repeated* runs on one thread
//! (a serving executor thread, a bench loop) reuse each other's buffers
//! too.
//!
//! ## Lifetime rules
//!
//! * Taken buffers are always **empty**; only capacity is reused. No run
//!   can observe another run's data — repeated runs are byte-identical
//!   to fresh-state runs (asserted by `tests/scratch_reuse.rs`).
//! * The pool is per-thread. Round-orchestrating code (executor loops,
//!   `combine` steps) runs on the installing thread and reuses fully;
//!   scoped crew helpers are short-lived and just allocate.
//! * Return what you take. A buffer that is *not* returned is merely an
//!   ordinary allocation — correctness never depends on pooling.
//!
//! [`Runner::run`](super::Runner::run) measures the pool around every
//! execution and stamps the deltas on the report
//! (`RunReport::{scratch_hits, scratch_misses}`), alongside the region /
//! helper-spawn counters from the scheduler, so the reuse (and the grain
//! policy in [`super::grain`]) is observable per run.

pub use ri_pram::scratch::{put_vec, stats, take_vec, ScratchStats};

/// Measures one run's interaction with the calling thread's scratch pool
/// and parallel-region counters: construct before executing, read the
/// deltas after. Owned by [`Runner`](super::Runner) for the duration of
/// [`run`](super::Runner::run).
#[derive(Debug, Clone)]
pub struct RoundScratch {
    base: ScratchStats,
    regions: usize,
    helpers: usize,
}

impl RoundScratch {
    /// Snapshot the calling thread's counters.
    pub fn begin() -> Self {
        RoundScratch {
            base: stats(),
            regions: rayon::crew_regions(),
            helpers: rayon::helper_threads_spawned(),
        }
    }

    /// Scratch-pool activity since [`begin`](RoundScratch::begin):
    /// `(hits, misses)` of [`take_vec`] on this thread.
    pub fn scratch_delta(&self) -> (u64, u64) {
        let d = stats().since(&self.base);
        (d.hits, d.misses)
    }

    /// Multi-member parallel regions this thread started since
    /// [`begin`](RoundScratch::begin) (0 for runs whose every round fell
    /// under the [`grain`](super::grain) cutoff).
    pub fn regions_delta(&self) -> u64 {
        (rayon::crew_regions() - self.regions) as u64
    }

    /// Scoped helper threads this thread spawned since
    /// [`begin`](RoundScratch::begin).
    pub fn helper_spawns_delta(&self) -> u64 {
        (rayon::helper_threads_spawned() - self.helpers) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_track_take_and_put() {
        struct Local(#[allow(dead_code)] u32);
        let ws = RoundScratch::begin();
        let mut v: Vec<Local> = take_vec();
        v.reserve(32);
        put_vec(v);
        let _v: Vec<Local> = take_vec();
        let (hits, misses) = ws.scratch_delta();
        assert!(hits >= 1, "second take reuses the returned buffer");
        assert!(misses >= 1, "first take of a fresh type misses");
    }

    #[test]
    fn regions_flat_without_parallel_work() {
        let ws = RoundScratch::begin();
        let v: Vec<u64> = (0..100).collect();
        let s: u64 = v.iter().sum();
        assert!(s > 0);
        assert_eq!(ws.regions_delta(), 0);
        assert_eq!(ws.helper_spawns_delta(), 0);
    }
}
